"""Spark-like parallel execution substrate.

The paper implements MinoanER on Apache Spark (section 4.1, Figure 4):
work is split into partitions processed by independent workers, with
explicit synchronisation barriers between the four matching rules and
the graph-construction stages.  This package reproduces that execution
model at laptop scale:

* :class:`~repro.parallel.context.ParallelContext` -- named stages
  executed over partitioned inputs by a serial, thread or process
  backend, with per-stage timing (the barriers of Figure 4 are the
  stage boundaries);
* :class:`~repro.parallel.dataset.Dataset` -- a minimal RDD-style
  collection API (map / filter / reduce_by_key / join / ...) built on
  the same stages;
* :class:`~repro.parallel.pipeline.ParallelMinoanER` -- the
  stage-parallel MinoanER pipeline, which produces exactly the same
  matches as the serial :class:`repro.core.pipeline.MinoanER`.
"""

from repro.parallel.context import ParallelContext, StageRecord, simulated_makespan
from repro.parallel.dataset import Dataset
from repro.parallel.pipeline import ParallelMinoanER

__all__ = [
    "Dataset",
    "ParallelContext",
    "ParallelMinoanER",
    "StageRecord",
    "simulated_makespan",
]
