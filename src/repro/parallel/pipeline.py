"""Stage-parallel MinoanER: the dataflow of the paper's Figure 4.

``ParallelMinoanER`` executes the expensive phases of the pipeline as
partitioned stages on a :class:`~repro.parallel.context.ParallelContext`
-- value-evidence accumulation over token-block partitions, top-K
pruning over node partitions, neighbor-evidence propagation over edge
partitions, and the per-node work of rules R2/R3 over node partitions --
with barriers exactly where Figure 4 places them.

The result is **bit-identical** to the serial
:class:`repro.core.pipeline.MinoanER`: stage kernels compute per-node
proposals in parallel, and the driver replays the same deterministic
greedy/UMC logic over them.  All stage kernels are module-level
functions so the ``process`` backend can pickle them.
"""

from __future__ import annotations

from repro.blocking.name_blocking import name_blocks
from repro.blocking.purging import purge_blocks
from repro.blocking.token_blocking import token_blocks
from repro.core.config import MinoanERConfig
from repro.core.matcher import NonIterativeMatcher
from repro.core.pipeline import ResolutionResult
from repro.graph.blocking_graph import DisjunctiveBlockingGraph
from repro.graph.construction import name_evidence, retained_beta_edges
from repro.graph.pruning import top_k_candidates
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.kernels.dispatch import resolve_backend_name
from repro.kernels.partition import beta_partition_kernel, gamma_partition_kernel
from repro.obs import NULL_RECORDER, Recorder, current_recorder, phase_span
from repro.parallel.context import ParallelContext
from repro.resilience.faults import inject
from repro.resilience.policy import RetryPolicy

# ----------------------------------------------------------------------
# Stage kernels (module-level: picklable for the process backend)
# ----------------------------------------------------------------------


def beta_kernel(blocks: list[tuple[tuple[int, ...], tuple[int, ...]]]) -> dict[int, dict[int, float]]:
    """Partial ``beta`` accumulation over one partition of token blocks."""
    import math

    partial: dict[int, dict[int, float]] = {}
    for side1, side2 in blocks:
        weight = 1.0 / math.log2(len(side1) * len(side2) + 1.0)
        for eid1 in side1:
            row = partial.setdefault(eid1, {})
            for eid2 in side2:
                row[eid2] = row.get(eid2, 0.0) + weight
    return partial


def top_k_kernel(rows: list[tuple[int, dict[int, float]]], k: int) -> list[tuple[int, tuple]]:
    """Top-K pruning of one partition of per-node weight rows."""
    return [(eid, top_k_candidates(row, k)) for eid, row in rows]


def gamma_kernel(
    edges: list[tuple[int, int, float]],
    in_neighbors_1: list[tuple[int, ...]],
    in_neighbors_2: list[tuple[int, ...]],
) -> dict[int, dict[int, float]]:
    """Partial ``gamma`` propagation over one partition of beta edges."""
    partial: dict[int, dict[int, float]] = {}
    for eid1, eid2, weight in edges:
        sources = in_neighbors_1[eid1]
        if not sources:
            continue
        targets = in_neighbors_2[eid2]
        if not targets:
            continue
        for source in sources:
            row = partial.setdefault(source, {})
            for target in targets:
                row[target] = row.get(target, 0.0) + weight
    return partial


def merge_partials(
    partials: list[dict[int, dict[int, float]]],
    size: int,
) -> list[dict[int, float]]:
    """Merge per-partition nested accumulators into dense per-node rows."""
    rows: list[dict[int, float]] = [dict() for _ in range(size)]
    for partial in partials:
        for eid, partial_row in partial.items():
            row = rows[eid]
            for other, weight in partial_row.items():
                row[other] = row.get(other, 0.0) + weight
    return rows


def transpose_rows(rows: list[dict[int, float]], size: int) -> list[dict[int, float]]:
    """Column view of per-node rows (side-2 perspective of the weights)."""
    columns: list[dict[int, float]] = [dict() for _ in range(size)]
    for eid, row in enumerate(rows):
        for other, weight in row.items():
            columns[other][eid] = weight
    return columns


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------


class ParallelMinoanER:
    """MinoanER executed as partitioned stages with explicit barriers.

    Parameters
    ----------
    config:
        Same configuration object as the serial pipeline.  When no
        ``context`` is supplied, ``config.failure_mode`` and the retry
        knobs shape the context this pipeline creates (and owns).
    context:
        Execution context; its ``stage_log`` afterwards holds the
        per-stage timings used by the Figure 6 experiment.  A caller-
        supplied context is *not* closed by this pipeline; the default
        self-created one is, on :meth:`close` / ``with`` exit, so
        worker pools never leak across resolves.

    Examples
    --------
    >>> # with ParallelContext(num_workers=4, backend="process") as ctx:
    >>> #     result = ParallelMinoanER(config, ctx).resolve(kb1, kb2)
    """

    def __init__(
        self,
        config: MinoanERConfig | None = None,
        context: ParallelContext | None = None,
        recorder: Recorder | None = None,
    ):
        self.config = config or MinoanERConfig()
        self._owns_context = context is None
        if context is None:
            context = ParallelContext(
                failure_mode=self.config.failure_mode,
                retry_policy=self._config_retry_policy(),
            )
        self.context = context
        self._recorder = recorder

    def _config_retry_policy(self) -> RetryPolicy | None:
        if self.config.failure_mode == "fail_fast":
            return None
        return RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            base_delay_s=self.config.retry_base_delay_s,
        )

    def close(self) -> None:
        """Shut down the context's worker pool iff this pipeline created it."""
        if self._owns_context:
            self.context.close()

    def __enter__(self) -> "ParallelMinoanER":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def recorder(self) -> Recorder:
        """The span sink of the next run (never None)."""
        if self._recorder is not None:
            return self._recorder
        if not self.config.observability:
            return NULL_RECORDER
        return current_recorder()

    def resolve(self, kb1: KnowledgeBase, kb2: KnowledgeBase) -> ResolutionResult:
        """Run the stage-parallel pipeline; same output as the serial one.

        Phases are spans (as in the serial pipeline); the context's
        stages appear as ``stage:*`` child spans of the phase that runs
        them, and ``timings`` is derived from the phase spans.
        """
        context = self.context
        recorder = self.recorder
        if context._recorder is None and self._recorder is not None:
            # An explicitly supplied pipeline recorder also collects the
            # context's stage spans for the duration of this run.
            context._recorder = recorder
            restore_context_recorder = True
        else:
            restore_context_recorder = False

        try:
            return self._resolve(kb1, kb2, recorder)
        finally:
            if restore_context_recorder:
                context._recorder = None

    def _resolve(
        self, kb1: KnowledgeBase, kb2: KnowledgeBase, recorder: Recorder
    ) -> ResolutionResult:
        config, context = self.config, self.context
        stage_log_start = len(context.stage_log)
        # Driver-side phases cannot be partially skipped (there is no
        # partition to drop), so under ``retry`` *and* ``degrade`` they
        # are retried per the context's policy and then propagate.
        driver_policy = (
            context.retry_policy if context.failure_mode != "fail_fast" else None
        )

        def guarded(site, thunk):
            def body():
                inject(site)
                return thunk()

            if driver_policy is None:
                return body()
            return driver_policy.call(
                body, on_retry=lambda attempt, error: recorder.count("retry.attempts")
            )

        def driver_statistics():
            stats1 = KBStatistics(kb1, config.name_attributes_k, config.relations_n)
            stats2 = KBStatistics(kb2, config.name_attributes_k, config.relations_n)
            return stats1, stats2

        def driver_blocking():
            names = name_blocks(stats1, stats2)
            tokens = token_blocks(kb1, kb2)
            if config.purge_blocks:
                tokens = purge_blocks(
                    tokens,
                    cartesian=len(kb1) * len(kb2),
                    budget_ratio=config.purging_budget_ratio,
                    max_comparisons=config.max_block_comparisons,
                )
            return names, tokens

        with phase_span(
            recorder, "resolve", n1=len(kb1), n2=len(kb2), parallel_backend=context.backend
        ) as root:
            # -- Statistics (driver): name attributes, importance, top
            #    neighbors.
            with phase_span(recorder, "statistics") as span_statistics:
                stats1, stats2 = guarded("stage:statistics", driver_statistics)
                in_neighbors_1 = [stats1.top_in_neighbors(eid) for eid in range(len(kb1))]
                in_neighbors_2 = [stats2.top_in_neighbors(eid) for eid in range(len(kb2))]

            # -- Blocking (driver indexes; purging on driver).
            with phase_span(recorder, "blocking") as span_blocking:
                names, tokens = guarded("stage:token_blocking", driver_blocking)

            # -- Graph construction stages (Figure 4: alpha & beta during
            #    blocking, gamma after the top-neighbor barrier).  The
            #    accumulation stages run either the dict kernels or the
            #    array kernels of repro.kernels.partition; both produce
            #    bit-identical partials, so the choice is a pure perf knob.
            with phase_span(recorder, "graph") as span_graph:
                backend = resolve_backend_name(config.kernel_backend)
                names_1, names_2 = name_evidence(names)

                block_items = [(block.side1, block.side2) for block in tokens]
                if backend == "dict":
                    partials = context.run_stage("graph:beta", block_items, beta_kernel)
                else:
                    partials = context.run_stage(
                        "graph:beta", block_items, beta_partition_kernel,
                        len(kb1), len(kb2), backend,
                    )
                beta_rows = merge_partials(partials, len(kb1))
                beta_columns = transpose_rows(beta_rows, len(kb2))

                k = config.candidates_k
                value_1 = _staged_top_k(context, "graph:topk_value_1", beta_rows, k)
                value_2 = _staged_top_k(context, "graph:topk_value_2", beta_columns, k)

                edges = [(e1, e2, w) for (e1, e2), w in retained_beta_edges(value_1, value_2).items()]
                if backend == "dict":
                    partials = context.run_stage(
                        "graph:gamma", edges, gamma_kernel, in_neighbors_1, in_neighbors_2
                    )
                else:
                    partials = context.run_stage(
                        "graph:gamma", edges, gamma_partition_kernel,
                        in_neighbors_1, in_neighbors_2, backend,
                    )
                gamma_rows = merge_partials(partials, len(kb1))
                gamma_columns = transpose_rows(gamma_rows, len(kb2))
                neighbor_1 = _staged_top_k(context, "graph:topk_neighbor_1", gamma_rows, k)
                neighbor_2 = _staged_top_k(context, "graph:topk_neighbor_2", gamma_columns, k)

                graph = DisjunctiveBlockingGraph(
                    n1=len(kb1),
                    n2=len(kb2),
                    name_matches_1=names_1,
                    name_matches_2=names_2,
                    value_candidates_1=value_1,
                    value_candidates_2=value_2,
                    neighbor_candidates_1=neighbor_1,
                    neighbor_candidates_2=neighbor_2,
                )

            # -- Matching (rules over node partitions; barriers between
            #    rules).
            with phase_span(recorder, "matching") as span_matching:
                matching = _staged_matching(context, graph, config)

        timings = {
            "statistics": span_statistics.seconds,
            "blocking": span_blocking.seconds,
            "graph": span_graph.seconds,
            "matching": span_matching.seconds,
            "total": root.seconds,
        }
        degraded = {
            record.name: record.skipped
            for record in context.stage_log[stage_log_start:]
            if record.skipped
        }
        return ResolutionResult(
            kb1=kb1,
            kb2=kb2,
            matching=matching,
            graph=graph,
            name_block_collection=names,
            token_block_collection=tokens,
            timings=timings,
            degraded=degraded,
        )


def _staged_top_k(
    context: ParallelContext,
    name: str,
    rows: list[dict[int, float]],
    k: int,
) -> list[tuple]:
    """Run top-K pruning as a stage over node partitions."""
    indexed = list(enumerate(rows))
    results = context.run_stage(name, indexed, top_k_kernel, k)
    out: list[tuple] = [()] * len(rows)
    for chunk in results:
        for eid, candidates in chunk:
            out[eid] = candidates
    return out


def rule2_kernel(
    node_ids: list[int],
    value_candidates: list[tuple],
    threshold: float,
) -> list[tuple[int, int, float]]:
    """Per-node work of R2: top value candidate if beta >= threshold."""
    proposals = []
    for eid in node_ids:
        candidates = value_candidates[eid]
        if candidates:
            partner, beta = candidates[0]
            if beta >= threshold:
                proposals.append((eid, partner, beta))
    return proposals


def rule3_kernel(
    node_ids: list[int],
    value_candidates: list[tuple],
    neighbor_candidates: list[tuple],
    theta: float,
    use_neighbor_evidence: bool,
) -> list[tuple[int, int, float]]:
    """Per-node work of R3: best rank-aggregated candidate."""
    from repro.core.rank_aggregation import top_aggregate_candidate

    proposals = []
    for eid in node_ids:
        neighbors = neighbor_candidates[eid] if use_neighbor_evidence else ()
        best = top_aggregate_candidate(value_candidates[eid], neighbors, theta)
        if best is not None:
            proposals.append((eid, best[0], best[1]))
    return proposals


def _staged_matching(
    context: ParallelContext,
    graph: DisjunctiveBlockingGraph,
    config: MinoanERConfig,
):
    """Rules R1-R4 with per-node stages; identical output to the serial matcher.

    R1 is a driver scan of the (tiny) alpha edge set.  R2 and R3 compute
    per-node proposals in parallel; the driver then replays the exact
    iteration order of Algorithm 2 (side 1 ascending, then side 2) so
    greedy claiming matches the serial matcher.  R4 and unique-mapping
    conflict resolution reuse the serial implementation directly.
    """
    from repro.core.matcher import MatchingResult
    from repro.core.rules import reciprocity_rule

    collected: list[tuple[tuple[int, int], float, str]] = []
    matched_1: set[int] = set()
    matched_2: set[int] = set()

    if config.use_name_rule:
        for eid1 in range(graph.n1):
            eid2 = graph.name_match(1, eid1)
            if eid2 is not None:
                collected.append(((eid1, eid2), float("inf"), "R1"))
                matched_1.add(eid1)
                matched_2.add(eid2)

    if config.use_value_rule:
        if graph.n1 <= graph.n2:
            side, matched, size = 1, matched_1, graph.n1
            candidates = graph._value_candidates[0]
        else:
            side, matched, size = 2, matched_2, graph.n2
            candidates = graph._value_candidates[1]
        unmatched = [eid for eid in range(size) if eid not in matched]
        chunks = context.run_stage(
            "match:R2", unmatched, rule2_kernel, candidates, config.value_threshold
        )
        for chunk in chunks:
            for eid, partner, beta in chunk:
                pair = (eid, partner) if side == 1 else (partner, eid)
                collected.append((pair, beta, "R2"))
                matched_1.add(pair[0])
                matched_2.add(pair[1])

    if config.use_rank_aggregation:
        proposals: dict[tuple[int, int], tuple[int, float]] = {}
        for side, size in ((1, graph.n1), (2, graph.n2)):
            matched = matched_1 if side == 1 else matched_2
            unmatched = [eid for eid in range(size) if eid not in matched]
            chunks = context.run_stage(
                f"match:R3_side{side}",
                unmatched,
                rule3_kernel,
                graph._value_candidates[side - 1],
                graph._neighbor_candidates[side - 1],
                config.theta,
                config.use_neighbor_evidence,
            )
            for chunk in chunks:
                for eid, partner, score in chunk:
                    proposals[(side, eid)] = (partner, score)
        # Replay Algorithm 2's greedy claiming deterministically.
        claimed_1, claimed_2 = set(matched_1), set(matched_2)
        for side, size in ((1, graph.n1), (2, graph.n2)):
            claimed_own = claimed_1 if side == 1 else claimed_2
            claimed_other = claimed_2 if side == 1 else claimed_1
            for eid in range(size):
                if eid in claimed_own or (side, eid) not in proposals:
                    continue
                partner, score = proposals[(side, eid)]
                pair = (eid, partner) if side == 1 else (partner, eid)
                collected.append((pair, score, "R3"))
                claimed_own.add(eid)
                claimed_other.add(partner)

    proposed = [(pair, rule) for pair, _, rule in collected]
    removed: set[tuple[int, int]] = set()
    surviving = collected
    if config.use_reciprocity:
        kept = reciprocity_rule(graph, [(pair, score) for pair, score, _ in collected])
        kept_pairs = {pair for pair, _ in kept}
        removed = {pair for pair, _, _ in collected if pair not in kept_pairs}
        surviving = [item for item in collected if item[0] in kept_pairs]
    if config.enforce_unique_mapping:
        surviving = NonIterativeMatcher._resolve_conflicts(surviving)

    return MatchingResult(
        matches={pair for pair, _, _ in surviving},
        rule_of={pair: rule for pair, _, rule in surviving},
        scores={pair: score for pair, score, _ in surviving},
        proposed=proposed,
        removed_by_reciprocity=removed,
    )
