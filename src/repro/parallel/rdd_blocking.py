"""Token blocking expressed in the RDD style (Spark idiom demo).

The serial :func:`repro.blocking.token_blocking.token_blocks` reads the
KBs' prebuilt inverted indices; this module derives the same blocks
through the classic Spark dataflow instead -- ``flatMap`` each entity to
``(token, (side, eid))`` pairs, ``groupByKey``, drop single-KB groups --
exactly how the paper's implementation builds ``B_T`` from raw input
partitions (section 4.1).  Used by tests as a parity check of the
Dataset API and as executable documentation of the dataflow.
"""

from __future__ import annotations

from repro.blocking.base import Block, BlockCollection
from repro.kb.knowledge_base import KnowledgeBase
from repro.parallel.context import ParallelContext
from repro.parallel.dataset import Dataset


class _TokenEmitter:
    """Picklable ``(side, eid, tokens) -> [(token, (side, eid))]``."""

    def __call__(self, record: tuple[int, int, frozenset[str]]):
        side, eid, tokens = record
        return [(token, (side, eid)) for token in tokens]


def token_blocks_rdd(
    context: ParallelContext,
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
) -> BlockCollection:
    """``B_T`` via parallelize -> flatMap -> groupByKey (Spark dataflow).

    Returns a collection equal (up to block order) to the index-based
    :func:`repro.blocking.token_blocking.token_blocks`.
    """
    records = [
        (0, eid, kb1.tokens(eid)) for eid in range(len(kb1))
    ] + [
        (1, eid, kb2.tokens(eid)) for eid in range(len(kb2))
    ]
    grouped = (
        Dataset.from_iterable(context, records)
        .flat_map(_TokenEmitter(), name="blocking:emit_tokens")
        .group_by_key(name="blocking:group_tokens")
        .collect()
    )
    collection = BlockCollection(kind="token")
    for token, members in sorted(grouped):
        side1 = sorted(eid for side, eid in members if side == 0)
        side2 = sorted(eid for side, eid in members if side == 1)
        if side1 and side2:
            collection.add(Block(token, side1, side2))
    return collection
