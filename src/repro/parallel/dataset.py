"""A minimal RDD-style dataset on top of :class:`ParallelContext`.

``Dataset`` mirrors the handful of Spark transformations the MinoanER
dataflow needs (map, flatMap, filter, mapPartitions, reduceByKey,
groupByKey, join, collect, count).  Transformations execute eagerly,
one stage per call; shuffles (the ``*ByKey`` operations and ``join``)
hash-partition on the driver between two stages, which is where the
synchronisation barrier sits in Spark too.

With the ``process`` backend the functions passed to transformations
must be picklable (module-level functions) -- the same constraint Spark
puts on closures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Hashable, Iterable, TypeVar

from repro.parallel.context import ParallelContext, split_into_partitions

Item = TypeVar("Item")
Other = TypeVar("Other")


def _map_chunk(chunk: list, function: Callable) -> list:
    return [function(item) for item in chunk]


def _flat_map_chunk(chunk: list, function: Callable) -> list:
    out: list = []
    for item in chunk:
        out.extend(function(item))
    return out


def _filter_chunk(chunk: list, predicate: Callable) -> list:
    return [item for item in chunk if predicate(item)]


def _map_partitions_chunk(chunk: list, function: Callable) -> list:
    return list(function(chunk))


def _reduce_by_key_chunk(chunk: list, function: Callable) -> list:
    merged: dict = {}
    for key, value in chunk:
        if key in merged:
            merged[key] = function(merged[key], value)
        else:
            merged[key] = value
    return list(merged.items())


class Dataset:
    """An eager, partitioned collection with Spark-flavoured operations.

    Create with :meth:`from_iterable`; every transformation returns a
    new Dataset and leaves the source untouched.
    """

    def __init__(self, context: ParallelContext, partitions: list[list]):
        self.context = context
        self.partitions = partitions

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_iterable(
        cls,
        context: ParallelContext,
        items: Iterable,
        num_partitions: int | None = None,
    ) -> "Dataset":
        """Partition ``items`` into a Dataset (Spark's ``parallelize``)."""
        chunks = split_into_partitions(list(items), num_partitions or context.default_partitions())
        return cls(context, chunks)

    # ------------------------------------------------------------------
    # Narrow transformations (no shuffle)
    # ------------------------------------------------------------------
    def map(self, function: Callable[[Item], Other], name: str = "map") -> "Dataset":
        return Dataset(
            self.context,
            self._run_on_buckets(name, self.partitions, _BoundKernel(_map_chunk, function)),
        )

    def flat_map(self, function: Callable[[Item], Iterable[Other]], name: str = "flat_map") -> "Dataset":
        return Dataset(
            self.context,
            self._run_on_buckets(name, self.partitions, _BoundKernel(_flat_map_chunk, function)),
        )

    def filter(self, predicate: Callable[[Item], bool], name: str = "filter") -> "Dataset":
        return Dataset(
            self.context,
            self._run_on_buckets(name, self.partitions, _BoundKernel(_filter_chunk, predicate)),
        )

    def map_partitions(self, function: Callable[[list], Iterable], name: str = "map_partitions") -> "Dataset":
        return Dataset(
            self.context,
            self._run_on_buckets(
                name, self.partitions, _BoundKernel(_map_partitions_chunk, function)
            ),
        )

    # ------------------------------------------------------------------
    # Wide transformations (shuffle on the driver = barrier)
    # ------------------------------------------------------------------
    def _shuffle_by_key(self, num_partitions: int | None = None) -> list[list]:
        num_partitions = num_partitions or self.context.default_partitions()
        buckets: list[list] = [[] for _ in range(num_partitions)]
        for partition in self.partitions:
            for key, value in partition:
                buckets[hash(key) % num_partitions].append((key, value))
        return [bucket for bucket in buckets if bucket]

    def _run_on_buckets(self, name: str, buckets: list[list], kernel: Callable) -> list[list]:
        """Run ``kernel`` once per shuffle bucket (buckets ARE partitions)."""
        return self.context.run_stage(
            name, buckets, _run_bucket_chunk, kernel, partitions=max(1, len(buckets))
        )

    def reduce_by_key(
        self,
        function: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
        name: str = "reduce_by_key",
    ) -> "Dataset":
        """Combine values sharing a key.  Items must be ``(key, value)``."""
        # Map-side combine first, then shuffle, then final combine.
        combined = self._run_on_buckets(
            f"{name}:combine", self.partitions, _BoundKernel(_reduce_by_key_chunk, function)
        )
        shuffled = Dataset(self.context, combined)._shuffle_by_key(num_partitions)
        final = self._run_on_buckets(
            f"{name}:reduce", shuffled, _BoundKernel(_reduce_by_key_chunk, function)
        )
        return Dataset(self.context, final)

    def group_by_key(self, num_partitions: int | None = None, name: str = "group_by_key") -> "Dataset":
        """Group values sharing a key into ``(key, [values])``."""
        shuffled = self._shuffle_by_key(num_partitions)
        grouped = self._run_on_buckets(name, shuffled, _group_chunk)
        return Dataset(self.context, grouped)

    def join(self, other: "Dataset", num_partitions: int | None = None, name: str = "join") -> "Dataset":
        """Inner join on keys: ``(key, (left value, right value))`` pairs."""
        tagged_left = [[(key, (0, value)) for key, value in chunk] for chunk in self.partitions]
        tagged_right = [[(key, (1, value)) for key, value in chunk] for chunk in other.partitions]
        union = Dataset(self.context, tagged_left + tagged_right)
        shuffled = union._shuffle_by_key(num_partitions)
        joined = self._run_on_buckets(name, shuffled, _join_chunk)
        return Dataset(self.context, joined)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def collect(self) -> list:
        """All items on the driver, in partition order."""
        out: list = []
        for partition in self.partitions:
            out.extend(partition)
        return out

    def count(self) -> int:
        return sum(len(partition) for partition in self.partitions)

    def reduce(self, function: Callable[[Any, Any], Any]) -> Any:
        """Fold all items with ``function`` (raises on an empty dataset)."""
        items = self.collect()
        if not items:
            raise ValueError("reduce() of empty dataset")
        accumulator = items[0]
        for item in items[1:]:
            accumulator = function(accumulator, item)
        return accumulator

    def num_partitions(self) -> int:
        return len(self.partitions)

    def __repr__(self) -> str:
        return f"Dataset({self.count()} items, {self.num_partitions()} partitions)"


class _BoundKernel:
    """Picklable ``bucket -> kernel(bucket, function)`` adapter.

    A plain closure would not survive the ``process`` backend's
    pickling; binding module-level kernels in an instance does.
    """

    __slots__ = ("kernel", "function")

    def __init__(self, kernel: Callable, function: Callable):
        self.kernel = kernel
        self.function = function

    def __call__(self, bucket: list) -> list:
        return self.kernel(bucket, self.function)


def _run_bucket_chunk(chunk: list, kernel: Callable) -> list:
    """Stage adapter for shuffle output: ``chunk`` is a list of buckets."""
    out: list = []
    for bucket in chunk:
        out.extend(kernel(bucket))
    return out


def _group_chunk(chunk: list) -> list:
    grouped: dict[Hashable, list] = defaultdict(list)
    for key, value in chunk:
        grouped[key].append(value)
    return list(grouped.items())


def _join_chunk(chunk: list) -> list:
    left: dict[Hashable, list] = defaultdict(list)
    right: dict[Hashable, list] = defaultdict(list)
    for key, (tag, value) in chunk:
        (left if tag == 0 else right)[key].append(value)
    out = []
    for key in left:
        if key in right:
            for lvalue in left[key]:
                for rvalue in right[key]:
                    out.append((key, (lvalue, rvalue)))
    return out
