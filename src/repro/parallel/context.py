"""Execution context: partitioned stages with barriers, as in Spark.

A *stage* applies one function to every partition of an input list and
waits for all partitions to finish -- the wait is the synchronisation
barrier (a dashed edge in the paper's Figure 4).  Three backends:

``serial``
    Run partitions in a loop on the driver.  Zero overhead; the
    reference for correctness tests.
``thread``
    A thread pool.  Python's GIL limits CPU-bound speedup, but I/O or
    native-heavy partitions scale; mostly useful for testing the
    scheduling logic cheaply.
``process``
    A process pool: real CPU parallelism.  Stage functions and their
    arguments must be picklable (module-level functions), exactly the
    constraint Spark closures have in practice.

Every stage run is timed and recorded, which is how the scalability
experiment (Figure 6) measures per-phase times.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

BACKENDS = ("serial", "thread", "process")


@dataclass
class StageRecord:
    """Timing record of one executed stage (one barrier-to-barrier unit).

    ``partition_seconds`` is populated by the ``serial`` backend (each
    partition is timed individually), which is what the simulated
    cluster model of :func:`simulated_makespan` consumes.
    """

    name: str
    partitions: int
    seconds: float
    partition_seconds: tuple[float, ...] = ()


def simulated_makespan(
    partition_seconds: Sequence[float],
    workers: int,
    task_overhead: float = 0.01,
    barrier_overhead: float = 0.05,
) -> float:
    """Stage wall time on a simulated cluster of ``workers`` workers.

    Tasks are assigned longest-first to the least-loaded worker (LPT
    scheduling, what a work-stealing executor approximates); every task
    pays a dispatch overhead and the stage ends with one barrier
    synchronisation.  This timing model substitutes for the paper's
    Spark cluster: the *computation* is executed for real (serially,
    per-partition), only the schedule is modelled -- CPython cannot
    demonstrate in-process CPU parallelism directly.

    >>> round(simulated_makespan([1.0, 1.0], 2, task_overhead=0, barrier_overhead=0), 3)
    1.0
    >>> round(simulated_makespan([1.0, 1.0], 1, task_overhead=0, barrier_overhead=0), 3)
    2.0
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    loads = [0.0] * workers
    for seconds in sorted(partition_seconds, reverse=True):
        index = loads.index(min(loads))
        loads[index] += seconds + task_overhead
    return max(loads, default=0.0) + barrier_overhead


def split_into_partitions(items: Sequence[Item], partitions: int) -> list[list[Item]]:
    """Split a sequence into at most ``partitions`` contiguous chunks.

    Chunks are balanced to within one element and never empty.

    >>> split_into_partitions([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    >>> split_into_partitions([1], 4)
    [[1]]
    """
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    items = list(items)
    if not items:
        return []
    partitions = min(partitions, len(items))
    base, remainder = divmod(len(items), partitions)
    chunks: list[list[Item]] = []
    start = 0
    for index in range(partitions):
        width = base + (1 if index < remainder else 0)
        chunks.append(items[start : start + width])
        start += width
    return chunks


class ParallelContext:
    """Runs named stages over partitioned data with a fixed worker pool.

    Parameters
    ----------
    num_workers:
        Parallel tasks that may run simultaneously (the paper's "number
        of available cores").
    backend:
        One of ``serial``, ``thread``, ``process``.
    tasks_per_worker:
        Default partitions per stage = ``num_workers * tasks_per_worker``
        (the paper uses a parallelism factor of 3 so every task sees
        similar resources regardless of core count).

    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(self, num_workers: int = 1, backend: str = "serial", tasks_per_worker: int = 3):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if tasks_per_worker < 1:
            raise ValueError(f"tasks_per_worker must be >= 1, got {tasks_per_worker}")
        self.num_workers = num_workers
        self.backend = backend
        self.tasks_per_worker = tasks_per_worker
        self.stage_log: list[StageRecord] = []
        self._executor: Executor | None = None
        if backend == "thread":
            self._executor = ThreadPoolExecutor(max_workers=num_workers)
        elif backend == "process":
            self._executor = ProcessPoolExecutor(max_workers=num_workers)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def default_partitions(self) -> int:
        return self.num_workers * self.tasks_per_worker

    def run_stage(
        self,
        name: str,
        items: Sequence[Item],
        function: Callable[..., Result],
        *args: Any,
        partitions: int | None = None,
    ) -> list[Result]:
        """Apply ``function(chunk, *args)`` to every partition of ``items``.

        Returns one result per partition, in partition order, after all
        partitions complete (the barrier).  With the ``process`` backend
        ``function`` and ``args`` must be picklable.
        """
        chunks = split_into_partitions(items, partitions or self.default_partitions())
        started = time.perf_counter()
        partition_seconds: tuple[float, ...] = ()
        if self._executor is None:
            results = []
            times = []
            for chunk in chunks:
                chunk_started = time.perf_counter()
                results.append(function(chunk, *args))
                times.append(time.perf_counter() - chunk_started)
            partition_seconds = tuple(times)
        else:
            futures = [self._executor.submit(function, chunk, *args) for chunk in chunks]
            results = [future.result() for future in futures]
        self.stage_log.append(
            StageRecord(
                name=name,
                partitions=len(chunks),
                seconds=time.perf_counter() - started,
                partition_seconds=partition_seconds,
            )
        )
        return results

    def stage_seconds(self, prefix: str = "") -> float:
        """Total recorded time of stages whose name starts with ``prefix``."""
        return sum(record.seconds for record in self.stage_log if record.name.startswith(prefix))

    def __repr__(self) -> str:
        return (
            f"ParallelContext(num_workers={self.num_workers}, backend={self.backend!r}, "
            f"stages_run={len(self.stage_log)})"
        )
