"""Execution context: partitioned stages with barriers, as in Spark.

A *stage* applies one function to every partition of an input list and
waits for all partitions to finish -- the wait is the synchronisation
barrier (a dashed edge in the paper's Figure 4).  Three backends:

``serial``
    Run partitions in a loop on the driver.  Zero overhead; the
    reference for correctness tests.
``thread``
    A thread pool.  Python's GIL limits CPU-bound speedup, but I/O or
    native-heavy partitions scale; mostly useful for testing the
    scheduling logic cheaply.
``process``
    A process pool: real CPU parallelism.  Stage functions and their
    arguments must be picklable (module-level functions), exactly the
    constraint Spark closures have in practice.

Every stage run is timed and recorded, which is how the scalability
experiment (Figure 6) measures per-phase times.  Each stage is also
emitted as a ``stage:<name>`` span (with per-partition child spans) on
the context's :class:`repro.obs.Recorder`, so ``--trace`` runs see the
parallel phases in the same trace as the pipeline phases.  When a trace
is being collected, every partition attempt additionally runs under a
child recorder *inside the worker* (see :func:`_timed_partition`) whose
snapshot is merged back beneath the partition span -- worker spans,
kernel-dispatch counters, and histograms survive the process boundary,
and a ``process`` trace is structurally identical to a ``serial`` one.

Failure handling follows Spark's contract (see ``docs/resilience.md``):
a partition that raises is retried per the context's
:class:`~repro.resilience.RetryPolicy` when ``failure_mode`` is
``retry`` or ``degrade``; in ``degrade`` mode an exhausted partition is
*skipped* -- its hole is recorded in :attr:`StageRecord.skipped` and the
stage returns the surviving partitions' results -- while ``fail_fast``
(the default) keeps the historical abort-on-first-failure behaviour.
Each partition *attempt* draws the ambient fault plan at the
``stage:<name>`` injection site; the draw happens on the driver (where
the plan's seeded schedule lives) and the resulting
:class:`~repro.resilience.FaultAction` ships to the worker, so chaos
stays deterministic across the serial/thread/process backends.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

from repro.obs import NullRecorder, Recorder, RecorderSnapshot, current_recorder, use_recorder
from repro.resilience.faults import FaultAction, FaultPlan, current_faults
from repro.resilience.policy import FAILURE_MODES, RetryPolicy

Item = TypeVar("Item")
Result = TypeVar("Result")

BACKENDS = ("serial", "thread", "process")


@dataclass
class StageRecord:
    """Timing record of one executed stage (one barrier-to-barrier unit).

    ``partition_seconds`` is populated on every backend (partitions are
    timed inside the worker), which is what the simulated cluster model
    of :func:`simulated_makespan` consumes; on a failed stage it covers
    only the partitions that completed before the failure.  ``failed``
    is True when a partition raised (the stage is still recorded, so
    :meth:`ParallelContext.stage_seconds` never silently under-reports
    a failed run) and ``cancelled`` counts the pending sibling futures
    the context revoked before re-raising.

    ``retries`` counts partition re-executions (beyond first attempts)
    and ``skipped`` holds the partition indices dropped in ``degrade``
    mode -- together they are the stage-level resilience ledger the
    pipelines fold into ``ResolutionResult.degraded``.  On a stage with
    skips, ``partition_seconds`` covers the completed partitions only.
    """

    name: str
    partitions: int
    seconds: float
    partition_seconds: tuple[float, ...] = ()
    failed: bool = False
    cancelled: int = 0
    retries: int = 0
    skipped: tuple[int, ...] = ()


def _timed_partition(
    function: Callable[..., Result],
    chunk: list,
    args: tuple,
    fault: FaultAction | None = None,
    trace_id: str | None = None,
) -> tuple[Result, float, RecorderSnapshot | None]:
    """Run one partition and measure it inside the worker.

    Module-level so the ``process`` backend can pickle it; the timing
    therefore excludes executor dispatch and result transfer, exactly
    the per-task compute time the simulated cluster model wants.
    ``fault`` is a pre-drawn chaos action (the driver draws, the worker
    applies): a delay burns partition time inside the measurement and
    an error aborts the attempt, exactly like an organic failure.

    When the driver is collecting a trace it passes its ``trace_id``;
    the attempt then runs under a child :class:`Recorder` installed as
    the ambient recorder, so everything the partition records -- a
    ``worker`` span with the worker's pid, kernel-dispatch counters,
    nested kernel spans -- is captured *inside the worker process* and
    returned as a picklable snapshot for the driver to merge.  Every
    backend (serial included) takes this same path, which is what makes
    a ``process`` trace structurally identical to a ``serial`` one.  A
    failed attempt raises before snapshotting, so only work that
    actually contributed results is ever merged (retried attempts don't
    double-count).
    """
    started = time.perf_counter()
    if trace_id is None:
        if fault is not None:
            fault.apply()
        result = function(chunk, *args)
        return result, time.perf_counter() - started, None
    child = Recorder(trace_id=trace_id)
    with use_recorder(child):
        with child.span("worker", pid=os.getpid(), items=len(chunk)):
            if fault is not None:
                fault.apply()
            result = function(chunk, *args)
    return result, time.perf_counter() - started, child.snapshot()


def simulated_makespan(
    partition_seconds: Sequence[float],
    workers: int,
    task_overhead: float = 0.01,
    barrier_overhead: float = 0.05,
) -> float:
    """Stage wall time on a simulated cluster of ``workers`` workers.

    Tasks are assigned longest-first to the least-loaded worker (LPT
    scheduling, what a work-stealing executor approximates); every task
    pays a dispatch overhead and the stage ends with one barrier
    synchronisation.  This timing model substitutes for the paper's
    Spark cluster: the *computation* is executed for real (serially,
    per-partition), only the schedule is modelled -- CPython cannot
    demonstrate in-process CPU parallelism directly.

    >>> round(simulated_makespan([1.0, 1.0], 2, task_overhead=0, barrier_overhead=0), 3)
    1.0
    >>> round(simulated_makespan([1.0, 1.0], 1, task_overhead=0, barrier_overhead=0), 3)
    2.0
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    loads = [0.0] * workers
    for seconds in sorted(partition_seconds, reverse=True):
        index = loads.index(min(loads))
        loads[index] += seconds + task_overhead
    return max(loads, default=0.0) + barrier_overhead


def split_into_partitions(items: Sequence[Item], partitions: int) -> list[list[Item]]:
    """Split a sequence into at most ``partitions`` contiguous chunks.

    Chunks are balanced to within one element and never empty.

    >>> split_into_partitions([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    >>> split_into_partitions([1], 4)
    [[1]]
    """
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    items = list(items)
    if not items:
        return []
    partitions = min(partitions, len(items))
    base, remainder = divmod(len(items), partitions)
    chunks: list[list[Item]] = []
    start = 0
    for index in range(partitions):
        width = base + (1 if index < remainder else 0)
        chunks.append(items[start : start + width])
        start += width
    return chunks


class ParallelContext:
    """Runs named stages over partitioned data with a fixed worker pool.

    Parameters
    ----------
    num_workers:
        Parallel tasks that may run simultaneously (the paper's "number
        of available cores").
    backend:
        One of ``serial``, ``thread``, ``process``.
    tasks_per_worker:
        Default partitions per stage = ``num_workers * tasks_per_worker``
        (the paper uses a parallelism factor of 3 so every task sees
        similar resources regardless of core count).
    recorder:
        Observability sink for stage spans.  ``None`` (the default)
        resolves the ambient :func:`repro.obs.current_recorder` at each
        stage, a no-op unless a trace is active.
    failure_mode:
        One of :data:`~repro.resilience.FAILURE_MODES`: ``fail_fast``
        (the default; first partition failure aborts the stage),
        ``retry`` (failed partitions are retried per ``retry_policy``,
        then the stage fails), or ``degrade`` (exhausted partitions are
        skipped, recorded in :attr:`StageRecord.skipped`, and the stage
        returns the surviving results).
    retry_policy:
        Attempt/backoff schedule for ``retry`` and ``degrade`` modes; a
        default :class:`~repro.resilience.RetryPolicy` is created for
        ``retry`` mode when omitted (``degrade`` without a policy skips
        on the first failure).

    Use as a context manager, or call :meth:`shutdown` (alias
    :meth:`close`) explicitly so thread/process pools never leak across
    resolves.
    """

    def __init__(
        self,
        num_workers: int = 1,
        backend: str = "serial",
        tasks_per_worker: int = 3,
        recorder: Recorder | None = None,
        failure_mode: str = "fail_fast",
        retry_policy: RetryPolicy | None = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if tasks_per_worker < 1:
            raise ValueError(f"tasks_per_worker must be >= 1, got {tasks_per_worker}")
        if failure_mode not in FAILURE_MODES:
            raise ValueError(
                f"failure_mode must be one of {FAILURE_MODES}, got {failure_mode!r}"
            )
        self.num_workers = num_workers
        self.backend = backend
        self.tasks_per_worker = tasks_per_worker
        self.failure_mode = failure_mode
        if retry_policy is None and failure_mode == "retry":
            retry_policy = RetryPolicy()
        self.retry_policy = retry_policy
        self.stage_log: list[StageRecord] = []
        self._recorder = recorder
        self._executor: Executor | None = None
        if backend == "thread":
            self._executor = ThreadPoolExecutor(max_workers=num_workers)
        elif backend == "process":
            self._executor = ProcessPoolExecutor(max_workers=num_workers)

    @property
    def recorder(self) -> Recorder:
        """The span sink of the next stage (never None)."""
        return self._recorder if self._recorder is not None else current_recorder()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def close(self) -> None:
        """Alias of :meth:`shutdown`, for file-like lifecycle idiom."""
        self.shutdown()

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def default_partitions(self) -> int:
        return self.num_workers * self.tasks_per_worker

    def run_stage(
        self,
        name: str,
        items: Sequence[Item],
        function: Callable[..., Result],
        *args: Any,
        partitions: int | None = None,
    ) -> list[Result]:
        """Apply ``function(chunk, *args)`` to every partition of ``items``.

        Returns one result per completed partition, in partition order,
        after all partitions complete (the barrier).  With the
        ``process`` backend ``function`` and ``args`` must be picklable.

        Failure handling is governed by :attr:`failure_mode`.  In
        ``fail_fast`` a partition exception propagates, but only after
        the context cancels every still-pending sibling future (no
        orphaned work keeps running behind the barrier) and appends a
        ``failed`` :class:`StageRecord` -- a failed run is visible in
        :meth:`stage_seconds` rather than silently missing.  In
        ``retry`` each failed partition is re-executed per
        :attr:`retry_policy` (each retry counted as ``retry.attempts``
        on the recorder) before the stage fails; in ``degrade`` an
        exhausted partition is skipped instead -- its index lands in
        :attr:`StageRecord.skipped`, ``stage.skipped`` is counted, and
        the barrier completes with the surviving results.

        Every partition attempt draws the ambient
        :func:`repro.resilience.current_faults` plan at the
        ``stage:<name>`` site; the drawn action runs inside the worker.
        """
        chunks = split_into_partitions(items, partitions or self.default_partitions())
        recorder = self.recorder
        # Child recorders cost a snapshot + merge per partition, so they
        # only run when someone is actually collecting a trace.
        trace_id = None if isinstance(recorder, NullRecorder) else recorder.trace_id
        plan = current_faults()
        site = f"stage:{name}"
        started = time.perf_counter()
        results: list[Result] = []
        times: list[tuple[int, float, RecorderSnapshot | None]] = []
        skipped: list[int] = []
        retries = 0
        failed = False
        cancelled = 0
        stage_span = None

        def draw() -> FaultAction | None:
            return plan.draw(site) if plan is not None else None

        try:
            with recorder.span(
                f"stage:{name}", backend=self.backend, partitions=len(chunks)
            ) as stage_span:
                if self._executor is None:
                    for index, chunk in enumerate(chunks):
                        attempt = 0
                        while True:
                            attempt += 1
                            try:
                                result, seconds, snapshot = _timed_partition(
                                    function, chunk, args, draw(), trace_id
                                )
                            except Exception as error:
                                verdict = self._partition_failure(
                                    name, attempt, error, recorder
                                )
                                if verdict == "retry":
                                    retries += 1
                                    continue
                                if verdict == "skip":
                                    skipped.append(index)
                                    break
                                raise
                            results.append(result)
                            times.append((index, seconds, snapshot))
                            break
                else:
                    futures: dict[int, Future] = {
                        index: self._executor.submit(
                            _timed_partition, function, chunk, args, draw(), trace_id
                        )
                        for index, chunk in enumerate(chunks)
                    }
                    attempts = dict.fromkeys(futures, 1)
                    try:
                        for index in range(len(chunks)):
                            while True:
                                try:
                                    result, seconds, snapshot = futures[index].result()
                                except Exception as error:
                                    verdict = self._partition_failure(
                                        name, attempts[index], error, recorder
                                    )
                                    if verdict == "retry":
                                        retries += 1
                                        attempts[index] += 1
                                        futures[index] = self._executor.submit(
                                            _timed_partition,
                                            function,
                                            chunks[index],
                                            args,
                                            draw(),
                                            trace_id,
                                        )
                                        continue
                                    if verdict == "skip":
                                        skipped.append(index)
                                        break
                                    raise
                                results.append(result)
                                times.append((index, seconds, snapshot))
                                break
                    except BaseException:
                        cancelled = sum(
                            1 for future in futures.values() if future.cancel()
                        )
                        raise
        except BaseException:
            failed = True
            raise
        finally:
            for index, seconds, snapshot in times:
                partition_span = recorder.record_span(
                    f"{name}:partition-{index}", seconds, parent=stage_span
                )
                if snapshot is not None:
                    recorder.merge(snapshot, parent_span=partition_span)
            if skipped:
                recorder.count("stage.skipped", len(skipped))
            self.stage_log.append(
                StageRecord(
                    name=name,
                    partitions=len(chunks),
                    seconds=time.perf_counter() - started,
                    partition_seconds=tuple(seconds for _, seconds, _ in times),
                    failed=failed,
                    cancelled=cancelled,
                    retries=retries,
                    skipped=tuple(skipped),
                )
            )
        return results

    def _partition_failure(
        self, name: str, attempt: int, error: Exception, recorder: Recorder
    ) -> str:
        """Decide what a failed partition attempt does next.

        Returns ``"retry"`` (after counting the retry and sleeping the
        policy's backoff), ``"skip"`` (degrade mode, budget exhausted or
        error not retryable), or ``"raise"``.
        """
        if self.failure_mode == "fail_fast":
            return "raise"
        policy = self.retry_policy
        if (
            policy is not None
            and policy.is_retryable(error)
            and attempt < policy.max_attempts
        ):
            recorder.count("retry.attempts")
            time.sleep(policy.backoff_s(attempt))
            return "retry"
        if self.failure_mode == "degrade":
            return "skip"
        return "raise"

    def stage_seconds(self, prefix: str = "") -> float:
        """Total recorded time of stages whose name starts with ``prefix``."""
        return sum(record.seconds for record in self.stage_log if record.name.startswith(prefix))

    def __repr__(self) -> str:
        return (
            f"ParallelContext(num_workers={self.num_workers}, backend={self.backend!r}, "
            f"stages_run={len(self.stage_log)})"
        )
