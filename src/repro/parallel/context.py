"""Execution context: partitioned stages with barriers, as in Spark.

A *stage* applies one function to every partition of an input list and
waits for all partitions to finish -- the wait is the synchronisation
barrier (a dashed edge in the paper's Figure 4).  Three backends:

``serial``
    Run partitions in a loop on the driver.  Zero overhead; the
    reference for correctness tests.
``thread``
    A thread pool.  Python's GIL limits CPU-bound speedup, but I/O or
    native-heavy partitions scale; mostly useful for testing the
    scheduling logic cheaply.
``process``
    A process pool: real CPU parallelism.  Stage functions and their
    arguments must be picklable (module-level functions), exactly the
    constraint Spark closures have in practice.

Every stage run is timed and recorded, which is how the scalability
experiment (Figure 6) measures per-phase times.  Each stage is also
emitted as a ``stage:<name>`` span (with per-partition child spans) on
the context's :class:`repro.obs.Recorder`, so ``--trace`` runs see the
parallel phases in the same trace as the pipeline phases.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

from repro.obs import Recorder, current_recorder

Item = TypeVar("Item")
Result = TypeVar("Result")

BACKENDS = ("serial", "thread", "process")


@dataclass
class StageRecord:
    """Timing record of one executed stage (one barrier-to-barrier unit).

    ``partition_seconds`` is populated on every backend (partitions are
    timed inside the worker), which is what the simulated cluster model
    of :func:`simulated_makespan` consumes; on a failed stage it covers
    only the partitions that completed before the failure.  ``failed``
    is True when a partition raised (the stage is still recorded, so
    :meth:`ParallelContext.stage_seconds` never silently under-reports
    a failed run) and ``cancelled`` counts the pending sibling futures
    the context revoked before re-raising.
    """

    name: str
    partitions: int
    seconds: float
    partition_seconds: tuple[float, ...] = ()
    failed: bool = False
    cancelled: int = 0


def _timed_partition(
    function: Callable[..., Result], chunk: list, args: tuple
) -> tuple[Result, float]:
    """Run one partition and measure it inside the worker.

    Module-level so the ``process`` backend can pickle it; the timing
    therefore excludes executor dispatch and result transfer, exactly
    the per-task compute time the simulated cluster model wants.
    """
    started = time.perf_counter()
    result = function(chunk, *args)
    return result, time.perf_counter() - started


def simulated_makespan(
    partition_seconds: Sequence[float],
    workers: int,
    task_overhead: float = 0.01,
    barrier_overhead: float = 0.05,
) -> float:
    """Stage wall time on a simulated cluster of ``workers`` workers.

    Tasks are assigned longest-first to the least-loaded worker (LPT
    scheduling, what a work-stealing executor approximates); every task
    pays a dispatch overhead and the stage ends with one barrier
    synchronisation.  This timing model substitutes for the paper's
    Spark cluster: the *computation* is executed for real (serially,
    per-partition), only the schedule is modelled -- CPython cannot
    demonstrate in-process CPU parallelism directly.

    >>> round(simulated_makespan([1.0, 1.0], 2, task_overhead=0, barrier_overhead=0), 3)
    1.0
    >>> round(simulated_makespan([1.0, 1.0], 1, task_overhead=0, barrier_overhead=0), 3)
    2.0
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    loads = [0.0] * workers
    for seconds in sorted(partition_seconds, reverse=True):
        index = loads.index(min(loads))
        loads[index] += seconds + task_overhead
    return max(loads, default=0.0) + barrier_overhead


def split_into_partitions(items: Sequence[Item], partitions: int) -> list[list[Item]]:
    """Split a sequence into at most ``partitions`` contiguous chunks.

    Chunks are balanced to within one element and never empty.

    >>> split_into_partitions([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    >>> split_into_partitions([1], 4)
    [[1]]
    """
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    items = list(items)
    if not items:
        return []
    partitions = min(partitions, len(items))
    base, remainder = divmod(len(items), partitions)
    chunks: list[list[Item]] = []
    start = 0
    for index in range(partitions):
        width = base + (1 if index < remainder else 0)
        chunks.append(items[start : start + width])
        start += width
    return chunks


class ParallelContext:
    """Runs named stages over partitioned data with a fixed worker pool.

    Parameters
    ----------
    num_workers:
        Parallel tasks that may run simultaneously (the paper's "number
        of available cores").
    backend:
        One of ``serial``, ``thread``, ``process``.
    tasks_per_worker:
        Default partitions per stage = ``num_workers * tasks_per_worker``
        (the paper uses a parallelism factor of 3 so every task sees
        similar resources regardless of core count).
    recorder:
        Observability sink for stage spans.  ``None`` (the default)
        resolves the ambient :func:`repro.obs.current_recorder` at each
        stage, a no-op unless a trace is active.

    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(
        self,
        num_workers: int = 1,
        backend: str = "serial",
        tasks_per_worker: int = 3,
        recorder: Recorder | None = None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if tasks_per_worker < 1:
            raise ValueError(f"tasks_per_worker must be >= 1, got {tasks_per_worker}")
        self.num_workers = num_workers
        self.backend = backend
        self.tasks_per_worker = tasks_per_worker
        self.stage_log: list[StageRecord] = []
        self._recorder = recorder
        self._executor: Executor | None = None
        if backend == "thread":
            self._executor = ThreadPoolExecutor(max_workers=num_workers)
        elif backend == "process":
            self._executor = ProcessPoolExecutor(max_workers=num_workers)

    @property
    def recorder(self) -> Recorder:
        """The span sink of the next stage (never None)."""
        return self._recorder if self._recorder is not None else current_recorder()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def default_partitions(self) -> int:
        return self.num_workers * self.tasks_per_worker

    def run_stage(
        self,
        name: str,
        items: Sequence[Item],
        function: Callable[..., Result],
        *args: Any,
        partitions: int | None = None,
    ) -> list[Result]:
        """Apply ``function(chunk, *args)`` to every partition of ``items``.

        Returns one result per partition, in partition order, after all
        partitions complete (the barrier).  With the ``process`` backend
        ``function`` and ``args`` must be picklable.

        When a partition raises, the exception propagates, but only
        after the context cancels every still-pending sibling future
        (no orphaned work keeps running behind the barrier) and appends
        a ``failed`` :class:`StageRecord` -- a failed run is visible in
        :meth:`stage_seconds` rather than silently missing.
        """
        chunks = split_into_partitions(items, partitions or self.default_partitions())
        recorder = self.recorder
        started = time.perf_counter()
        results: list[Result] = []
        times: list[float] = []
        failed = False
        cancelled = 0
        stage_span = None
        try:
            with recorder.span(
                f"stage:{name}", backend=self.backend, partitions=len(chunks)
            ) as stage_span:
                if self._executor is None:
                    for chunk in chunks:
                        result, seconds = _timed_partition(function, chunk, args)
                        results.append(result)
                        times.append(seconds)
                else:
                    futures = [
                        self._executor.submit(_timed_partition, function, chunk, args)
                        for chunk in chunks
                    ]
                    try:
                        for future in futures:
                            result, seconds = future.result()
                            results.append(result)
                            times.append(seconds)
                    except BaseException:
                        cancelled = sum(1 for future in futures if future.cancel())
                        raise
        except BaseException:
            failed = True
            raise
        finally:
            for index, seconds in enumerate(times):
                recorder.record_span(
                    f"{name}:partition-{index}", seconds, parent=stage_span
                )
            self.stage_log.append(
                StageRecord(
                    name=name,
                    partitions=len(chunks),
                    seconds=time.perf_counter() - started,
                    partition_seconds=tuple(times),
                    failed=failed,
                    cancelled=cancelled,
                )
            )
        return results

    def stage_seconds(self, prefix: str = "") -> float:
        """Total recorded time of stages whose name starts with ``prefix``."""
        return sum(record.seconds for record in self.stage_log if record.name.startswith(prefix))

    def __repr__(self) -> str:
        return (
            f"ParallelContext(num_workers={self.num_workers}, backend={self.backend!r}, "
            f"stages_run={len(self.stage_log)})"
        )
