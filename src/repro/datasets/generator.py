"""Synthetic clean-clean KB pair generator.

The generator builds a small "world" of real entities, then renders two
independent, schema-heterogeneous KB views of it:

* every **matching** world entity is described by both KBs -- with
  KB-specific attribute names, partially shared content tokens,
  KB-private noise tokens and (optionally) a shared distinctive name;
* **extra** world entities appear in only one KB, drawing tokens from
  the same pools, so they create realistic blocking noise;
* the world carries a typed **relation graph**; each KB renders an edge
  with its own relation vocabulary and a per-KB fidelity, so neighbor
  evidence survives across KBs even though relation names never align;
* low-discriminability **junk relations** (e.g. ``country``) and
  ``rdf:type``-style attributes reproduce the statistics that
  MinoanER's importance measures must see through.

All randomness flows from one ``random.Random(seed)``, so a
``ProfileSpec`` is a complete, reproducible description of a dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


@dataclass(frozen=True)
class ProfileSpec:
    """Full parameterisation of one synthetic KB pair.

    The defaults produce a small, easy, Restaurant-like dataset; the
    calibrated presets for the paper's four benchmarks live in
    :mod:`repro.datasets.profiles`.

    Token model
    -----------
    Each world entity owns ``core_tokens`` content tokens drawn from a
    medium-frequency pool plus one or two entity-unique rare tokens.
    KB ``x`` renders each core token independently with probability
    ``shared_fraction_x`` -- the expected cross-KB overlap per match is
    ``core_tokens * f1 * f2`` tokens -- and adds ``noise_tokens_x``
    KB-private tokens plus ``common_tokens_x`` draws from a small
    stopword-like pool shared by both KBs (these form the oversized
    blocks that Block Purging must remove).

    Core tokens are grouped into world-level *value chunks* of 1-3
    tokens.  With ``exact_shared_values_x`` (the default) a rendered
    chunk becomes one literal value, so shared chunks are exact shared
    literals (the names/dates/ids real KBs agree on, which
    equality-based systems like PARIS depend on).  Disabling it re-mixes
    core and noise tokens into KB-local multi-token literals -- the
    BBCmusic-DBpedia regime, where token overlap survives but exact
    value equality does not.  ``titlecase_values2`` additionally renders
    KB2 literals in a different lexical form (BTC2012's formatting
    divergence): tokenisation is unaffected, exact equality breaks.

    Name model
    ----------
    Every world entity has a distinctive 2-token name.  A matching
    entity carries the *same* name string in both KBs with probability
    ``name_overlap``, otherwise a perturbed variant.  With
    ``decoy_name_attribute`` the second KB also carries a perfectly
    important but non-overlapping identifier attribute, which hijacks
    the ``k = 1`` name-attribute pick (the paper's BBCmusic-DBpedia
    behaviour in Figure 5).

    Relation model
    --------------
    ``relation_types`` typed edge families with ``out_degree`` edges per
    world entity; each KB renders an edge with probability
    ``neighbor_fidelity_x`` under its own relation name.  ``junk_relations``
    adds per-KB relations pointing to a handful of hub entities (high
    support, low discriminability), which relation importance must rank
    below the real ones.
    """

    name: str = "synthetic"
    seed: int = 7
    # population
    n_matches: int = 100
    extras1: int = 20
    extras2: int = 40
    # tokens
    core_tokens: int = 8
    rare_tokens: int = 2
    shared_fraction1: float = 0.9
    shared_fraction2: float = 0.9
    noise_tokens1: int = 2
    noise_tokens2: int = 2
    common_tokens1: int = 2
    common_tokens2: int = 2
    medium_vocab: int = 4000
    common_vocab: int = 40
    first_name_vocab: int = 300
    surname_vocab: int = 150
    name_token_count: int = 2
    zipf_skew: float = 2.0
    # distractors: extras cloned from matches to confuse value-only matching
    distractor_rate: float = 0.0
    distractor_share: float = 0.6
    distractor_steal_rare: float = 0.0
    distractor_steal_name: float = 0.0
    # franchises: groups of *matched* entities sharing a token set
    # (sequels, same-series albums) -- confusable for value-only matching
    franchise_rate: float = 0.0
    franchise_size: int = 4
    franchise_tokens: int = 3
    # names
    name_overlap: float = 0.9
    name_collision_rate: float = 0.0
    decoy_name_attribute: bool = False
    name_attribute1: str = "voc1:label"
    name_attribute2: str = "voc2:name"
    alias_coverage1: float = 0.85
    alias_coverage2: float = 0.85
    # attributes / types / vocabularies
    content_attributes1: int = 5
    content_attributes2: int = 5
    attributes_per_entity2: int | None = None
    types1: int = 3
    types2: int = 3
    vocabularies1: int = 2
    vocabularies2: int = 2
    # relations
    relation_types: int = 3
    out_degree: float = 2.0
    neighbor_fidelity1: float = 0.9
    neighbor_fidelity2: float = 0.9
    junk_relations: int = 1
    junk_hubs: int = 5
    junk_coverage: float = 1.0
    # literal grouping
    max_tokens_per_value: int = 3
    exact_shared_values1: bool = True
    exact_shared_values2: bool = True
    titlecase_values2: bool = False

    def with_options(self, **changes: Any) -> "ProfileSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class KBPair:
    """A generated (or loaded) clean-clean ER task.

    ``ground_truth`` uses dense entity ids (KB1 id, KB2 id);
    ``relation_alignment`` is the oracle mapping of KB1 relation names
    to KB2 relation names that *the generator knows* -- MinoanER never
    reads it, but the SiGMa-like baseline receives it, mirroring the
    extra assumptions that system makes (section 6).
    """

    name: str
    kb1: KnowledgeBase
    kb2: KnowledgeBase
    ground_truth: set[tuple[int, int]]
    relation_alignment: dict[str, str] = field(default_factory=dict)

    @property
    def uri_ground_truth(self) -> set[tuple[str, str]]:
        return {
            (self.kb1.uri_of(eid1), self.kb2.uri_of(eid2))
            for eid1, eid2 in self.ground_truth
        }

    def __repr__(self) -> str:
        return (
            f"KBPair({self.name!r}, |E1|={len(self.kb1)}, |E2|={len(self.kb2)}, "
            f"matches={len(self.ground_truth)})"
        )


class _World:
    """Intermediate world model shared by both KB renderings."""

    def __init__(self, spec: ProfileSpec, rng: random.Random):
        self.spec = spec
        self.rng = rng
        self.n_total = spec.n_matches + spec.extras1 + spec.extras2
        # world ids: [0, n_matches) matched; then extras1; then extras2
        self.names = [self._make_name(i) for i in range(self.n_total)]
        self.core_chunks = [self._make_core_chunks(i) for i in range(self.n_total)]
        self.types = [rng.randrange(10_000) for _ in range(self.n_total)]
        # Pair-level coin: a match either shares its exact name across
        # both KBs (probability name_overlap) or KB2 renders a variant.
        self.name_shared = [rng.random() < spec.name_overlap for _ in range(self.n_total)]
        self._plant_franchises()
        self._plant_distractors()
        self.edges = self._make_edges()
        self.hubs = list(range(min(spec.junk_hubs, spec.n_matches)))

    def _make_name(self, world_id: int) -> str:
        """A distinctive multi-token name.

        Token pools are small enough that the individual words repeat
        across entities (a shared surname alone is weak evidence; the
        words of "Star Wars Episode V" are individually frequent),
        while the full name string is mostly -- not always -- unique.
        ``name_token_count`` with small pools models title-like names
        whose uniqueness lives in the *combination*, which exact-name
        blocking exploits and bag-of-tokens similarity cannot.
        """
        spec, rng = self.spec, self.rng
        tokens = [f"first{rng.randrange(spec.first_name_vocab)}"]
        for _ in range(max(1, spec.name_token_count) - 1):
            tokens.append(f"sur{rng.randrange(spec.surname_vocab)}")
        return " ".join(tokens)

    def medium_token(self) -> str:
        """A Zipf-skewed draw from the medium-frequency content pool."""
        spec = self.spec
        index = int(spec.medium_vocab * (self.rng.random() ** spec.zipf_skew))
        return f"med{min(index, spec.medium_vocab - 1)}"

    def _make_core_chunks(self, world_id: int) -> list[list[str]]:
        """Content of one world entity as 1-3 token *value chunks*.

        Chunks are the unit both KBs agree on: a rendered chunk is an
        exact shared literal (the names/dates/ids real KBs agree on).
        Each entity owns two entity-unique rare tokens plus Zipf-skewed
        medium-frequency tokens.
        """
        count = max(1, self.spec.core_tokens)
        tokens = [f"rare{world_id}x{i}" for i in range(min(self.spec.rare_tokens, count))]
        seen = set(tokens)
        while len(tokens) < count:
            token = self.medium_token()
            if token not in seen:
                seen.add(token)
                tokens.append(token)
        self.rng.shuffle(tokens)
        return _chunk_tokens(tokens, self.rng, self.spec.max_tokens_per_value)

    def _plant_franchises(self) -> None:
        """Group some matched entities into token-sharing franchises.

        Members of a franchise (movie sequels, same-series albums)
        share ``franchise_tokens`` tokens that dominate their content,
        so matched pairs become mutually confusable for value-only
        matchers; the members' *own* rare tokens and neighbors remain
        the only disambiguators.
        """
        spec, rng = self.spec, self.rng
        if spec.franchise_rate <= 0.0 or spec.franchise_size < 2:
            return
        members = [w for w in range(spec.n_matches) if rng.random() < spec.franchise_rate]
        rng.shuffle(members)
        for group_start in range(0, len(members), spec.franchise_size):
            group = members[group_start : group_start + spec.franchise_size]
            if len(group) < 2:
                continue
            group_id = group[0]
            shared = [f"fran{group_id}x{i}" for i in range(spec.franchise_tokens)]
            base_name = self.names[group_id]
            for part, world_id in enumerate(group):
                # Sequel-style names: exact strings stay distinct (name
                # blocking still works) but tokens and n-grams coincide.
                if world_id != group_id:
                    self.names[world_id] = f"{base_name} part{part + 1}"
                chunks = [list(shared)] + self.core_chunks[world_id]
                # Drop trailing chunks so content size stays comparable.
                total = 0
                kept: list[list[str]] = []
                for chunk in chunks:
                    if total >= spec.core_tokens:
                        break
                    kept.append(chunk)
                    total += len(chunk)
                self.core_chunks[world_id] = kept

    def _plant_distractors(self) -> None:
        """Turn some extras into near-duplicates of matched entities.

        A distractor copies ``distractor_share`` of a match's
        medium-frequency tokens -- re-chunked, so the *token* overlap
        that confuses value-only matchers never becomes an exact shared
        value -- and, with ``name_collision_rate``, a match's exact name
        (breaking the exclusivity that rule R1 and equality-based
        systems rely on).
        """
        spec, rng = self.spec, self.rng
        if spec.n_matches == 0:
            return
        for world_id in range(spec.n_matches, self.n_total):
            if rng.random() < spec.name_collision_rate:
                self.names[world_id] = self.names[rng.randrange(spec.n_matches)]
            if rng.random() < spec.distractor_rate:
                victim = rng.randrange(spec.n_matches)
                if rng.random() < spec.distractor_steal_name:
                    # Token-identical but string-distinct name variant:
                    # confuses bag-of-tokens and n-gram similarity, not
                    # exact-name blocking (the "sequel vs. original"
                    # collisions of large movie KBs).
                    self.names[world_id] = _perturbed_name(self.names[victim], rng)
                # Steal whole chunks: a sequel repeats exact phrases of
                # the original, so every representation a value-only
                # matcher can build (tokens, n-grams, exact values) is
                # confusable; only rare-token chunks are harder to steal.
                stolen: list[list[str]] = []
                for chunk in self.core_chunks[victim]:
                    has_rare = any(token.startswith("rare") for token in chunk)
                    rate = spec.distractor_steal_rare if has_rare else spec.distractor_share
                    if rng.random() < rate:
                        stolen.append(list(chunk))
                own_tokens = [f"rare{world_id}x0"]
                stolen_count = sum(len(chunk) for chunk in stolen)
                while stolen_count + len(own_tokens) < spec.core_tokens:
                    own_tokens.append(self.medium_token())
                rng.shuffle(own_tokens)
                chunks = stolen + _chunk_tokens(own_tokens, rng, spec.max_tokens_per_value)
                rng.shuffle(chunks)
                self.core_chunks[world_id] = chunks

    def _make_edges(self) -> list[tuple[int, int, int]]:
        """Typed world edges ``(source, target, relation type)``.

        Targets are biased towards matched entities so neighbor
        evidence is observable from both KBs.
        """
        rng = self.rng
        spec = self.spec
        edges: list[tuple[int, int, int]] = []
        if spec.relation_types == 0 or spec.out_degree <= 0:
            return edges
        for source in range(self.n_total):
            degree = int(spec.out_degree) + (1 if rng.random() < spec.out_degree % 1 else 0)
            for _ in range(degree):
                if spec.n_matches > 1 and rng.random() < 0.8:
                    target = rng.randrange(spec.n_matches)
                else:
                    target = rng.randrange(self.n_total)
                if target == source:
                    continue
                relation = rng.randrange(spec.relation_types)
                edges.append((source, target, relation))
        return edges

    def membership(self, world_id: int, side: int) -> bool:
        """Does world entity ``world_id`` exist in KB ``side``?"""
        spec = self.spec
        if world_id < spec.n_matches:
            return True
        if world_id < spec.n_matches + spec.extras1:
            return side == 1
        return side == 2


def _perturbed_name(name: str, rng: random.Random) -> str:
    """A KB-local variant of a world name (token overlap, not equality).

    The token order is usually preserved so even token-bigram
    representations confuse the variant with the original, as real
    near-duplicate names do ("Rocky II" vs "Rocky III").
    """
    tokens = name.split()
    tokens.append(f"jr{rng.randrange(50)}")
    if rng.random() < 0.15:
        tokens.reverse()
    return " ".join(tokens)


def _chunk_tokens(tokens: list[str], rng: random.Random, max_tokens: int) -> list[list[str]]:
    """Split a token list into chunks of 1..max_tokens tokens."""
    chunks: list[list[str]] = []
    position = 0
    while position < len(tokens):
        width = rng.randint(1, max(1, max_tokens))
        chunks.append(tokens[position : position + width])
        position += width
    return chunks


def _group_into_values(tokens: list[str], rng: random.Random, max_tokens: int) -> list[str]:
    """Chunk a token list into multi-token literal values."""
    return [" ".join(chunk) for chunk in _chunk_tokens(tokens, rng, max_tokens)]


class _KBRenderer:
    """Renders one KB view of the world."""

    def __init__(self, world: _World, side: int, rng: random.Random):
        spec = world.spec
        self.world = world
        self.side = side
        self.rng = rng
        self.prefix = f"kb{side}"
        self.shared_fraction = spec.shared_fraction1 if side == 1 else spec.shared_fraction2
        self.noise_tokens = spec.noise_tokens1 if side == 1 else spec.noise_tokens2
        self.common_tokens = spec.common_tokens1 if side == 1 else spec.common_tokens2
        self.fidelity = spec.neighbor_fidelity1 if side == 1 else spec.neighbor_fidelity2
        self.name_attribute = spec.name_attribute1 if side == 1 else spec.name_attribute2
        self.alias_attribute = f"voc{side}0:alias"
        self.alias_coverage = spec.alias_coverage1 if side == 1 else spec.alias_coverage2
        self.n_types = spec.types1 if side == 1 else spec.types2
        n_attributes = spec.content_attributes1 if side == 1 else spec.content_attributes2
        n_vocab = spec.vocabularies1 if side == 1 else spec.vocabularies2
        self.content_attributes = [
            f"voc{side}{i % max(1, n_vocab)}:attr{i}" for i in range(max(1, n_attributes))
        ]
        self.relation_names = {
            r: f"voc{side}0:rel{side}_{r}" for r in range(spec.relation_types)
        }
        self.junk_relation_names = [
            f"voc{side}0:junk{side}_{j}" for j in range(spec.junk_relations)
        ]

    def uri(self, world_id: int) -> str:
        return f"{self.prefix}:e{world_id}"

    def render(self) -> tuple[KnowledgeBase, dict[int, int]]:
        """Build the KB; returns it plus ``world id -> entity id``."""
        world, spec, rng = self.world, self.world.spec, self.rng
        members = [w for w in range(world.n_total) if world.membership(w, self.side)]
        # Hoisted out of the per-entity loop: the membership set and a
        # source-grouped edge index (preserving world.edges order per
        # source, so the rng draw sequence is untouched).  Both were
        # O(n) per entity, turning render() quadratic at scale.
        members_set = set(members)
        self._edges_by_source: dict[int, list[tuple[int, int]]] = {}
        for source, target, relation in world.edges:
            self._edges_by_source.setdefault(source, []).append((target, relation))
        descriptions = []
        for world_id in members:
            descriptions.append(self._render_entity(world_id, members_set))
        kb = KnowledgeBase(descriptions, name=f"{spec.name}-E{self.side}")
        mapping = {world_id: index for index, world_id in enumerate(members)}
        return kb, mapping

    def _render_entity(self, world_id: int, members: set[int]) -> EntityDescription:
        world, spec, rng = self.world, self.world.spec, self.rng
        pairs: list[tuple[str, str]] = []

        # Name.  Non-shared matches get a KB2-side variant, so exactly
        # ``name_overlap`` of matching pairs agree on the exact string.
        is_match = world_id < spec.n_matches
        if is_match and self.side == 2 and not world.name_shared[world_id]:
            name = _perturbed_name(world.names[world_id], rng)
        else:
            name = world.names[world_id]
        pairs.append((self.name_attribute, name))
        if rng.random() < self.alias_coverage:
            # A second name-like attribute (aka/alias); this is why the
            # paper's global top-k name attributes use k = 2.
            pairs.append((self.alias_attribute, name))
        if self.side == 2 and spec.decoy_name_attribute:
            pairs.append(("voc20:id", f"id{world_id}k{rng.randrange(10**6)}"))

        # Content values: world chunks kept whole (exact shared literals)
        # or re-chunked into a token soup, per the profile's value model.
        core_chunks = [
            chunk
            for chunk in world.core_chunks[world_id]
            if rng.random() < self.shared_fraction
        ]
        noise = [f"priv{self.side}t{rng.randrange(spec.medium_vocab)}" for _ in range(self.noise_tokens)]
        noise += [f"common{rng.randrange(spec.common_vocab)}" for _ in range(self.common_tokens)]
        exact = spec.exact_shared_values1 if self.side == 1 else spec.exact_shared_values2
        if exact:
            values = [" ".join(chunk) for chunk in core_chunks]
            rng.shuffle(noise)
            values += _group_into_values(noise, rng, spec.max_tokens_per_value)
        else:
            tokens = [token for chunk in core_chunks for token in chunk] + noise
            rng.shuffle(tokens)
            values = _group_into_values(tokens, rng, spec.max_tokens_per_value)
        per_entity_attrs = spec.attributes_per_entity2 if self.side == 2 else None
        if per_entity_attrs:
            attribute_pool = rng.sample(
                self.content_attributes, min(per_entity_attrs, len(self.content_attributes))
            )
        else:
            attribute_pool = self.content_attributes
        for value in values:
            pairs.append((rng.choice(attribute_pool), value))

        # Type.
        if self.n_types > 0:
            type_id = world.types[world_id] % self.n_types
            pairs.append((f"voc{self.side}0:type", f"{self.prefix}type{type_id}"))

        # Formatting divergence: one KB may render literals in a
        # different lexical form (case here; language tags and datatype
        # suffixes in real Web data).  Token-level processing is
        # unaffected, but exact-literal identity across KBs breaks.
        if self.side == 2 and spec.titlecase_values2:
            pairs = [(attribute, value.title()) for attribute, value in pairs]

        # Relations.
        for target, relation in self._edges_by_source.get(world_id, ()):
            if target not in members:
                continue
            if rng.random() < self.fidelity:
                pairs.append((self.relation_names[relation], self.uri(target)))
        for junk_name in self.junk_relation_names:
            if rng.random() >= spec.junk_coverage:
                continue
            hubs = [h for h in world.hubs if h in members and h != world_id]
            if hubs:
                pairs.append((junk_name, self.uri(rng.choice(hubs))))

        return EntityDescription(self.uri(world_id), pairs)


def generate_kb_pair(spec: ProfileSpec) -> KBPair:
    """Generate a reproducible clean-clean KB pair from a profile spec.

    >>> pair = generate_kb_pair(ProfileSpec(n_matches=10, extras1=2, extras2=3))
    >>> (len(pair.kb1), len(pair.kb2), len(pair.ground_truth))
    (12, 13, 10)
    """
    rng = random.Random(spec.seed)
    world = _World(spec, rng)
    kb1, map1 = _KBRenderer(world, 1, random.Random(rng.randrange(2**62))).render()
    kb2, map2 = _KBRenderer(world, 2, random.Random(rng.randrange(2**62))).render()
    ground_truth = {
        (map1[world_id], map2[world_id]) for world_id in range(spec.n_matches)
    }
    alignment = {
        f"voc10:rel1_{r}": f"voc20:rel2_{r}" for r in range(spec.relation_types)
    }
    return KBPair(
        name=spec.name,
        kb1=kb1,
        kb2=kb2,
        ground_truth=ground_truth,
        relation_alignment=alignment,
    )
