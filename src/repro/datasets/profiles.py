"""The four benchmark profiles, calibrated to the paper's datasets.

Each profile is a :class:`~repro.datasets.generator.ProfileSpec` whose
knobs target the corresponding dataset's *regime* from Table 1, Figure 2
and the per-rule recalls of Table 4 (sizes scaled down so experiments
run on one machine, but keeping the paper's relative shapes: KB-size
imbalance, schema heterogeneity, value- vs neighbor-similarity of
matches, and share of exclusive shared names):

``restaurant``
    Small, low Variety, strongly similar matches in both value and
    neighbor similarity (the paper's easiest pair: every system should
    be near-perfect; value evidence alone suffices).
``rexa_dblp``
    Strongly similar matches but heavily imbalanced KB sizes (the
    paper's DBLP is 100x Rexa in entities) and high name coverage.
``bbc_dbpedia``
    High Variety: the second KB has an order of magnitude more
    attributes, ~4x more tokens per entity (normalised set similarities
    collapse), multi-token literal values (exact-equality systems get
    nothing), a decoy top-importance identifier attribute (the ``k = 1``
    failure of Figure 5), name collisions, and nearly similar matches
    that need neighbor evidence.
``yago_imdb``
    Largest and most balanced pair; matches share very few tokens (low
    value similarity) but live in a dense relation graph (high neighbor
    similarity), with many near-duplicate distractors, so value-only
    matching collapses and rank aggregation (R3) dominates.
"""

from __future__ import annotations

from repro.datasets.generator import KBPair, ProfileSpec, generate_kb_pair

PROFILES: dict[str, ProfileSpec] = {
    "restaurant": ProfileSpec(
        name="restaurant",
        seed=421,
        n_matches=89,
        extras1=250,
        extras2=2167,
        core_tokens=9,
        shared_fraction1=0.92,
        shared_fraction2=0.92,
        noise_tokens1=2,
        noise_tokens2=2,
        common_tokens1=2,
        common_tokens2=2,
        medium_vocab=500,
        common_vocab=25,
        first_name_vocab=900,
        surname_vocab=350,
        name_overlap=0.72,
        name_collision_rate=0.0,
        distractor_rate=0.02,
        content_attributes1=4,
        content_attributes2=4,
        types1=3,
        types2=3,
        vocabularies1=2,
        vocabularies2=2,
        relation_types=1,
        out_degree=1.5,
        neighbor_fidelity1=0.95,
        neighbor_fidelity2=0.95,
        junk_relations=1,
        junk_hubs=15,
        junk_coverage=0.3,
    ),
    "rexa_dblp": ProfileSpec(
        name="rexa_dblp",
        seed=422,
        n_matches=700,
        extras1=300,
        extras2=11300,
        core_tokens=11,
        shared_fraction1=0.85,
        shared_fraction2=0.85,
        noise_tokens1=2,
        noise_tokens2=5,
        common_tokens1=2,
        common_tokens2=2,
        medium_vocab=2500,
        common_vocab=40,
        first_name_vocab=1000,
        surname_vocab=300,
        name_overlap=0.93,
        name_collision_rate=0.004,
        distractor_rate=0.10,
        distractor_share=0.5,
        content_attributes1=10,
        content_attributes2=16,
        types1=4,
        types2=10,
        vocabularies1=4,
        vocabularies2=4,
        relation_types=3,
        out_degree=2.0,
        neighbor_fidelity1=0.9,
        neighbor_fidelity2=0.9,
        junk_relations=1,
        junk_hubs=25,
        junk_coverage=0.35,
    ),
    "bbc_dbpedia": ProfileSpec(
        name="bbc_dbpedia",
        seed=423,
        n_matches=1100,
        extras1=400,
        extras2=3200,
        core_tokens=7,
        shared_fraction1=0.72,
        shared_fraction2=0.78,
        noise_tokens1=10,
        noise_tokens2=28,
        common_tokens1=2,
        common_tokens2=8,
        medium_vocab=1500,
        common_vocab=35,
        first_name_vocab=300,
        surname_vocab=150,
        name_token_count=2,
        name_overlap=0.78,
        name_collision_rate=0.10,
        distractor_rate=0.85,
        distractor_share=0.75,
        distractor_steal_rare=0.40,
        distractor_steal_name=0.95,
        franchise_rate=0.45,
        franchise_size=3,
        franchise_tokens=3,
        max_tokens_per_value=3,
        decoy_name_attribute=True,
        titlecase_values2=True,
        exact_shared_values2=False,
        content_attributes1=15,
        content_attributes2=300,
        attributes_per_entity2=8,
        types1=4,
        types2=40,
        vocabularies1=4,
        vocabularies2=6,
        relation_types=4,
        out_degree=3.0,
        neighbor_fidelity1=0.85,
        neighbor_fidelity2=0.9,
        junk_relations=1,
        junk_hubs=30,
        junk_coverage=0.25,
    ),
    "yago_imdb": ProfileSpec(
        name="yago_imdb",
        seed=424,
        n_matches=2800,
        extras1=2200,
        extras2=4200,
        core_tokens=5,
        shared_fraction1=0.62,
        shared_fraction2=0.62,
        noise_tokens1=8,
        noise_tokens2=7,
        common_tokens1=2,
        common_tokens2=2,
        medium_vocab=1200,
        common_vocab=30,
        first_name_vocab=400,
        surname_vocab=200,
        name_token_count=2,
        name_overlap=0.76,
        name_collision_rate=0.06,
        distractor_rate=1.0,
        distractor_share=0.85,
        distractor_steal_rare=0.20,
        distractor_steal_name=1.0,
        franchise_rate=0.8,
        franchise_size=5,
        franchise_tokens=4,
        max_tokens_per_value=3,
        content_attributes1=8,
        content_attributes2=10,
        types1=50,
        types2=5,
        vocabularies1=3,
        vocabularies2=1,
        relation_types=4,
        out_degree=3.5,
        neighbor_fidelity1=0.95,
        neighbor_fidelity2=0.95,
        junk_relations=1,
        junk_hubs=40,
        junk_coverage=0.25,
    ),
}
"""Calibrated specs, keyed by profile name."""


def profile_names() -> list[str]:
    """The four benchmark profiles, in the paper's Table 1 order."""
    return list(PROFILES)


def load_profile(name: str, seed: int | None = None, **overrides) -> KBPair:
    """Generate the named benchmark profile.

    Parameters
    ----------
    name:
        One of :func:`profile_names`.
    seed:
        Override the calibrated seed (e.g. for robustness studies).
    overrides:
        Any :class:`ProfileSpec` field, e.g. ``n_matches=50`` for a
        quicker variant.

    >>> pair = load_profile("restaurant", n_matches=10, extras1=0, extras2=0)
    >>> len(pair.ground_truth)
    10
    """
    try:
        spec = PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {', '.join(PROFILES)}"
        ) from None
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        spec = spec.with_options(**overrides)
    return generate_kb_pair(spec)


def scaled_profile(name: str, scale: float, seed: int | None = None) -> KBPair:
    """A size-scaled variant of a profile (used by the scalability bench).

    ``scale`` multiplies the entity counts (matches and extras) while
    keeping every similarity regime knob untouched.

    >>> pair = scaled_profile("restaurant", 0.1)
    >>> len(pair.kb1) < 100
    True
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    spec = PROFILES[name]
    overrides = {
        "n_matches": max(1, int(spec.n_matches * scale)),
        "extras1": int(spec.extras1 * scale),
        "extras2": int(spec.extras2 * scale),
    }
    if seed is not None:
        overrides["seed"] = seed
    return generate_kb_pair(spec.with_options(**overrides))
