"""Benchmark dataset substrate.

The paper evaluates on four real KB pairs (Restaurant, Rexa-DBLP,
BBCmusic-DBpedia, YAGO-IMDb) that are not redistributable here.  This
package provides a seeded synthetic generator whose four *profiles* are
calibrated to those datasets' characteristics (Table 1 statistics and
the Figure 2 similarity regimes), so every experiment exercises the same
code paths with the same qualitative shape.  Real data can still be
loaded through :mod:`repro.kb.rdf`.
"""

from repro.datasets.generator import KBPair, ProfileSpec, generate_kb_pair
from repro.datasets.profiles import PROFILES, load_profile, profile_names

__all__ = [
    "KBPair",
    "PROFILES",
    "ProfileSpec",
    "generate_kb_pair",
    "load_profile",
    "profile_names",
]
