"""Meta-blocking: weighting and pruning a block collection's pair graph.

MinoanER's ``beta`` computation is, in the paper's own words, "a
variation of Meta-blocking [27], adapted to our value similarity
metric" (section 3.3).  This package implements the Meta-blocking
framework itself (Papadakis, Koutrika, Palpanas, Nejdl, TKDE 2014):

* the **blocking graph**: one node per entity, one edge per
  co-occurring cross-KB pair;
* four classic **edge weighting schemes** -- CBS, ECBS, JS and ARCS
  (MinoanER's valueSim is the ARCS family with ``1/log2`` damping);
* four **pruning schemes** -- WEP/CEP (global weight/cardinality
  thresholds) and WNP/CNP (node-local thresholds; MinoanER's top-K
  candidate pruning is exactly CNP).

It both documents where MinoanER comes from and provides drop-in
candidate-pruning alternatives for ablation studies.
"""

from repro.metablocking.graph import WeightedPairGraph, build_pair_graph
from repro.metablocking.pruning import (
    cardinality_edge_pruning,
    cardinality_node_pruning,
    weight_edge_pruning,
    weight_node_pruning,
)
from repro.metablocking.weights import WEIGHT_SCHEMES, arcs, cbs, ecbs, jaccard_scheme

__all__ = [
    "WEIGHT_SCHEMES",
    "WeightedPairGraph",
    "arcs",
    "build_pair_graph",
    "cardinality_edge_pruning",
    "cardinality_node_pruning",
    "cbs",
    "ecbs",
    "jaccard_scheme",
    "weight_edge_pruning",
    "weight_node_pruning",
]
