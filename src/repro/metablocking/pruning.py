"""Pruning algorithms of Meta-blocking: discard low-weight candidates.

Two axes (Papadakis et al., TKDE 2014): the *scope* of the threshold
(global = edge-centric, per-node = node-centric) and its *kind*
(a weight bound or a cardinality bound):

* **WEP** -- weight edge pruning: keep edges above the global mean weight;
* **CEP** -- cardinality edge pruning: keep the globally top-K edges;
* **WNP** -- weight node pruning: per node, keep edges above that
  node's mean weight (an edge survives if either endpoint keeps it);
* **CNP** -- cardinality node pruning: per node, keep the top-k edges
  (MinoanER's top-K candidate retention is exactly this, applied
  independently per evidence type and kept *directed*).

All functions take the weighted edge list produced by
:meth:`repro.metablocking.graph.WeightedPairGraph.weighted_edges` and
return the surviving pairs.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Sequence

Edge = tuple[int, int, float]


def weight_edge_pruning(edges: Sequence[Edge]) -> set[tuple[int, int]]:
    """WEP: keep edges with weight above the global mean.

    >>> sorted(weight_edge_pruning([(0, 0, 1.0), (0, 1, 3.0)]))
    [(0, 1)]
    """
    if not edges:
        return set()
    mean = sum(weight for _, _, weight in edges) / len(edges)
    return {(eid1, eid2) for eid1, eid2, weight in edges if weight > mean}


def cardinality_edge_pruning(edges: Sequence[Edge], k: int) -> set[tuple[int, int]]:
    """CEP: keep the globally top-``k`` edges (ties broken by pair id).

    >>> sorted(cardinality_edge_pruning([(0, 0, 1.0), (0, 1, 3.0), (1, 0, 2.0)], 2))
    [(0, 1), (1, 0)]
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    best = heapq.nsmallest(
        k, edges, key=lambda edge: (-edge[2], edge[0], edge[1])
    )
    return {(eid1, eid2) for eid1, eid2, _ in best}


def weight_node_pruning(edges: Sequence[Edge]) -> set[tuple[int, int]]:
    """WNP: keep an edge if it beats the mean weight of either endpoint."""
    totals_1: dict[int, list[float]] = defaultdict(lambda: [0.0, 0])
    totals_2: dict[int, list[float]] = defaultdict(lambda: [0.0, 0])
    for eid1, eid2, weight in edges:
        totals_1[eid1][0] += weight
        totals_1[eid1][1] += 1
        totals_2[eid2][0] += weight
        totals_2[eid2][1] += 1
    survivors: set[tuple[int, int]] = set()
    for eid1, eid2, weight in edges:
        mean1 = totals_1[eid1][0] / totals_1[eid1][1]
        mean2 = totals_2[eid2][0] / totals_2[eid2][1]
        if weight > mean1 or weight > mean2:
            survivors.add((eid1, eid2))
    return survivors


def cardinality_node_pruning(
    edges: Sequence[Edge],
    k: int,
    require_both: bool = False,
) -> set[tuple[int, int]]:
    """CNP: per node, keep the top-``k`` edges.

    With ``require_both=False`` (the classic redefined-input variant) an
    edge survives when *either* endpoint retains it; with
    ``require_both=True`` both endpoints must retain it -- which is
    MinoanER's reciprocity condition (rule R4) expressed at the pruning
    level.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    per_node_1: dict[int, list[Edge]] = defaultdict(list)
    per_node_2: dict[int, list[Edge]] = defaultdict(list)
    for edge in edges:
        per_node_1[edge[0]].append(edge)
        per_node_2[edge[1]].append(edge)

    def top_of(groups: dict[int, list[Edge]]) -> set[tuple[int, int]]:
        kept: set[tuple[int, int]] = set()
        for group in groups.values():
            best = heapq.nsmallest(k, group, key=lambda e: (-e[2], e[0], e[1]))
            kept.update((eid1, eid2) for eid1, eid2, _ in best)
        return kept

    kept_1 = top_of(per_node_1)
    kept_2 = top_of(per_node_2)
    if require_both:
        return kept_1 & kept_2
    return kept_1 | kept_2
