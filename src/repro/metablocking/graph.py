"""The Meta-blocking pair graph: co-occurrence statistics per pair.

For a (purged) block collection over a clean-clean pair, the graph
holds, per cross-KB candidate pair, everything the weighting schemes
need: the number of shared blocks, the sum of inverse block
cardinalities, and per-entity block counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.blocking.base import BlockCollection


@dataclass
class PairStatistics:
    """Co-occurrence statistics of one candidate pair."""

    shared_blocks: int = 0
    inverse_cardinality_sum: float = 0.0  # sum over shared blocks of 1/||b||
    log_damped_sum: float = 0.0  # sum of 1/log2(||b|| + 1) -- MinoanER's beta


class WeightedPairGraph:
    """Candidate pairs with co-occurrence statistics and entity degrees.

    Built by :func:`build_pair_graph`; consumed by the weighting schemes
    (:mod:`repro.metablocking.weights`) and pruning algorithms
    (:mod:`repro.metablocking.pruning`).
    """

    def __init__(
        self,
        n1: int,
        n2: int,
        pair_statistics: dict[tuple[int, int], PairStatistics],
        blocks_per_entity_1: list[int],
        blocks_per_entity_2: list[int],
        total_blocks: int,
    ):
        self.n1 = n1
        self.n2 = n2
        self.pair_statistics = pair_statistics
        self.blocks_per_entity_1 = blocks_per_entity_1
        self.blocks_per_entity_2 = blocks_per_entity_2
        self.total_blocks = total_blocks

    def edges(self) -> Iterator[tuple[int, int]]:
        return iter(self.pair_statistics)

    def edge_count(self) -> int:
        return len(self.pair_statistics)

    def weighted_edges(
        self, scheme: Callable[["WeightedPairGraph", int, int], float]
    ) -> list[tuple[int, int, float]]:
        """All edges scored by one weighting scheme, deterministic order."""
        return [
            (eid1, eid2, scheme(self, eid1, eid2))
            for eid1, eid2 in sorted(self.pair_statistics)
        ]

    def __repr__(self) -> str:
        return (
            f"WeightedPairGraph(n1={self.n1}, n2={self.n2}, "
            f"edges={self.edge_count()}, blocks={self.total_blocks})"
        )


def build_pair_graph(blocks: BlockCollection, n1: int, n2: int) -> WeightedPairGraph:
    """Aggregate a block collection into a weighted pair graph.

    Cost is the collection's total comparisons (bounded by purging).
    """
    statistics: dict[tuple[int, int], PairStatistics] = {}
    blocks_per_entity_1 = [0] * n1
    blocks_per_entity_2 = [0] * n2
    for block in blocks:
        cardinality = block.comparisons
        inverse = 1.0 / cardinality if cardinality else 0.0
        damped = 1.0 / math.log2(cardinality + 1.0) if cardinality else 0.0
        for eid1 in block.side1:
            blocks_per_entity_1[eid1] += 1
        for eid2 in block.side2:
            blocks_per_entity_2[eid2] += 1
        for eid1 in block.side1:
            for eid2 in block.side2:
                entry = statistics.get((eid1, eid2))
                if entry is None:
                    entry = statistics[(eid1, eid2)] = PairStatistics()
                entry.shared_blocks += 1
                entry.inverse_cardinality_sum += inverse
                entry.log_damped_sum += damped
    return WeightedPairGraph(
        n1=n1,
        n2=n2,
        pair_statistics=statistics,
        blocks_per_entity_1=blocks_per_entity_1,
        blocks_per_entity_2=blocks_per_entity_2,
        total_blocks=len(blocks),
    )
