"""Edge weighting schemes of Meta-blocking (Papadakis et al., TKDE 2014).

Each scheme maps a candidate pair's co-occurrence statistics to a
weight estimating its matching likelihood -- without looking at the
entities' content, only at how blocking indexed them:

* **CBS** (Common Blocks Scheme): the number of blocks the pair shares.
* **ECBS** (Enhanced CBS): CBS damped by how prolific each entity is
  across blocks, ``CBS * log(|B|/|B_i|) * log(|B|/|B_j|)``.
* **JS** (Jaccard Scheme): shared blocks over the union of the two
  entities' blocks.
* **ARCS** (Aggregated Reciprocal Comparisons): ``sum over shared
  blocks of 1/||b||`` -- big stopword-ish blocks contribute little.

MinoanER's ``beta`` (valueSim) is the ARCS idea with logarithmic
damping, ``sum of 1/log2(||b|| + 1)``; it is exposed here as
``arcs_log`` so ablations can compare the two directly.
"""

from __future__ import annotations

import math

from repro.metablocking.graph import WeightedPairGraph


def cbs(graph: WeightedPairGraph, eid1: int, eid2: int) -> float:
    """Common Blocks Scheme: the raw shared-block count."""
    return float(graph.pair_statistics[(eid1, eid2)].shared_blocks)


def ecbs(graph: WeightedPairGraph, eid1: int, eid2: int) -> float:
    """Enhanced CBS: damp prolific entities (IDF-style on block counts)."""
    shared = graph.pair_statistics[(eid1, eid2)].shared_blocks
    blocks1 = graph.blocks_per_entity_1[eid1]
    blocks2 = graph.blocks_per_entity_2[eid2]
    if not blocks1 or not blocks2 or not graph.total_blocks:
        return 0.0
    return (
        shared
        * math.log(graph.total_blocks / blocks1 + 1.0)
        * math.log(graph.total_blocks / blocks2 + 1.0)
    )


def jaccard_scheme(graph: WeightedPairGraph, eid1: int, eid2: int) -> float:
    """Jaccard Scheme: shared blocks over the union of both block sets."""
    shared = graph.pair_statistics[(eid1, eid2)].shared_blocks
    union = (
        graph.blocks_per_entity_1[eid1] + graph.blocks_per_entity_2[eid2] - shared
    )
    if union <= 0:
        return 0.0
    return shared / union


def arcs(graph: WeightedPairGraph, eid1: int, eid2: int) -> float:
    """ARCS: sum of reciprocal block cardinalities over shared blocks."""
    return graph.pair_statistics[(eid1, eid2)].inverse_cardinality_sum


def arcs_log(graph: WeightedPairGraph, eid1: int, eid2: int) -> float:
    """MinoanER's beta: ARCS with logarithmic damping (Definition 2.1)."""
    return graph.pair_statistics[(eid1, eid2)].log_damped_sum


WEIGHT_SCHEMES = {
    "cbs": cbs,
    "ecbs": ecbs,
    "js": jaccard_scheme,
    "arcs": arcs,
    "arcs_log": arcs_log,
}
"""Registry: scheme name -> callable(graph, eid1, eid2)."""
