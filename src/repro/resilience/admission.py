"""Admission control: bounded queues, per-source quotas, retry budgets.

An overloaded server has exactly three honest choices: queue (bounded!),
shed (explicitly!), or degrade (flagged!).  This module supplies the
first two for the serving tier; ``failure_mode="degrade"`` (PR 4/7)
already supplies the third.  The design follows the classic SRE
playbook -- a bounded pending-work gauge instead of an unbounded queue,
token buckets per traffic source instead of one global throttle, and a
Finagle-style *retry budget* so retries are a fixed fraction of real
traffic rather than a multiplier on it:

* :class:`TokenBucket` -- the standard leaky-bucket rate limiter:
  ``rate_per_s`` tokens drip in, ``burst`` caps the reservoir,
  ``try_take`` never blocks (admission control sheds, it does not
  queue callers on a lock).
* :class:`RetryBudget` -- every real request deposits ``ratio`` tokens,
  every retry withdraws one; a small constant ``reserve`` keeps
  low-traffic clients (and unit tests) unconstrained.  When a shard is
  down hard, the budget drains and retries stop, turning a 3x
  amplification into fail-fast.
* :class:`AdmissionController` -- the front door: a bounded
  pending-cost gauge (queue limit) plus lazily-created per-source
  buckets (quota).  Rejections raise :class:`LoadShedError` carrying a
  machine-readable ``reason`` (``"queue"`` or ``"quota"``) so the CLI
  can emit an explicit shed record -- never a silent drop.

Everything is deterministic under an injected ``clock`` and counts
through the ambient :func:`repro.obs.current_recorder`
(``admission.admitted``, ``admission.shed.queue``,
``admission.shed.quota``, ``retry.budget_denied``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs import current_recorder

DEFAULT_SOURCE = "default"
"""Bucket key used when a request carries no ``source`` label."""

MAX_TRACKED_SOURCES = 1024
"""Per-source buckets are kept in an LRU of at most this many entries,
so a hostile client cannot grow router memory by inventing sources."""


class LoadShedError(RuntimeError):
    """An admission rejection: the request was shed, not processed.

    ``reason`` is machine-readable (``"queue"`` | ``"quota"``) and is
    copied onto the JSONL shed record by ``repro serve``; ``source`` is
    the traffic source that was over its quota (queue rejections apply
    to all sources, so it may be ``None``).
    """

    def __init__(self, reason: str, message: str, source: str | None = None):
        super().__init__(message)
        self.reason = reason
        self.source = source


class TokenBucket:
    """A non-blocking token bucket: ``rate_per_s`` refill, ``burst`` cap.

    >>> clock = iter([0.0, 0.0, 0.0, 1.0]).__next__
    >>> bucket = TokenBucket(rate_per_s=1.0, burst=1.0, clock=clock)
    >>> bucket.try_take(), bucket.try_take(), bucket.try_take()
    (True, False, True)
    """

    __slots__ = ("_clock", "_last", "_lock", "burst", "rate_per_s", "tokens")

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._last = clock()
        self.tokens = burst
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate_per_s)

    def try_take(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self.tokens + 1e-9 < amount:
                return False
            self.tokens -= amount
            return True


class RetryBudget:
    """Finagle-style retry budget: retries as a fraction of real traffic.

    Every call to :meth:`note_request` deposits ``ratio`` tokens (capped
    at ``cap``); every :meth:`allow_retry` withdraws one.  The balance
    starts at ``reserve`` so cold starts and low-volume callers retry
    freely; under a sustained failure the deposits cannot keep up with
    the withdrawals and retries stop -- the amplification bound is
    ``1 + ratio`` requests downstream per request upstream, instead of
    ``max_attempts``x.
    """

    __slots__ = ("_lock", "balance", "cap", "denied", "ratio", "reserve")

    def __init__(self, ratio: float = 0.2, reserve: float = 10.0, cap: float = 100.0):
        if ratio < 0:
            raise ValueError(f"ratio must be >= 0, got {ratio}")
        if reserve < 0 or cap < reserve:
            raise ValueError(f"need 0 <= reserve <= cap, got {reserve}/{cap}")
        self.ratio = ratio
        self.reserve = reserve
        self.cap = cap
        self.balance = float(reserve)
        self.denied = 0
        self._lock = threading.Lock()

    def note_request(self) -> None:
        """Record one unit of real (non-retry) traffic."""
        with self._lock:
            self.balance = min(self.cap, self.balance + self.ratio)

    def allow_retry(self) -> bool:
        """Withdraw one retry token; ``False`` means do not retry."""
        with self._lock:
            # The epsilon keeps float deposit drift (10 x 0.1 < 1.0) from
            # denying a retry the arithmetic says is funded.
            if self.balance + 1e-9 >= 1.0:
                self.balance -= 1.0
                return True
            self.denied += 1
        current_recorder().count("retry.budget_denied")
        return False

    def stats(self) -> dict[str, float | int]:
        with self._lock:
            return {"balance": round(self.balance, 3), "denied": self.denied}


class AdmissionController:
    """The serving front door: bounded pending work + per-source quotas.

    Parameters
    ----------
    max_pending:
        Upper bound on the summed *cost* (query count) of requests
        currently inside the engine.  ``None`` disables the bound.
    quota_qps / quota_burst:
        Per-source token-bucket quota.  ``None`` disables quotas;
        ``quota_burst`` defaults to ``max(1, 2 * quota_qps)``.
    clock:
        Injected monotonic clock for deterministic tests.

    Use as a context manager around the admitted work::

        with admission.admit(source="tenant-a", cost=len(batch)):
            ...  # pending cost held for the duration

    Rejections raise :class:`LoadShedError` *before* any work happens
    and are counted on the recorder; they must surface to the client as
    explicit error records, never as silently dropped requests.
    """

    def __init__(
        self,
        max_pending: int | None = None,
        quota_qps: float | None = None,
        quota_burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        recorder=None,
    ):
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if quota_qps is not None and quota_qps <= 0:
            raise ValueError(f"quota_qps must be > 0, got {quota_qps}")
        if quota_burst is not None and quota_burst <= 0:
            raise ValueError(f"quota_burst must be > 0, got {quota_burst}")
        self.max_pending = max_pending
        self.quota_qps = quota_qps
        self.quota_burst = (
            quota_burst
            if quota_burst is not None
            else (max(1.0, 2.0 * quota_qps) if quota_qps is not None else None)
        )
        self._clock = clock
        self._recorder = recorder
        self._lock = threading.Lock()
        self._pending = 0
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self.admitted = 0
        self.shed = {"queue": 0, "quota": 0}

    @property
    def recorder(self):
        return self._recorder if self._recorder is not None else current_recorder()

    @property
    def pending(self) -> int:
        return self._pending

    def _bucket(self, source: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(source)
            if bucket is None:
                bucket = TokenBucket(
                    rate_per_s=self.quota_qps,
                    burst=self.quota_burst,
                    clock=self._clock,
                )
                self._buckets[source] = bucket
                while len(self._buckets) > MAX_TRACKED_SOURCES:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(source)
            return bucket

    def _shed(self, reason: str, message: str, source: str | None) -> LoadShedError:
        with self._lock:
            self.shed[reason] += 1
        recorder = self.recorder
        recorder.count("admission.shed")
        recorder.count(f"admission.shed.{reason}")
        return LoadShedError(reason, message, source=source)

    @contextmanager
    def admit(self, source: str | None = None, cost: int = 1) -> Iterator[None]:
        """Admit ``cost`` units of work for ``source`` or raise LoadShedError."""
        cost = max(1, int(cost))
        if self.max_pending is not None:
            with self._lock:
                if self._pending + cost > self.max_pending:
                    pending = self._pending
                    admitted = False
                else:
                    self._pending += cost
                    admitted = True
            if not admitted:
                raise self._shed(
                    "queue",
                    f"admission queue full: {pending}+{cost} > {self.max_pending}",
                    source,
                )
        try:
            if self.quota_qps is not None:
                key = source if source else DEFAULT_SOURCE
                if not self._bucket(key).try_take(float(cost)):
                    raise self._shed(
                        "quota",
                        f"source {key!r} over quota ({self.quota_qps}/s)",
                        key,
                    )
            recorder = self.recorder
            recorder.count("admission.admitted", cost)
            if self.max_pending is not None:
                recorder.gauge("admission.pending", float(self._pending))
            with self._lock:
                self.admitted += cost
            yield
        finally:
            if self.max_pending is not None:
                with self._lock:
                    self._pending -= cost

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "max_pending": self.max_pending,
                "pending": self._pending,
                "quota_qps": self.quota_qps,
                "quota_burst": self.quota_burst,
                "sources": len(self._buckets),
                "admitted": self.admitted,
                "shed": dict(self.shed),
            }
