"""Retry and deadline policies: the knobs of graceful degradation.

Two small primitives shared by the parallel and serving stacks:

* :class:`RetryPolicy` -- bounded attempts with exponential backoff and
  *seeded* jitter, plus a retryable-exception filter.  Spark retries a
  failed task a fixed number of times before failing the stage; this is
  that contract, deterministic enough to test (two policies built with
  the same seed sleep the same schedule).
* :class:`Deadline` -- a monotonic time budget created once at the top
  of a call chain and passed down, so every layer asks the same clock
  "how much budget is left" instead of each inventing its own timeout.

:data:`FAILURE_MODES` names the three stage-failure behaviours of
:class:`repro.parallel.context.ParallelContext`: ``fail_fast`` (first
partition failure aborts the stage -- the historical behaviour),
``retry`` (failed partitions are retried per policy, then the stage
fails), and ``degrade`` (exhausted partitions are *skipped* and
recorded, and the pipeline produces a partial, explicitly-flagged
result).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, TypeVar

from repro.resilience.faults import FaultInjected

Value = TypeVar("Value")

FAILURE_MODES = ("fail_fast", "retry", "degrade")
"""Accepted values of ``MinoanERConfig.failure_mode`` and
``ParallelContext(failure_mode=...)``."""

DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    FaultInjected,
    TimeoutError,
    ConnectionError,
    InterruptedError,
    BrokenPipeError,
)
"""Exception types treated as transient by default: injected faults and
the OS-level errors a lost worker or flaky filesystem produces."""


class DeadlineExpired(RuntimeError):
    """Raised by :meth:`Deadline.check` once the budget is spent."""


class Deadline:
    """A monotonic time budget, created once and passed down a call chain.

    >>> deadline = Deadline(60.0)
    >>> deadline.expired()
    False
    >>> Deadline(0.0, clock=lambda: 5.0).remaining()
    0.0

    ``clock`` defaults to :func:`time.monotonic`; tests substitute a
    fake clock for deterministic expiry.
    """

    __slots__ = ("_clock", "_expires_at", "budget_s")

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic):
        if seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds}")
        self.budget_s = seconds
        self._clock = clock
        self._expires_at = clock() + seconds

    @classmethod
    def after_ms(cls, milliseconds: float) -> "Deadline":
        """A deadline ``milliseconds`` from now (the serving-config unit)."""
        return cls(milliseconds / 1e3)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExpired` if the budget is spent.

        Call at natural checkpoints between units of work; ``label``
        names the work that would have run next, for the error message.
        """
        if self.expired():
            where = f" before {label}" if label else ""
            raise DeadlineExpired(
                f"deadline of {self.budget_s * 1e3:.3f}ms expired{where}"
            )

    def __repr__(self) -> str:
        return f"Deadline(budget_s={self.budget_s}, remaining_s={self.remaining():.6f})"


class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (so ``3`` means up to two
        retries).
    base_delay_s / max_delay_s:
        Backoff before retry ``n`` (1-based) is
        ``min(max_delay_s, base_delay_s * 2**(n-1))`` plus jitter.
    jitter_ratio:
        Each backoff is stretched by up to this fraction, drawn from a
        RNG seeded with ``seed`` -- two policies with equal parameters
        sleep identical schedules, which keeps chaos tests
        deterministic while still de-synchronising real retry storms.
    retryable:
        Exception types worth retrying; everything else propagates
        immediately (a ``ValueError`` from bad input will never succeed
        on attempt two).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        jitter_ratio: float = 0.1,
        seed: int = 0,
        retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= jitter_ratio <= 1.0:
            raise ValueError(f"jitter_ratio must be in [0, 1], got {jitter_ratio}")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.jitter_ratio = jitter_ratio
        self.seed = seed
        self.retryable = retryable
        self._lock = threading.Lock()
        import random

        self._rng = random.Random(seed)

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def backoff_s(self, attempt: int) -> float:
        """Sleep before the retry following failed attempt ``attempt``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.max_delay_s, self.base_delay_s * (2.0 ** (attempt - 1)))
        if self.jitter_ratio:
            with self._lock:
                delay *= 1.0 + self.jitter_ratio * self._rng.random()
        return delay

    def call(
        self,
        thunk: Callable[[], Value],
        on_retry: Callable[[int, BaseException], Any] | None = None,
        deadline: "Deadline | None" = None,
        budget: "Any | None" = None,
    ) -> Value:
        """Run ``thunk`` under this policy and return its value.

        ``on_retry(attempt, error)`` fires before each backoff sleep
        (attempt is the 1-based attempt that just failed) -- the hook
        the callers use to count ``retry.attempts`` on their recorder.
        Non-retryable errors and the final failure propagate unchanged.

        ``deadline`` bounds the retry loop to its remaining budget: an
        already-expired deadline suppresses further retries (the last
        error propagates), and every backoff sleep is clamped to
        ``deadline.remaining()`` so a retry never sleeps past the very
        deadline its caller is trying to honour.

        ``budget`` is an optional :class:`~repro.resilience.admission.RetryBudget`
        consulted (``allow_retry()``) before each retry; an exhausted
        budget propagates the last error immediately, which is what
        stops retry amplification when a downstream shard is struggling.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return thunk()
            except Exception as error:
                if not self.is_retryable(error) or attempt >= self.max_attempts:
                    raise
                if deadline is not None and deadline.expired():
                    raise
                if budget is not None and not budget.allow_retry():
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                delay = self.backoff_s(attempt)
                if deadline is not None:
                    delay = min(delay, deadline.remaining())
                if delay > 0:
                    time.sleep(delay)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay_s={self.base_delay_s}, seed={self.seed})"
        )
