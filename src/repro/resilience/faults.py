"""Deterministic fault injection: named sites, seeded schedules.

Production failure modes -- a worker dying mid-partition, a kernel
backend segfaulting, a slow query, a garbage request line -- are rare
and non-reproducible exactly when a test needs them.  This module makes
failure an *input*: instrumented code calls :func:`inject` at a named
**injection site**, and an ambient :class:`FaultPlan` (installed with
:func:`use_faults`, exactly like ``repro.obs.use_recorder``) decides,
deterministically, whether that call raises :class:`FaultInjected` or
sleeps for a configured delay.  With no plan installed the call is a
single ``ContextVar`` read -- cheap enough to leave in the hot paths.

Sites are hierarchical strings (``stage:graph:beta``,
``kernel:numpy``, ``serve:match``, ``io:read_requests``; the canonical
catalogue is :data:`SITES`) and plans address them with glob patterns,
so ``stage:*=error*2`` means "the first two stage-partition executions
anywhere fail".  Every fired fault is counted on the ambient
:func:`repro.obs.current_recorder` under ``faults.injected.<site>``,
so a ``--trace`` run shows exactly which faults fired where.

The ``--chaos SPEC`` CLI flag parses into a plan via
:func:`parse_chaos`::

    SPEC    := entry (',' entry)*
    entry   := SITE_GLOB '=' action
    action  := ('error' | 'delay' ':' SECONDS) ['*' TIMES] ['@' PROBABILITY]

Examples: ``stage:*=error*2`` (first two matching executions raise),
``serve:match=delay:0.05`` (every query sleeps 50 ms),
``kernel:numpy=error@0.5`` (each kernel dispatch fails with seeded
probability one half).  ``TIMES`` bounds the *spec*, not each site: a
glob spec firing twice is exhausted after two fires total.
"""

from __future__ import annotations

import fnmatch
import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Sequence


class FaultInjected(RuntimeError):
    """The error raised by an ``error``-kind injection.

    Deliberately a distinct type: retry policies treat it as transient
    by default, and tests can assert that a propagated failure really
    came from the chaos plan rather than a genuine bug.
    """


SITES: dict[str, str] = {
    "stage:statistics": "per-KB statistics phase (serial + parallel driver)",
    "stage:token_blocking": "token blocking + purging phase (serial + parallel driver)",
    "stage:graph": "serial graph-construction phase",
    "stage:matching": "serial matching phase",
    "stage:graph:beta": "one partition of the beta-accumulation stage",
    "stage:graph:gamma": "one partition of the gamma-propagation stage",
    "stage:graph:topk_value_1": "one partition of a top-K pruning stage (side 1 values)",
    "stage:graph:topk_value_2": "one partition of a top-K pruning stage (side 2 values)",
    "stage:graph:topk_neighbor_1": "one partition of a top-K pruning stage (side 1 neighbors)",
    "stage:graph:topk_neighbor_2": "one partition of a top-K pruning stage (side 2 neighbors)",
    "stage:match:R2": "one partition of the R2 rule stage",
    "stage:match:R3_side1": "one partition of the R3 rule stage (side 1)",
    "stage:match:R3_side2": "one partition of the R3 rule stage (side 2)",
    "kernel:dict": "kernel backend dispatch resolving to the dict reference",
    "kernel:python": "kernel backend dispatch resolving to the python kernels",
    "kernel:numpy": "kernel backend dispatch resolving to the numpy kernels",
    "serve:match": "one single-query lookup in MatchEngine.match",
    "serve:batch": "one batch lookup in MatchEngine.match_batch",
    "io:read_requests": "parsing one JSONL request line",
    "live:compact": "one live-index compaction (manual or scheduled)",
}
"""Catalogue of the registered injection sites (see docs/resilience.md).

Every ``ParallelContext`` stage additionally exposes a dynamic
``stage:<stage name>`` site, drawn once per partition *attempt*, so
plans can target stages this catalogue does not enumerate.
"""


@dataclass(frozen=True)
class FaultAction:
    """One drawn fault, ready to apply inside the faulted code path.

    Frozen and picklable: the parallel driver draws actions on the
    driver (where the ambient plan and its counters live) and ships
    them to worker processes, which only :meth:`apply` them -- shared
    schedule state never crosses the process boundary.
    """

    site: str
    kind: str  # "error" | "delay"
    delay_s: float = 0.0

    def apply(self) -> None:
        """Raise :class:`FaultInjected` or sleep, per ``kind``."""
        if self.kind == "delay":
            time.sleep(self.delay_s)
        else:
            raise FaultInjected(f"injected fault at {self.site}")


@dataclass(frozen=True)
class FaultSpec:
    """One schedule entry: which sites, what fault, how often.

    ``times`` bounds total fires of this spec (``None`` = unlimited);
    ``probability`` gates each otherwise-firing draw through the plan's
    seeded RNG.
    """

    site: str
    kind: str
    delay_s: float = 0.0
    times: int | None = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("error", "delay"):
            raise ValueError(f"fault kind must be 'error' or 'delay', got {self.kind!r}")
        if self.kind == "delay" and self.delay_s < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay_s}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {self.probability}")


class FaultPlan:
    """A seeded, thread-safe schedule of faults over injection sites.

    :meth:`draw` is the single decision point: given a site name it
    walks the specs in order, fires the first one that matches and
    still has budget, and returns the :class:`FaultAction` to apply
    (or ``None``).  All mutable state (per-spec fire counts, the RNG)
    lives behind one lock, so a plan shared by the driver thread and a
    thread-pool backend stays consistent; determinism holds whenever
    draws happen in a deterministic order (the parallel driver draws
    on the driver thread, in partition order, for exactly this reason).
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.specs = tuple(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._spec_fired = [0] * len(self.specs)
        self._site_fired: dict[str, int] = {}

    def draw(self, site: str) -> FaultAction | None:
        """The fault to apply at ``site`` for this execution, if any.

        Counts the fire per spec and per site, and increments
        ``faults.injected.<site>`` on the ambient recorder.
        """
        action: FaultAction | None = None
        with self._lock:
            for position, spec in enumerate(self.specs):
                if not fnmatch.fnmatchcase(site, spec.site):
                    continue
                if spec.times is not None and self._spec_fired[position] >= spec.times:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                self._spec_fired[position] += 1
                self._site_fired[site] = self._site_fired.get(site, 0) + 1
                action = FaultAction(site=site, kind=spec.kind, delay_s=spec.delay_s)
                break
        if action is not None:
            from repro.obs import current_recorder

            current_recorder().count(f"faults.injected.{site}")
        return action

    def fired(self) -> dict[str, int]:
        """Fires so far, by site name."""
        with self._lock:
            return dict(self._site_fired)

    def total_fired(self) -> int:
        with self._lock:
            return sum(self._site_fired.values())

    def exhausted(self) -> bool:
        """True iff every bounded spec has fired its full budget."""
        with self._lock:
            return all(
                spec.times is not None and fired >= spec.times
                for spec, fired in zip(self.specs, self._spec_fired)
            )

    def __repr__(self) -> str:
        return f"FaultPlan(specs={len(self.specs)}, seed={self.seed}, fired={self.total_fired()})"


def parse_chaos(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a ``--chaos`` specification string into a :class:`FaultPlan`.

    >>> plan = parse_chaos("stage:*=error*2,serve:match=delay:0.05")
    >>> [(s.site, s.kind, s.times) for s in plan.specs]
    [('stage:*', 'error', 2), ('serve:match', 'delay', None)]
    >>> parse_chaos("kernel:numpy=error@0.5", seed=7).specs[0].probability
    0.5
    """
    specs: list[FaultSpec] = []
    for raw_entry in spec.split(","):
        entry = raw_entry.strip()
        if not entry:
            continue
        site, separator, action = entry.partition("=")
        site = site.strip()
        action = action.strip()
        if not separator or not site or not action:
            raise ValueError(
                f"bad chaos entry {entry!r}: expected SITE=ACTION "
                f"(e.g. 'stage:*=error*2', 'serve:match=delay:0.05')"
            )
        probability = 1.0
        if "@" in action:
            action, _, raw_probability = action.rpartition("@")
            try:
                probability = float(raw_probability)
            except ValueError:
                raise ValueError(
                    f"bad probability {raw_probability!r} in chaos entry {entry!r}"
                ) from None
        times: int | None = None
        if "*" in action:
            action, _, raw_times = action.rpartition("*")
            try:
                times = int(raw_times)
            except ValueError:
                raise ValueError(
                    f"bad repeat count {raw_times!r} in chaos entry {entry!r}"
                ) from None
        kind, _, raw_delay = action.partition(":")
        delay_s = 0.0
        if kind == "delay":
            try:
                delay_s = float(raw_delay)
            except ValueError:
                raise ValueError(
                    f"bad delay {raw_delay!r} in chaos entry {entry!r}"
                ) from None
        elif kind != "error" or raw_delay:
            raise ValueError(
                f"bad action {action!r} in chaos entry {entry!r}: "
                f"expected 'error' or 'delay:SECONDS'"
            )
        try:
            specs.append(
                FaultSpec(
                    site=site, kind=kind, delay_s=delay_s,
                    times=times, probability=probability,
                )
            )
        except ValueError as error:
            raise ValueError(f"bad chaos entry {entry!r}: {error}") from None
    if not specs:
        raise ValueError(f"chaos spec {spec!r} contains no entries")
    return FaultPlan(specs, seed=seed)


_CURRENT: ContextVar[FaultPlan | None] = ContextVar("repro_fault_plan", default=None)


def current_faults() -> FaultPlan | None:
    """The ambient fault plan installed by :func:`use_faults`, if any."""
    return _CURRENT.get()


@contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` as the ambient fault plan for the block.

    Instrumented components (pipelines, parallel stages, kernel
    dispatch, the serving engine and JSONL reader) consult
    :func:`current_faults` at their injection sites.  Nesting restores
    the previous plan on exit.
    """
    token = _CURRENT.set(plan)
    try:
        yield plan
    finally:
        _CURRENT.reset(token)


def inject(site: str) -> None:
    """Fire the ambient plan's fault at ``site``, if one is scheduled.

    The no-plan path is a single ``ContextVar`` read, so instrumented
    hot paths stay effectively free when chaos is off.
    """
    plan = _CURRENT.get()
    if plan is None:
        return
    action = plan.draw(site)
    if action is not None:
        action.apply()
