"""Circuit breaker: stop hammering a backend that keeps failing.

The serving engine uses one to guard the numpy kernel backend: after
``failure_threshold`` consecutive kernel failures the breaker *opens*
and queries are answered by the pure-python kernels (bit-identical
results, just slower) instead of paying a doomed numpy attempt per
query.  After ``reset_after_s`` the breaker goes *half-open* and lets
attempts through again; one success closes it, one failure re-opens it.

State transitions are counted and gauged on an optional recorder
(``breaker.trips`` counter, ``breaker.state`` gauge with the numeric
encoding of :data:`STATE_VALUES`), so ``--trace`` output shows every
trip and recovery.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}
"""Numeric encoding of states for the ``breaker.state`` gauge."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open probes.

    Parameters
    ----------
    failure_threshold:
        Consecutive :meth:`record_failure` calls (while closed) that
        trip the breaker open.
    reset_after_s:
        Seconds the breaker stays open before allowing a half-open
        probe.
    clock:
        Monotonic clock; tests substitute a fake for deterministic
        timing.
    recorder:
        Optional :class:`repro.obs.Recorder` receiving the
        ``breaker.trips`` counter and ``breaker.state`` gauge (the
        gauge is also written once at construction so a trace always
        carries the breaker's latest state).

    Thread-safe: the serving engine is documented as safe to share
    across threads, so the breaker it embeds must be too.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        recorder=None,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_after_s < 0:
            raise ValueError(f"reset_after_s must be >= 0, got {reset_after_s}")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._recorder = recorder
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trips = 0
        self._gauge()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half_open`` (reading may promote
        an expired ``open`` to ``half_open``)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def allow(self) -> bool:
        """True iff the guarded backend may be attempted right now."""
        with self._lock:
            self._maybe_half_open()
            return self._state != OPEN

    def record_success(self) -> None:
        """A guarded attempt succeeded: close and reset the failure count."""
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._set_state(CLOSED)

    def record_failure(self) -> None:
        """A guarded attempt failed: trip when the threshold is reached
        (a half-open probe failure re-opens immediately)."""
        with self._lock:
            self._maybe_half_open()
            self._failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED and self._failures >= self.failure_threshold
            ):
                self._trips += 1
                self._opened_at = self._clock()
                self._set_state(OPEN)
                if self._recorder is not None:
                    self._recorder.count("breaker.trips")

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() >= self._opened_at + self.reset_after_s
        ):
            self._set_state(HALF_OPEN)

    def _set_state(self, state: str) -> None:
        self._state = state
        self._gauge()

    def _gauge(self) -> None:
        if self._recorder is not None:
            self._recorder.gauge("breaker.state", STATE_VALUES[self._state])

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, trips={self.trips}, "
            f"threshold={self.failure_threshold})"
        )
