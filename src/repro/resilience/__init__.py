"""Resilience: fault injection, retry/timeout policies, circuit breaking.

Failure is a first-class, observable, testable input (see
``docs/resilience.md``):

* :mod:`repro.resilience.faults` -- named injection sites raise or
  delay on a seeded schedule, activated ambiently with
  :func:`use_faults` (or the ``--chaos SPEC`` CLI flag) so chaos wires
  through any run without touching call sites;
* :mod:`repro.resilience.policy` -- :class:`RetryPolicy` (bounded
  attempts, exponential backoff, seeded jitter, retryable filter) and
  :class:`Deadline` (monotonic budgets passed down call chains), plus
  the :data:`FAILURE_MODES` of ``ParallelContext``;
* :mod:`repro.resilience.breaker` -- :class:`CircuitBreaker`, used by
  the serving engine to trip the numpy kernel backend down to the
  pure-python backend after repeated backend faults.

Every retry, trip, expiry, skipped partition, and fired fault is
counted through the ambient :func:`repro.obs.current_recorder`
(``retry.attempts``, ``breaker.trips``/``breaker.state``,
``deadline.expired``, ``stage.skipped``, ``faults.injected.<site>``),
so ``--trace`` output shows resilience behaviour alongside spans.
"""

from repro.resilience.admission import (
    AdmissionController,
    LoadShedError,
    RetryBudget,
    TokenBucket,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, STATE_VALUES, CircuitBreaker
from repro.resilience.faults import (
    SITES,
    FaultAction,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    current_faults,
    inject,
    parse_chaos,
    use_faults,
)
from repro.resilience.policy import (
    DEFAULT_RETRYABLE,
    FAILURE_MODES,
    Deadline,
    DeadlineExpired,
    RetryPolicy,
)
from repro.resilience.supervisor import ReplicaSupervisor

__all__ = [
    "CLOSED",
    "DEFAULT_RETRYABLE",
    "FAILURE_MODES",
    "HALF_OPEN",
    "OPEN",
    "SITES",
    "STATE_VALUES",
    "AdmissionController",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExpired",
    "FaultAction",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "LoadShedError",
    "ReplicaSupervisor",
    "RetryBudget",
    "RetryPolicy",
    "TokenBucket",
    "current_faults",
    "inject",
    "parse_chaos",
    "use_faults",
]
