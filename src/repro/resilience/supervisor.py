"""Replica supervision: health-check, backoff, resurrect, readmit.

PR 7 gave the sharded serving tier replicas, hedging and circuit
breakers -- enough to *survive* a dead worker, but a replica that
crashed (or failed a live-index ``reload``) stayed dead until the
operator restarted the server.  :class:`ReplicaSupervisor` closes the
loop: a background thread sweeps the router's replica groups, and for
every dead slot it

1. waits out a **seeded exponential backoff** (per slot, so one
   crash-looping shard cannot starve the others),
2. charges a **restart-storm budget** -- at most ``max_restarts``
   restarts per ``window_s`` rolling window per slot; an exhausted
   budget parks the slot (``supervisor.storm_suppressed``) instead of
   hot-looping a worker that dies on arrival,
3. asks the router to :meth:`resurrect` the slot: spawn a fresh worker
   from the shard file on disk, handshake it *outside* the drain gate,
   then swap it into the round-robin under the gate only if no index
   swap happened meanwhile (the generation check -- a worker that
   loaded a pre-compaction file must not serve a post-compaction
   router).

Resurrection is decision-identical to a never-crashed run because shard
workers are pure functions of the frozen shard container plus the
per-request wire payload: the delta overlay (excludes, weights, delta
evidence) always rides on the wire, so a worker readmitted at the
current generation answers byte-identically to one that never died.
The supervisor never touches index state -- it only replaces transport
endpoints -- which is what keeps it safe to run concurrently with
upserts, compaction, and hedged queries.

Counters (ambient or router recorder): ``supervisor.ticks``,
``supervisor.restarts`` (the Prometheus ``supervisor_restarts_total``),
``supervisor.restart_failures``, ``supervisor.storm_suppressed``,
``supervisor.probe_failures``; gauge ``supervisor.dead_replicas``.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Any, Callable

DEFAULT_INTERVAL_S = 0.2
DEFAULT_MAX_RESTARTS = 5
DEFAULT_WINDOW_S = 30.0
DEFAULT_BASE_BACKOFF_S = 0.05
DEFAULT_MAX_BACKOFF_S = 2.0
HEALTHY_RESET_S = 5.0
"""A replica that stays alive this long after a restart resets its
exponential-backoff attempt counter."""


class _Slot:
    """Supervision state for one (shard, position) replica slot."""

    __slots__ = ("attempt", "last_restart", "next_due", "restarts", "suppressed")

    def __init__(self) -> None:
        self.attempt = 0
        self.next_due = 0.0
        self.last_restart: float | None = None
        self.restarts: deque[float] = deque()
        self.suppressed = False


class ReplicaSupervisor:
    """Self-healing loop over a :class:`~repro.sharding.router.ShardRouter`.

    Parameters
    ----------
    router:
        Anything exposing ``_replicas`` (list of replica groups, each
        replica with an ``alive`` attribute), ``resurrect(shard, pos)``
        and ``recorder``.  :meth:`ShardRouter.resurrect` is the real
        implementation; unit tests drive a stub.
    interval_s:
        Sweep period of the health-check thread.
    max_restarts / window_s:
        The restart-storm budget: per slot, at most ``max_restarts``
        restart *attempts* per rolling ``window_s`` seconds.
    base_backoff_s / max_backoff_s / jitter_ratio / seed:
        Exponential backoff between successive restarts of the same
        slot: ``min(max, base * 2**(n-1)) * (1 + jitter * rng())`` with
        a seeded RNG, mirroring :class:`repro.resilience.policy.RetryPolicy`.
    probe_every:
        If > 0, every Nth sweep also sends a ``hello`` probe to live
        replicas; one that fails or times out is killed (it is hung,
        not just slow) and picked up by the normal restart path.
    clock:
        Injected monotonic clock for deterministic tests; the
        background thread still sleeps on real time.
    """

    def __init__(
        self,
        router: Any,
        interval_s: float = DEFAULT_INTERVAL_S,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        window_s: float = DEFAULT_WINDOW_S,
        base_backoff_s: float = DEFAULT_BASE_BACKOFF_S,
        max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
        jitter_ratio: float = 0.1,
        seed: int = 0,
        probe_every: int = 0,
        probe_timeout_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        recorder=None,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if max_restarts < 1:
            raise ValueError(f"max_restarts must be >= 1, got {max_restarts}")
        self.router = router
        self.interval_s = interval_s
        self.max_restarts = max_restarts
        self.window_s = window_s
        self.base_backoff_s = base_backoff_s
        self.max_backoff_s = max_backoff_s
        self.jitter_ratio = jitter_ratio
        self.seed = seed
        self.probe_every = probe_every
        self.probe_timeout_s = probe_timeout_s
        self._clock = clock
        self._recorder = recorder
        self._rng = random.Random(seed)
        self._slots: dict[tuple[int, int], _Slot] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._ticks = 0
        self.restarts = 0
        self.restart_failures = 0
        self.storm_suppressed = 0
        self.probe_failures = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def recorder(self):
        if self._recorder is not None:
            return self._recorder
        return getattr(self.router, "recorder", None)

    def start(self) -> "ReplicaSupervisor":
        """Start the background sweep thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="replica-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop sweeping.  Must be called before the router kills its
        workers, or the supervisor would resurrect them mid-shutdown."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ReplicaSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # pragma: no cover - belt and braces
                recorder = self.recorder
                if recorder is not None:
                    recorder.count("supervisor.errors")

    # -- the sweep -----------------------------------------------------

    def backoff_s(self, attempt: int) -> float:
        """Backoff before restart attempt ``attempt`` (1-based) of a slot."""
        delay = min(self.max_backoff_s, self.base_backoff_s * (2.0 ** (attempt - 1)))
        if self.jitter_ratio:
            with self._lock:
                delay *= 1.0 + self.jitter_ratio * self._rng.random()
        return delay

    def _slot(self, shard: int, position: int) -> _Slot:
        key = (shard, position)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slots[key] = _Slot()
        return slot

    def tick(self) -> int:
        """One synchronous sweep; returns the number of restarts made.

        Public so tests (and diagnostics) can drive supervision
        deterministically without the background thread.
        """
        self._ticks += 1
        recorder = self.recorder
        if recorder is not None:
            recorder.count("supervisor.ticks")
        probe = self.probe_every > 0 and self._ticks % self.probe_every == 0
        restarted = 0
        dead = 0
        for shard, group in enumerate(list(self.router._replicas)):
            for position, replica in enumerate(list(group)):
                if getattr(replica, "alive", True):
                    if probe and not self._probe(replica):
                        dead += 1
                        restarted += self._heal(shard, position)
                    else:
                        self._note_healthy(shard, position)
                    continue
                dead += 1
                restarted += self._heal(shard, position)
        if recorder is not None:
            recorder.gauge("supervisor.dead_replicas", float(dead - restarted))
        return restarted

    def _probe(self, replica: Any) -> bool:
        """Active liveness check; kills a hung replica and reports False."""
        request = getattr(replica, "request", None)
        if request is None:
            return True
        try:
            request("hello", timeout=self.probe_timeout_s)
            return True
        except Exception:
            self.probe_failures += 1
            recorder = self.recorder
            if recorder is not None:
                recorder.count("supervisor.probe_failures")
            kill = getattr(replica, "kill", None)
            if kill is not None:
                kill()
            return False

    def _note_healthy(self, shard: int, position: int) -> None:
        slot = self._slots.get((shard, position))
        if slot is None or slot.last_restart is None:
            return
        if self._clock() - slot.last_restart >= HEALTHY_RESET_S:
            slot.attempt = 0
            slot.suppressed = False

    def _heal(self, shard: int, position: int) -> int:
        slot = self._slot(shard, position)
        now = self._clock()
        if now < slot.next_due:
            return 0
        # Restart-storm budget over a rolling window of attempts.
        while slot.restarts and now - slot.restarts[0] > self.window_s:
            slot.restarts.popleft()
        if len(slot.restarts) >= self.max_restarts:
            if not slot.suppressed:
                slot.suppressed = True
                self.storm_suppressed += 1
                recorder = self.recorder
                if recorder is not None:
                    recorder.count("supervisor.storm_suppressed")
            slot.next_due = slot.restarts[0] + self.window_s
            return 0
        slot.suppressed = False
        slot.restarts.append(now)
        slot.attempt += 1
        slot.last_restart = now
        recorder = self.recorder
        try:
            ok = bool(self.router.resurrect(shard, position))
        except Exception:
            ok = False
        if ok:
            self.restarts += 1
            if recorder is not None:
                recorder.count("supervisor.restarts")
            # A crash-looping slot backs off even when each restart
            # "succeeds": next_due only binds while the slot is dead,
            # and a sustained healthy period resets the attempt count
            # (see _note_healthy).
            slot.next_due = now + self.backoff_s(slot.attempt)
            return 1
        self.restart_failures += 1
        if recorder is not None:
            recorder.count("supervisor.restart_failures")
        slot.next_due = now + self.backoff_s(slot.attempt)
        return 0

    # -- introspection -------------------------------------------------

    def stats(self) -> dict[str, object]:
        slots = {}
        for (shard, position), slot in sorted(self._slots.items()):
            slots[f"{shard}/{position}"] = {
                "attempt": slot.attempt,
                "recent_restarts": len(slot.restarts),
                "suppressed": slot.suppressed,
            }
        return {
            "ticks": self._ticks,
            "restarts": self.restarts,
            "restart_failures": self.restart_failures,
            "storm_suppressed": self.storm_suppressed,
            "probe_failures": self.probe_failures,
            "max_restarts": self.max_restarts,
            "window_s": self.window_s,
            "slots": slots,
        }

    def __repr__(self) -> str:
        return (
            f"ReplicaSupervisor(interval_s={self.interval_s}, "
            f"restarts={self.restarts}, failures={self.restart_failures})"
        )
