"""The frozen query structure over a target KB: build once, serve many.

Batch MinoanER re-derives everything about KB2 on every run.  For online
serving, :class:`ResolutionIndex` freezes the KB2-side inputs of
Algorithm 1 exactly once:

* the **name-block map** (normalised name -> KB2 entity ids, in the
  order :func:`repro.blocking.name_blocking.name_blocks` would emit
  them) backing ``alpha = 1`` edges and rule R1,
* the **token postings** (token -> ascending KB2 entity ids -- the KB2
  half of every token block) with the per-token Entity Frequency and
  the singleton-query ``1 / log2`` block weight hoisted,
* the **top in-neighbor CSR** that drives ``gamma`` propagation
  (:meth:`repro.kb.statistics.KBStatistics.in_neighbor_csr`),
* the discovered **name attributes** and the pipeline
  :class:`~repro.core.config.MinoanERConfig` (including the tokenizer),
* the id -> URI table for emitting decisions.

Nothing else about KB2 is retained: raw literal values, token sets and
relation pairs are all folded into the structures above, so the index
is the complete and minimal input of query-time resolution.  It
persists via :meth:`save`/:meth:`load` so a serving process can restart
without the source KB.
"""

from __future__ import annotations

import pickle
from array import array
from pathlib import Path

from repro.blocking.name_blocking import normalize_name
from repro.core.config import MinoanERConfig
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.kb.tokenizer import Tokenizer
from repro.kernels import CSRAdjacency, block_weight
from repro.obs import current_recorder

MAGIC = b"MINOANER-INDEX\x00"
FORMAT_VERSION = 1

_PERSISTED_FIELDS = (
    "kb_name",
    "n2",
    "uris2",
    "config",
    "tokenizer",
    "name_attributes",
    "names",
    "postings",
    "singleton_weights",
    "in_neighbors",
)


class ResolutionIndex:
    """Everything Algorithm 1 needs about the target KB, precomputed.

    Instances are produced by :meth:`build` (from a
    :class:`~repro.kb.knowledge_base.KnowledgeBase`) or :meth:`load`
    (from a file written by :meth:`save`); the constructor wires
    already-frozen fields and is not meant to be called directly.

    Attributes
    ----------
    kb_name / n2 / uris2:
        Label, entity count and id -> URI table of the indexed KB.
    config / tokenizer:
        The pipeline configuration baked into the index.  Queries must
        be tokenised with this tokenizer for the postings to apply.
    name_attributes:
        The KB's global top-k name attributes (for reporting).
    names:
        Normalised name -> tuple of KB2 entity ids using it.
    postings:
        Token -> ``array('i')`` of ascending KB2 entity ids (the KB2
        side of the token block keyed by that token).
    singleton_weights:
        Token -> ``1 / log2(EF2(t) + 1)``: the block weight of the
        token's query-time block when the query side holds one entity
        (``|b1| = 1``), hoisted so the single-query hot path performs
        no logarithms.
    in_neighbors:
        :class:`~repro.kernels.interning.CSRAdjacency` of the KB's top
        in-neighbors (``gamma`` propagation input).
    """

    def __init__(
        self,
        kb_name: str,
        n2: int,
        uris2: list[str],
        config: MinoanERConfig,
        tokenizer: Tokenizer,
        name_attributes: tuple[str, ...],
        names: dict[str, tuple[int, ...]],
        postings: dict[str, array],
        singleton_weights: dict[str, float],
        in_neighbors: CSRAdjacency,
    ):
        self.kb_name = kb_name
        self.n2 = n2
        self.uris2 = uris2
        self.config = config
        self.tokenizer = tokenizer
        self.name_attributes = name_attributes
        self.names = names
        self.postings = postings
        self.singleton_weights = singleton_weights
        self.in_neighbors = in_neighbors

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, kb2: KnowledgeBase, config: MinoanERConfig | None = None
    ) -> "ResolutionIndex":
        """Profile ``kb2`` once and freeze every query-time structure.

        Runs the same statistics pass as the batch pipeline
        (:meth:`repro.core.pipeline.MinoanER.build_statistics`), so an
        engine over the index reproduces the batch pipeline's view of
        the KB exactly.  The build is traced as an ``index.build`` span
        with ``statistics``/``names``/``postings`` children on the
        ambient :func:`repro.obs.current_recorder`.
        """
        config = config or MinoanERConfig()
        recorder = current_recorder()
        with recorder.span("index.build", n2=len(kb2)):
            with recorder.span("index.statistics"):
                stats2 = KBStatistics(
                    kb2,
                    top_k_name_attributes=config.name_attributes_k,
                    top_n_relations=config.relations_n,
                )

            # Name map, in the exact emit order of name_blocks: ids
            # appended ascending, per-entity duplicates collapsed.
            with recorder.span("index.names"):
                names: dict[str, list[int]] = {}
                for eid in range(len(kb2)):
                    seen: set[str] = set()
                    for raw in stats2.names(eid):
                        name = normalize_name(raw)
                        if name and name not in seen:
                            seen.add(name)
                            names.setdefault(name, []).append(eid)

            with recorder.span("index.postings"):
                postings = {
                    token: array("i", ids) for token, ids in kb2.token_index.items()
                }
                singleton_weights = {
                    token: block_weight(len(ids)) for token, ids in postings.items()
                }

        return cls(
            kb_name=kb2.name,
            n2=len(kb2),
            uris2=[kb2.uri_of(eid) for eid in range(len(kb2))],
            config=config,
            tokenizer=kb2.tokenizer,
            name_attributes=stats2.name_attributes,
            names={name: tuple(ids) for name, ids in names.items()},
            postings=postings,
            singleton_weights=singleton_weights,
            in_neighbors=stats2.in_neighbor_csr(),
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def entity_frequency(self, token: str) -> int:
        """``EF2(t)``: entities of the indexed KB containing ``token``."""
        return len(self.postings.get(token, ()))

    def uri_of(self, eid: int) -> str:
        """URI of the indexed entity with dense id ``eid``."""
        return self.uris2[eid]

    def describe(self) -> dict[str, object]:
        """Summary of the frozen structures (for logs and ``stats()``)."""
        return {
            "kb": self.kb_name,
            "entities": self.n2,
            "tokens": len(self.postings),
            "posting_entries": sum(len(ids) for ids in self.postings.values()),
            "names": len(self.names),
            "name_attributes": list(self.name_attributes),
            "in_neighbor_edges": len(self.in_neighbors.ids),
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the index to ``path`` (magic header + pickle payload).

        The payload is a pickle of the frozen fields; like any pickle it
        must only be loaded from trusted sources.
        """
        payload = {field: getattr(self, field) for field in _PERSISTED_FIELDS}
        with current_recorder().span("index.save"):
            with open(path, "wb") as handle:
                handle.write(MAGIC)
                handle.write(bytes([FORMAT_VERSION]))
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: str | Path) -> "ResolutionIndex":
        """Read an index written by :meth:`save`.

        Raises ``ValueError`` on a foreign or future-versioned file
        rather than unpickling it.
        """
        with current_recorder().span("index.load"):
            with open(path, "rb") as handle:
                magic = handle.read(len(MAGIC))
                if magic != MAGIC:
                    raise ValueError(f"{path} is not a MinoanER resolution index")
                version = handle.read(1)
                if not version or version[0] != FORMAT_VERSION:
                    found = version[0] if version else None
                    raise ValueError(
                        f"unsupported index format version {found!r} in {path} "
                        f"(this build reads version {FORMAT_VERSION})"
                    )
                payload = pickle.load(handle)
        return cls(**payload)

    def __repr__(self) -> str:
        return (
            f"ResolutionIndex({self.kb_name!r}, {self.n2} entities, "
            f"{len(self.postings)} tokens, {len(self.names)} names)"
        )
