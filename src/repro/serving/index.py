"""The frozen query structure over a target KB: build once, serve many.

Batch MinoanER re-derives everything about KB2 on every run.  For online
serving, :class:`ResolutionIndex` freezes the KB2-side inputs of
Algorithm 1 exactly once:

* the **name-block map** (normalised name -> KB2 entity ids, in the
  order :func:`repro.blocking.name_blocking.name_blocks` would emit
  them) backing ``alpha = 1`` edges and rule R1,
* the **token postings** (token -> ascending KB2 entity ids -- the KB2
  half of every token block) with the per-token Entity Frequency and
  the singleton-query ``1 / log2`` block weight hoisted,
* the **top in-neighbor CSR** that drives ``gamma`` propagation
  (:meth:`repro.kb.statistics.KBStatistics.in_neighbor_csr`),
* the discovered **name attributes** and the pipeline
  :class:`~repro.core.config.MinoanERConfig` (including the tokenizer),
* the id -> URI table for emitting decisions.

Nothing else about KB2 is retained: raw literal values, token sets and
relation pairs are all folded into the structures above, so the index
is the complete and minimal input of query-time resolution.  It
persists via :meth:`save`/:meth:`load` so a serving process can restart
without the source KB.
"""

from __future__ import annotations

import os
import pickle
import warnings
from array import array
from pathlib import Path

from repro.blocking.name_blocking import normalize_name
from repro.core.config import MinoanERConfig
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.kb.tokenizer import Tokenizer
from repro.kernels import CSRAdjacency, block_weight
from repro.obs import current_recorder
from repro.serving import format as index_format
from repro.serving.format import FORMAT_VERSION, LEGACY_FORMAT_VERSION, MAGIC

__all__ = ["FORMAT_VERSION", "LEGACY_FORMAT_VERSION", "MAGIC", "ResolutionIndex"]

_PERSISTED_FIELDS = (
    "kb_name",
    "n2",
    "uris2",
    "config",
    "tokenizer",
    "name_attributes",
    "names",
    "postings",
    "singleton_weights",
    "in_neighbors",
)


class ResolutionIndex:
    """Everything Algorithm 1 needs about the target KB, precomputed.

    Instances are produced by :meth:`build` (from a
    :class:`~repro.kb.knowledge_base.KnowledgeBase`) or :meth:`load`
    (from a file written by :meth:`save`); the constructor wires
    already-frozen fields and is not meant to be called directly.

    Attributes
    ----------
    kb_name / n2 / uris2:
        Label, entity count and id -> URI table of the indexed KB.
    config / tokenizer:
        The pipeline configuration baked into the index.  Queries must
        be tokenised with this tokenizer for the postings to apply.
    name_attributes:
        The KB's global top-k name attributes (for reporting).
    names:
        Normalised name -> tuple of KB2 entity ids using it.
    postings:
        Token -> ascending KB2 entity ids (the KB2 side of the token
        block keyed by that token): ``array('i')`` when built or loaded
        eagerly, a zero-copy ``repro.serving.format.MappedPostings``
        view over int32 file pages when loaded with ``mmap=True``.
    singleton_weights:
        Token -> ``1 / log2(EF2(t) + 1)``: the block weight of the
        token's query-time block when the query side holds one entity
        (``|b1| = 1``), hoisted so the single-query hot path performs
        no logarithms.
    in_neighbors:
        :class:`~repro.kernels.interning.CSRAdjacency` of the KB's top
        in-neighbors (``gamma`` propagation input).
    token_global_ef / shard_info:
        Present only on per-shard indexes cut by
        :class:`repro.sharding.ShardPlanner`: the *global* Entity
        Frequency per token (postings hold only local entities, but
        weights and purging must see the whole KB) and the
        ``{"count", "index", "partition"}`` shard descriptor.  ``None``
        on ordinary indexes.
    """

    def __init__(
        self,
        kb_name: str,
        n2: int,
        uris2: list[str],
        config: MinoanERConfig,
        tokenizer: Tokenizer,
        name_attributes: tuple[str, ...],
        names: dict[str, tuple[int, ...]],
        postings: dict[str, array],
        singleton_weights: dict[str, float],
        in_neighbors: CSRAdjacency,
        *,
        token_global_ef: dict[str, int] | None = None,
        shard_info: dict[str, object] | None = None,
    ):
        self.kb_name = kb_name
        self.n2 = n2
        self.uris2 = uris2
        self.config = config
        self.tokenizer = tokenizer
        self.name_attributes = name_attributes
        self.names = names
        self.postings = postings
        self.singleton_weights = singleton_weights
        self.in_neighbors = in_neighbors
        self.token_global_ef = token_global_ef
        self.shard_info = shard_info
        #: How the index entered memory: ``{"mmap", "format_version",
        #: "file_bytes"}`` after :meth:`load`, None for built indexes.
        self.load_info: dict[str, int | bool] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, kb2: KnowledgeBase, config: MinoanERConfig | None = None
    ) -> "ResolutionIndex":
        """Profile ``kb2`` once and freeze every query-time structure.

        Runs the same statistics pass as the batch pipeline
        (:meth:`repro.core.pipeline.MinoanER.build_statistics`), so an
        engine over the index reproduces the batch pipeline's view of
        the KB exactly.  The build is traced as an ``index.build`` span
        with ``statistics``/``names``/``postings`` children on the
        ambient :func:`repro.obs.current_recorder`.
        """
        config = config or MinoanERConfig()
        recorder = current_recorder()
        with recorder.span("index.build", n2=len(kb2)):
            with recorder.span("index.statistics"):
                stats2 = KBStatistics(
                    kb2,
                    top_k_name_attributes=config.name_attributes_k,
                    top_n_relations=config.relations_n,
                )

            # Name map, in the exact emit order of name_blocks: ids
            # appended ascending, per-entity duplicates collapsed.
            with recorder.span("index.names"):
                names: dict[str, list[int]] = {}
                for eid in range(len(kb2)):
                    seen: set[str] = set()
                    for raw in stats2.names(eid):
                        name = normalize_name(raw)
                        if name and name not in seen:
                            seen.add(name)
                            names.setdefault(name, []).append(eid)

            with recorder.span("index.postings"):
                postings = {
                    token: array("i", ids) for token, ids in kb2.token_index.items()
                }
                singleton_weights = {
                    token: block_weight(len(ids)) for token, ids in postings.items()
                }

        return cls(
            kb_name=kb2.name,
            n2=len(kb2),
            uris2=[kb2.uri_of(eid) for eid in range(len(kb2))],
            config=config,
            tokenizer=kb2.tokenizer,
            name_attributes=stats2.name_attributes,
            names={name: tuple(ids) for name, ids in names.items()},
            postings=postings,
            singleton_weights=singleton_weights,
            in_neighbors=stats2.in_neighbor_csr(),
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def id_space(self) -> int:
        """Size of the dense-id range structures must be dimensioned for.

        On a frozen index this is simply ``n2``.  A live overlay
        (:class:`repro.serving.live.LiveIndex`) reports a larger value:
        base ids plus every delta slot ever allocated, including
        tombstoned ones -- ``n2`` stays the *live* entity count (which
        drives weights and purging) while ``id_space`` drives array and
        graph extents.
        """
        return self.n2

    def entity_frequency(self, token: str) -> int:
        """``EF2(t)``: entities of the indexed KB containing ``token``."""
        return len(self.postings.get(token, ()))

    def global_entity_frequency(self, token: str) -> int:
        """``EF2(t)`` over the *whole* KB, even on a shard.

        On an ordinary index this equals :meth:`entity_frequency`; on a
        per-shard index the local posting holds only the shard's
        entities, so the frozen global count is consulted instead.
        Block weights and purging thresholds derived from this value are
        therefore identical on every shard and on the unsharded index.
        """
        if self.token_global_ef is not None:
            return int(self.token_global_ef.get(token, 0))
        return len(self.postings.get(token, ()))

    def uri_of(self, eid: int) -> str:
        """URI of the indexed entity with dense id ``eid``."""
        return self.uris2[eid]

    def describe(self) -> dict[str, object]:
        """Summary of the frozen structures (for logs and ``stats()``)."""
        postings = self.postings
        if hasattr(postings, "total_entries"):
            # Memmapped postings know their CSR length in O(1); iterating
            # every token would decode the whole table.
            entries = postings.total_entries()
        else:
            entries = sum(len(ids) for ids in postings.values())
        summary: dict[str, object] = {
            "kb": self.kb_name,
            "entities": self.n2,
            "tokens": len(self.postings),
            "posting_entries": entries,
            "names": len(self.names),
            "name_attributes": list(self.name_attributes),
            "in_neighbor_edges": len(self.in_neighbors.ids),
        }
        if self.shard_info is not None:
            info = self.shard_info
            summary["shard"] = f"{info.get('index')}/{info.get('count')}"
        return summary

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the index to ``path`` in the columnar format (version 2).

        The encoding is deterministic (sorted tables, canonical JSON
        header, zero padding), so saving the same logical index -- built,
        eager-loaded or memmapped -- produces identical bytes.  Unlike
        the retired pickle payload, the file carries no executable
        content; see ``docs/serving.md`` for the format and threat model.
        """
        fields = {field: getattr(self, field) for field in _PERSISTED_FIELDS}
        if self.token_global_ef is not None:
            fields["token_global_ef"] = self.token_global_ef
        if self.shard_info is not None:
            fields["shard_info"] = self.shard_info
        data = index_format.encode_index(fields)
        with current_recorder().span("index.save", file_bytes=len(data)):
            Path(path).write_bytes(data)

    @classmethod
    def load(cls, path: str | Path, mmap: bool = False) -> "ResolutionIndex":
        """Read an index written by :meth:`save`.

        With ``mmap=False`` (the default) the columnar sections are
        materialised into the same dict/array structures :meth:`build`
        produces.  With ``mmap=True`` the file is ``numpy.memmap``-ed and
        the index serves straight off zero-copy views: load time is O(1)
        in index size and concurrent processes mapping the same file
        share its read-only pages.  Decisions are bit-identical either
        way.

        Version-1 (pickle) files still load -- eagerly, with a
        ``DeprecationWarning``; rewrite them once with
        ``python -m repro index --migrate``.  Foreign or future-versioned
        files raise ``ValueError`` without touching their payload.
        """
        recorder = current_recorder()
        with recorder.span("index.load", path=str(path)) as span:
            with open(path, "rb") as handle:
                prefix = handle.read(len(MAGIC) + 1)
            if prefix[: len(MAGIC)] != MAGIC:
                raise ValueError(f"{path} is not a MinoanER resolution index")
            version = prefix[len(MAGIC)] if len(prefix) > len(MAGIC) else None
            if version == FORMAT_VERSION:
                if mmap:
                    fields, file_bytes = index_format.open_mmap(path)
                else:
                    data = Path(path).read_bytes()
                    fields = index_format.decode_eager(data)
                    file_bytes = len(data)
            elif version == LEGACY_FORMAT_VERSION:
                warnings.warn(
                    f"{path} uses the legacy pickle index format (version 1); "
                    "loading executes pickle and will be removed -- rewrite it "
                    "with 'python -m repro index --migrate'",
                    DeprecationWarning,
                    stacklevel=2,
                )
                with open(path, "rb") as handle:
                    handle.seek(len(MAGIC) + 1)
                    fields = pickle.load(handle)
                file_bytes = os.path.getsize(path)
                mmap = False  # pickle payloads cannot be mapped
            else:
                raise ValueError(
                    f"unsupported index format version {version!r} in {path} "
                    f"(this build reads versions "
                    f"{LEGACY_FORMAT_VERSION} and {FORMAT_VERSION})"
                )
            load_info = {
                "mmap": bool(mmap),
                "format_version": int(version),
                "file_bytes": int(file_bytes),
            }
            span.attributes.update(load_info)
            recorder.gauge("index.mmap", int(load_info["mmap"]))
            recorder.gauge("index.format_version", load_info["format_version"])
            recorder.gauge("index.file_bytes", load_info["file_bytes"])
        index = cls(**fields)
        index.load_info = load_info
        return index

    def __repr__(self) -> str:
        return (
            f"ResolutionIndex({self.kb_name!r}, {self.n2} entities, "
            f"{len(self.postings)} tokens, {len(self.names)} names)"
        )
