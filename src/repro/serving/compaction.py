"""Background compaction: size- and tombstone-ratio-triggered folds.

PR 8 made compaction correct (byte-identical to a cold rebuild, served
through a zero-drop swap); it stayed *manual* -- an in-band control
record or ``repro index --compact``.  :class:`CompactionScheduler`
closes the ROADMAP's "background/scheduled compaction" rung: a daemon
thread that watches a live engine's delta overlay and folds it into a
fresh base when either trigger fires:

* **size** -- the overlay holds at least ``max_delta`` edits
  (allocated delta slots + dead base ids: the quantity that grows
  per-query overlay work and wire payloads);
* **tombstones** -- dead entities exceed ``max_tombstone_ratio`` of
  the id space (the quantity that wastes candidate-set work on
  excluded ids).

The scheduler holds **no lock of its own**: it calls
``engine.compact()``, which runs under the engine's writer-preferred
drain gate exactly like an operator-issued compaction, so queries
never observe a half-swapped index.  Mutations poke the scheduler (via
``LiveServingMixin._mutate``) so triggers fire promptly; the poll
interval is only a fallback.

**Failure isolation**: a compaction that raises (chaos site
``live:compact``, disk full, kernel error) is counted
(``compaction.failures``), remembered (:attr:`last_error`), and retried
no sooner than ``failure_backoff_s`` later -- and because
``LiveServingMixin.compact`` bumps the generation only after the swap
completes, the failed attempt leaves the live generation serving
untouched.  ``min_interval_s`` throttles healthy compactions so a
steady write load cannot turn the scheduler into a rebuild loop.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Callable

DEFAULT_INTERVAL_S = 0.25
DEFAULT_MIN_INTERVAL_S = 1.0
DEFAULT_FAILURE_BACKOFF_S = 2.0

__all__ = ["CompactionScheduler"]


class CompactionScheduler:
    """Watch a live engine and compact when a trigger fires.

    Parameters
    ----------
    engine:
        A :class:`~repro.serving.live.LiveServingMixin` engine (or the
        sharded ``LiveShardRouter``) -- anything with ``index`` (a
        ``LiveIndex``), ``compact(path)`` and ``recorder``.
    max_delta / max_tombstone_ratio:
        The two triggers; ``None`` disables one.  At least one must be
        set.
    path:
        Where compactions are written (default: the engine's
        ``index_path``; ``None`` keeps folds in memory).
    interval_s / min_interval_s / failure_backoff_s:
        Poll period, minimum spacing between successful compactions,
        and minimum spacing after a failed one.
    clock:
        Injected monotonic clock for deterministic tests; the thread
        still sleeps on real time.
    """

    def __init__(
        self,
        engine: Any,
        max_delta: int | None = None,
        max_tombstone_ratio: float | None = None,
        path: str | Path | None = None,
        interval_s: float = DEFAULT_INTERVAL_S,
        min_interval_s: float = DEFAULT_MIN_INTERVAL_S,
        failure_backoff_s: float = DEFAULT_FAILURE_BACKOFF_S,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_delta is None and max_tombstone_ratio is None:
            raise ValueError("need max_delta and/or max_tombstone_ratio")
        if max_delta is not None and max_delta < 1:
            raise ValueError(f"max_delta must be >= 1, got {max_delta}")
        if max_tombstone_ratio is not None and not 0.0 < max_tombstone_ratio <= 1.0:
            raise ValueError(
                f"max_tombstone_ratio must be in (0, 1], got {max_tombstone_ratio}"
            )
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.engine = engine
        self.max_delta = max_delta
        self.max_tombstone_ratio = max_tombstone_ratio
        self.path = Path(path) if path is not None else None
        self.interval_s = interval_s
        self.min_interval_s = min_interval_s
        self.failure_backoff_s = failure_backoff_s
        self._clock = clock
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_attempt: float | None = None
        self._not_before = 0.0
        self.compactions = 0
        self.failures = 0
        self.last_error: str | None = None
        self.last_reason: str | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "CompactionScheduler":
        """Start the background thread (idempotent) and register the
        mutation poke on the engine."""
        self.engine.compaction = self
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="compaction-scheduler", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=30.0)
            self._thread = None
        if getattr(self.engine, "compaction", None) is self:
            self.engine.compaction = None

    def __enter__(self) -> "CompactionScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def poke(self) -> None:
        """Wake the scheduler early (called after every mutation)."""
        self._wake.set()

    def _run(self) -> None:
        while True:
            self._wake.wait(self.interval_s)
            self._wake.clear()
            if self._stop.is_set():
                return
            self.tick()

    # -- the decision --------------------------------------------------

    def due(self) -> str | None:
        """The trigger that currently fires (``"delta"`` |
        ``"tombstones"``) or ``None``."""
        live = self.engine.index
        if self.max_delta is not None:
            pending = live.delta.allocated + len(live.delta.dead_base)
            if pending >= self.max_delta:
                return "delta"
        if self.max_tombstone_ratio is not None:
            tombstones = live.tombstone_count
            if tombstones and tombstones / max(1, live.id_space) >= (
                self.max_tombstone_ratio
            ):
                return "tombstones"
        return None

    def tick(self) -> bool:
        """One synchronous scheduling decision; True when a compaction
        ran and succeeded.  Public so tests can drive the scheduler
        deterministically without the thread."""
        now = self._clock()
        if now < self._not_before:
            return False
        reason = self.due()
        if reason is None:
            return False
        recorder = getattr(self.engine, "recorder", None)
        self._last_attempt = now
        try:
            self.engine.compact(self.path)
        except Exception as error:
            self.failures += 1
            self.last_error = f"{type(error).__name__}: {error}"
            self._not_before = now + self.failure_backoff_s
            if recorder is not None:
                recorder.count("compaction.failures")
            return False
        self.compactions += 1
        self.last_reason = reason
        self.last_error = None
        self._not_before = now + self.min_interval_s
        if recorder is not None:
            recorder.count("compaction.auto")
            recorder.count(f"compaction.auto.{reason}")
        return True

    # -- introspection -------------------------------------------------

    def stats(self) -> dict[str, object]:
        return {
            "max_delta": self.max_delta,
            "max_tombstone_ratio": self.max_tombstone_ratio,
            "compactions": self.compactions,
            "failures": self.failures,
            "last_reason": self.last_reason,
            "last_error": self.last_error,
        }

    def __repr__(self) -> str:
        return (
            f"CompactionScheduler(max_delta={self.max_delta}, "
            f"max_tombstone_ratio={self.max_tombstone_ratio}, "
            f"compactions={self.compactions}, failures={self.failures})"
        )
