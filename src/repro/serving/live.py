"""Live index: LSM-style delta segments, tombstones, ledger, zero-drop swaps.

The frozen :class:`~repro.serving.index.ResolutionIndex` answers
queries for a KB that never changes; real Web KBs are re-crawled
continuously.  This module layers mutability on top of the frozen base
without giving up its properties, following the classic LSM split:

* :class:`UpsertLedger` -- an append-only JSONL event log of entity
  upserts and deletes.  The ledger is the durable source of truth; the
  index (base + delta) is a disposable projection rebuilt from base +
  replay at startup.
* :class:`DeltaSegment` -- a small mutable in-memory segment holding
  the upserted entities' postings, name map and descriptions, plus the
  tombstone set of *base* ids shadowed by an upsert or removed by a
  delete.
* :class:`LiveIndex` -- a duck-typed overlay presenting base + delta
  as one index to the unmodified engine: candidate generation unions
  base and delta postings (dead base ids filtered lazily, zero-copy
  for unaffected tokens), block weights are recomputed from *live*
  Entity Frequencies, and delta entities occupy dense ids above every
  base id.  :meth:`LiveIndex.compact` folds everything into a fresh
  frozen index whose save is byte-deterministic.
* :class:`IndexHandle` -- a reader/writer drain gate plus a monotonic
  generation counter: queries pin the current index state, mutations
  and swaps wait for pinned queries to finish, flip atomically, and
  bump the generation (which keys the LRU cache, so no answer computed
  against an older state is ever served after a change).
* :class:`LiveServingMixin` / :class:`LiveEngine` -- the serving
  behaviours over any :class:`~repro.serving.engine.MatchEngine`
  subclass (``LiveShardRouter`` in :mod:`repro.sharding.router` reuses
  the same mixin over the sharded tier).

Equivalence contract (the invariant every serving PR has held to):
decisions over base + delta are bit-identical to a full rebuild of the
index over the equivalent final KB -- base entities never edited, in
base order, followed by live delta entities in upsert order.  Ids map
monotonically between the two, and every tie-break in the pipeline is
``(-score, id)``, so the mapping preserves decisions.  Exactness is
guaranteed for *relation-neutral* edits (upserted descriptions are
treated as relation-free, and edits must not change the rebuilt KB's
discovered name attributes); see ``docs/live_index.md`` for the
precise scope and why compaction output always equals live serving.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from array import array
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.blocking.name_blocking import normalize_name
from repro.kb.entity import EntityDescription
from repro.kernels import CSRAdjacency, block_weight
from repro.obs import current_recorder
from repro.resilience.faults import inject
from repro.serving.engine import SWEEP_MARGIN, MatchEngine
from repro.serving.index import ResolutionIndex

__all__ = [
    "DeltaSegment",
    "IndexHandle",
    "LedgerError",
    "LiveEngine",
    "LiveIndex",
    "LiveServingMixin",
    "UpsertLedger",
]


class LedgerError(ValueError):
    """A malformed ledger line (carries the 1-based line number)."""


def _entity_to_record(entity: EntityDescription) -> dict[str, Any]:
    return {"uri": entity.uri, "pairs": [list(pair) for pair in entity.pairs]}


def _entity_from_record(payload: Any, line: int) -> EntityDescription:
    if (
        not isinstance(payload, dict)
        or not isinstance(payload.get("uri"), str)
        or not payload["uri"]
        or not isinstance(payload.get("pairs"), list)
    ):
        raise LedgerError(
            f"ledger line {line}: 'entity' needs a non-empty 'uri' and a "
            f"'pairs' list"
        )
    pairs = []
    for item in payload["pairs"]:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not all(isinstance(part, str) for part in item)
        ):
            raise LedgerError(
                f"ledger line {line}: each pair must be [attribute, value] "
                f"strings, got {item!r}"
            )
        pairs.append((item[0], item[1]))
    return EntityDescription(payload["uri"], pairs)


def _canonical_record(record: dict[str, Any]) -> bytes:
    """The CRC input: canonical JSON of the record minus its ``crc`` key.

    Canonical (sorted keys, compact separators) so verification is
    independent of on-disk key order -- a hand-edited but intact ledger
    still verifies.
    """
    body = {key: value for key, value in record.items() if key != "crc"}
    return json.dumps(
        body, separators=(",", ":"), sort_keys=True, ensure_ascii=False
    ).encode("utf-8")


def record_crc(record: dict[str, Any]) -> int:
    """CRC32 of a ledger record's canonical form (crc key excluded)."""
    return zlib.crc32(_canonical_record(record)) & 0xFFFFFFFF


class UpsertLedger:
    """Append-only, checksummed JSONL event log of live-index mutations.

    One JSON object per line::

        {"op": "upsert", "entity": {...}, "crc": 2859425017}
        {"op": "delete", "uri": "...", "crc": 1948562170}

    The ledger is the durable record (Engram-style: immutable events,
    disposable projection): a serving process replays it over the
    frozen base at startup to recover the delta segment, and
    compaction folds it into a fresh base and truncates it.  Appends
    flush + fsync on every record so a crashed server loses at most
    the record being written.

    **Integrity.**  Every record carries a CRC32 over its canonical
    JSON form (sorted keys, ``crc`` excluded), verified on replay;
    records written before checksumming existed (no ``crc`` key) are
    accepted and counted in :attr:`unverified`.

    **Crash recovery.**  A crash mid-append leaves a *torn tail*: a
    final record that is truncated, unterminated, or CRC-corrupt, with
    nothing after it.  ``replay(recover=True)`` truncates the tail back
    to the last intact record boundary (fsync'd), appends a checksummed
    ``{"op": "recover", ...}`` marker (skipped by future replays, so
    the repair itself is auditable), records the repair in
    :attr:`recovered`, and counts ``ledger.recoveries``.  The default
    ``recover=False`` stays strict and raises :class:`LedgerError`.
    Corruption *before* the final record can never be a torn append and
    always raises -- recovery never silently drops interior events.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        #: Records appended through this instance (not the file total).
        self.appended = 0
        #: Pre-CRC records accepted by the last :meth:`replay`.
        self.unverified = 0
        #: Details of the last torn-tail repair (``None`` if none ran).
        self.recovered: dict[str, Any] | None = None

    def append_upsert(self, entity: EntityDescription) -> None:
        """Append one upsert event and flush it."""
        self._append({"op": "upsert", "entity": _entity_to_record(entity)})

    def append_delete(self, uri: str) -> None:
        """Append one delete event and flush it."""
        self._append({"op": "delete", "uri": uri})

    def _append(self, record: dict[str, Any]) -> None:
        record = dict(record)
        record["crc"] = record_crc(record)
        data = json.dumps(record, ensure_ascii=False) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            self.appended += 1

    def _parse(self, raw: bytes, number: int) -> tuple[str, Any] | None:
        """One intact line -> event tuple, ``None`` for recovery markers.

        Raises :class:`LedgerError` on any structural or checksum
        problem; the caller decides whether that is fatal (interior
        line) or a recoverable torn tail (final line).
        """
        try:
            record = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise LedgerError(f"ledger line {number}: not JSON ({error})") from None
        if not isinstance(record, dict):
            raise LedgerError(
                f"ledger line {number}: expected an object, got "
                f"{type(record).__name__}"
            )
        crc = record.get("crc")
        if crc is not None:
            if not isinstance(crc, int):
                raise LedgerError(
                    f"ledger line {number}: 'crc' must be an integer, got {crc!r}"
                )
            expected = record_crc(record)
            if crc != expected:
                raise LedgerError(
                    f"ledger line {number}: CRC mismatch "
                    f"(stored {crc}, computed {expected})"
                )
        else:
            self.unverified += 1
        op = record.get("op")
        if op == "upsert":
            return "upsert", _entity_from_record(record.get("entity"), number)
        if op == "delete":
            uri = record.get("uri")
            if not isinstance(uri, str) or not uri:
                raise LedgerError(
                    f"ledger line {number}: 'delete' needs a "
                    f"non-empty string 'uri'"
                )
            return "delete", uri
        if op == "recover":
            return None
        raise LedgerError(
            f"ledger line {number}: unknown op {op!r} "
            f"(expected 'upsert', 'delete' or 'recover')"
        )

    def replay(self, recover: bool = False) -> Iterator[tuple[str, Any]]:
        """Yield ``("upsert", EntityDescription)`` / ``("delete", uri)``
        events in append order; a missing file is an empty ledger.

        With ``recover=True``, a torn tail (see the class docstring) is
        truncated and repaired instead of raising; interior corruption
        raises :class:`LedgerError` in both modes.
        """
        self.unverified = 0
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            good_end = 0
            number = 0
            while True:
                raw = handle.readline()
                if not raw:
                    break
                number += 1
                stripped = raw.strip()
                error: LedgerError | None = None
                event: tuple[str, Any] | None = None
                if not raw.endswith(b"\n"):
                    # Only the final line can lack its newline; treat it
                    # as torn even if its JSON happens to parse -- the
                    # next append would fuse with it and corrupt both.
                    if not stripped:
                        break
                    error = LedgerError(
                        f"ledger line {number}: unterminated record "
                        f"({len(raw)} bytes, no trailing newline)"
                    )
                elif not stripped:
                    good_end = handle.tell()
                    continue
                else:
                    try:
                        event = self._parse(stripped, number)
                    except LedgerError as parse_error:
                        error = parse_error
                if error is not None:
                    if handle.read().strip():
                        # Bad line with content after it: interior
                        # corruption, never a torn append.
                        raise error
                    if not recover:
                        raise LedgerError(
                            f"{error} -- torn tail; replay(recover=True) "
                            f"truncates it"
                        ) from None
                    self._truncate_tail(good_end, number, str(error))
                    return
                good_end = handle.tell()
                if event is not None:
                    yield event

    def _truncate_tail(self, good_end: int, number: int, reason: str) -> None:
        """Drop the torn final record and leave an fsync'd audit marker."""
        size = self.path.stat().st_size
        with self._lock:
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
        self.recovered = {
            "line": number,
            "dropped_bytes": size - good_end,
            "reason": reason,
        }
        self._append({"op": "recover", **self.recovered})
        current_recorder().count("ledger.recoveries")

    def clear(self) -> None:
        """Truncate the ledger (called after its events were compacted
        into a fresh base)."""
        with self._lock:
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.flush()
                os.fsync(handle.fileno())

    def __repr__(self) -> str:
        return f"UpsertLedger({str(self.path)!r}, appended={self.appended})"


class DeltaSegment:
    """The mutable in-memory segment of a :class:`LiveIndex`.

    Slots are allocated densely and never reused: every upsert gets a
    fresh slot (its global id is ``base_n2 + slot``), and the slot an
    entity previously occupied is tombstoned -- so an entity's position
    in the equivalent rebuilt KB is its *last* upsert, and slot order
    is exactly rebuild order.  ``dead_base`` holds base ids shadowed by
    an upsert of the same URI or removed by a delete; base ids are
    never resurrected (a re-upsert after a delete lands in the delta).
    """

    def __init__(self) -> None:
        #: Slot -> description; ``None`` marks a tombstoned slot.
        self.entities: list[EntityDescription | None] = []
        #: Slot -> URI (kept through tombstoning for diagnostics).
        self.uris: list[str] = []
        #: Live URI -> its current slot.
        self.uri_slot: dict[str, int] = {}
        #: Token -> ascending live slots containing it.
        self.postings: dict[str, list[int]] = {}
        #: Normalised name -> ascending live slots carrying it.
        self.names: dict[str, list[int]] = {}
        #: Slot -> its token set / name tuple (for tombstone removal).
        self.token_sets: list[frozenset[str]] = []
        self.name_sets: list[tuple[str, ...]] = []
        #: Base ids shadowed or deleted.
        self.dead_base: set[int] = set()
        #: Live (non-tombstoned) slot count.
        self.live_count = 0

    @property
    def allocated(self) -> int:
        """Slots ever allocated, tombstoned ones included."""
        return len(self.entities)

    def live_slots(self) -> list[int]:
        """Ascending live slots -- rebuild order of the delta entities."""
        return [slot for slot, entity in enumerate(self.entities) if entity is not None]

    def add(
        self,
        entity: EntityDescription,
        tokens: frozenset[str],
        names: tuple[str, ...],
    ) -> int:
        """Append ``entity`` into a fresh slot and return it."""
        slot = len(self.entities)
        self.entities.append(entity)
        self.uris.append(entity.uri)
        self.token_sets.append(tokens)
        self.name_sets.append(names)
        for token in tokens:
            self.postings.setdefault(token, []).append(slot)
        for name in names:
            self.names.setdefault(name, []).append(slot)
        self.uri_slot[entity.uri] = slot
        self.live_count += 1
        return slot

    def remove_slot(self, slot: int) -> None:
        """Tombstone one live slot, unlinking its postings and names."""
        for token in self.token_sets[slot]:
            group = self.postings[token]
            group.remove(slot)
            if not group:
                del self.postings[token]
        for name in self.name_sets[slot]:
            group = self.names[name]
            group.remove(slot)
            if not group:
                del self.names[name]
        self.uri_slot.pop(self.uris[slot], None)
        self.entities[slot] = None
        self.live_count -= 1

    def __repr__(self) -> str:
        return (
            f"DeltaSegment(live={self.live_count}, allocated={self.allocated}, "
            f"dead_base={len(self.dead_base)})"
        )


class _LivePostings:
    """Token -> live posting ids, unioning base (dead-filtered) and delta.

    Unaffected tokens return the raw base sequence -- a zero-copy
    memmap slice on a mapped base -- so the frozen-index hot path pays
    nothing.  ``len()`` is a documented *upper bound* (tokens whose
    every base entity died still count); no serving math consumes it.
    """

    __slots__ = ("_live",)

    def __init__(self, live: "LiveIndex"):
        self._live = live

    def __contains__(self, token: object) -> bool:
        return isinstance(token, str) and self._live.entity_frequency(token) > 0

    def __getitem__(self, token: str) -> Sequence[int]:
        ids = self._live._posting(token)
        if ids is None:
            raise KeyError(token)
        return ids

    def get(self, token: str, default: Any = ()) -> Any:
        ids = self._live._posting(token)
        return default if ids is None else ids

    def __len__(self) -> int:
        live = self._live
        base = live.base.postings
        extra = sum(1 for token in live.delta.postings if token not in base)
        return len(base) + extra

    def __iter__(self) -> Iterator[str]:
        live = self._live
        base = live.base.postings
        for token in base:
            yield token
        for token in live.delta.postings:
            if token not in base:
                yield token


class _LiveWeights:
    """Token -> singleton block weight from the *live* Entity Frequency.

    Falls through to the base's hoisted weight when the token's live EF
    equals the frozen one (the overwhelmingly common case)."""

    __slots__ = ("_live",)

    def __init__(self, live: "LiveIndex"):
        self._live = live

    def __getitem__(self, token: str) -> float:
        live = self._live
        base_ids = live.base.postings.get(token)
        base_ef = len(base_ids) if base_ids is not None else 0
        live_ef = (
            base_ef
            - live._dead_count(token)
            + len(live.delta.postings.get(token, ()))
        )
        if live_ef == base_ef and base_ids is not None:
            return live.base.singleton_weights[token]
        if live_ef <= 0:
            raise KeyError(token)
        return block_weight(live_ef)

    def __contains__(self, token: object) -> bool:
        return isinstance(token, str) and self._live.entity_frequency(token) > 0


class _LiveNames:
    """Normalised name -> live global ids (base survivors + delta)."""

    __slots__ = ("_live",)

    def __init__(self, live: "LiveIndex"):
        self._live = live

    def _group(self, name: str) -> tuple[int, ...] | None:
        live = self._live
        dead = live.delta.dead_base
        base_ids = live.base.names.get(name, ())
        ids = [eid for eid in base_ids if eid not in dead]
        base_n2 = live.base.n2
        ids.extend(base_n2 + slot for slot in live.delta.names.get(name, ()))
        return tuple(ids) if ids else None

    def __getitem__(self, name: str) -> tuple[int, ...]:
        group = self._group(name)
        if group is None:
            raise KeyError(name)
        return group

    def get(self, name: str, default: Any = None) -> Any:
        group = self._group(name)
        return default if group is None else group

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._group(name) is not None

    def __len__(self) -> int:
        live = self._live
        base = live.base.names
        extra = sum(1 for name in live.delta.names if name not in base)
        return len(base) + extra


class _LiveURIs:
    """Global id -> URI over base then delta slots (tombstones keep
    their last URI -- live code never asks for a dead id's URI, but
    diagnostics may)."""

    __slots__ = ("_live",)

    def __init__(self, live: "LiveIndex"):
        self._live = live

    def __getitem__(self, eid: int) -> str:
        live = self._live
        base_n2 = live.base.n2
        if 0 <= eid < base_n2:
            return live.base.uris2[eid]
        return live.delta.uris[eid - base_n2]

    def __len__(self) -> int:
        return self._live.id_space

    def __iter__(self) -> Iterator[str]:
        for eid in range(len(self)):
            yield self[eid]


class LiveIndex:
    """Frozen base + mutable delta presented as one engine-ready index.

    Duck-types the :class:`~repro.serving.index.ResolutionIndex`
    surface the engine consumes (``n2``/``id_space``/``postings``/
    ``singleton_weights``/``names``/``uris2``/``in_neighbors``/
    ``entity_frequency``/...), so :class:`MatchEngine` and the shard
    router run over it unmodified.  ``n2`` is the *live* entity count
    (drives weights and purging, matching a rebuild); ``id_space`` is
    ``base n2 + allocated delta slots`` (drives array and graph
    extents; tombstoned columns stay empty and are harmless).

    Not thread-safe on its own: callers serialise mutations against
    queries through :class:`IndexHandle` (as :class:`LiveServingMixin`
    does).
    """

    def __init__(self, base: ResolutionIndex):
        if base.shard_info is not None:
            raise ValueError(
                "a LiveIndex overlays the full index, not a shard "
                f"({base.shard_info.get('index')}/{base.shard_info.get('count')})"
            )
        self.base = base
        self.delta = DeltaSegment()
        self._epoch = 0
        self._base_uri_ids: dict[str, int] | None = None
        # Per-epoch memos, all invalidated wholesale by any mutation.
        self._dead_counts: tuple[int, dict[str, int]] = (0, {})
        self._merged: tuple[int, dict[str, list[int]]] = (0, {})
        self._csr: tuple[int, CSRAdjacency] | None = None
        self.postings = _LivePostings(self)
        self.singleton_weights = _LiveWeights(self)
        self.names = _LiveNames(self)
        self.uris2 = _LiveURIs(self)

    # ------------------------------------------------------------------
    # Frozen-surface passthroughs
    # ------------------------------------------------------------------
    @property
    def kb_name(self) -> str:
        return self.base.kb_name

    @property
    def config(self):
        return self.base.config

    @property
    def tokenizer(self):
        return self.base.tokenizer

    @property
    def name_attributes(self) -> tuple[str, ...]:
        return self.base.name_attributes

    @property
    def load_info(self):
        return self.base.load_info

    @property
    def shard_info(self):
        return None

    @property
    def token_global_ef(self):
        return None

    # ------------------------------------------------------------------
    # Live geometry
    # ------------------------------------------------------------------
    @property
    def n2(self) -> int:
        """Live entity count (weights/purging input -- equals a rebuild's)."""
        return self.base.n2 - len(self.delta.dead_base) + self.delta.live_count

    @property
    def id_space(self) -> int:
        """Dense-id extent: every base id plus every allocated slot."""
        return self.base.n2 + self.delta.allocated

    @property
    def delta_active(self) -> bool:
        """True when any edit distinguishes live state from the base."""
        return bool(self.delta.live_count or self.delta.dead_base)

    @property
    def tombstone_count(self) -> int:
        """Dead base ids plus tombstoned delta slots."""
        return len(self.delta.dead_base) + (
            self.delta.allocated - self.delta.live_count
        )

    @property
    def epoch(self) -> int:
        """Mutation counter (cache-invalidation key for the views)."""
        return self._epoch

    def _bump(self) -> None:
        self._epoch += 1

    # ------------------------------------------------------------------
    # Posting / EF overlay
    # ------------------------------------------------------------------
    def _dead_count(self, token: str) -> int:
        """Dead base ids in this token's base posting (epoch-memoised).

        The base keeps no per-entity token sets, so the first probe of
        an affected token after a mutation scans its posting once; a
        clean (no-tombstone) live index short-circuits to 0.
        """
        dead = self.delta.dead_base
        if not dead:
            return 0
        epoch, memo = self._dead_counts
        if epoch != self._epoch:
            memo = {}
            self._dead_counts = (self._epoch, memo)
        count = memo.get(token)
        if count is None:
            ids = self.base.postings.get(token, ())
            count = sum(1 for eid in ids if eid in dead)
            memo[token] = count
        return count

    def _posting(self, token: str) -> Sequence[int] | None:
        """The live posting of ``token`` (ascending global ids), or
        ``None`` when its live EF is zero.

        Unaffected tokens return the base's sequence untouched (the
        zero-copy mmap slice); affected ones build and memoise a plain
        list for the current epoch.
        """
        base_ids = self.base.postings.get(token)
        delta_slots = self.delta.postings.get(token)
        dead_count = self._dead_count(token) if base_ids is not None else 0
        if not delta_slots and not dead_count:
            if base_ids is None or not len(base_ids):
                return None
            return base_ids
        epoch, memo = self._merged
        if epoch != self._epoch:
            memo = {}
            self._merged = (self._epoch, memo)
        merged = memo.get(token)
        if merged is None:
            merged = []
            if base_ids is not None:
                if dead_count:
                    dead = self.delta.dead_base
                    merged.extend(
                        int(eid) for eid in base_ids if eid not in dead
                    )
                elif hasattr(base_ids, "tolist"):
                    merged.extend(base_ids.tolist())
                else:
                    merged.extend(base_ids)
            if delta_slots:
                base_n2 = self.base.n2
                merged.extend(base_n2 + slot for slot in delta_slots)
            memo[token] = merged
        return merged if merged else None

    def entity_frequency(self, token: str) -> int:
        """Live ``EF2(t)``: base EF minus dead members plus delta members."""
        base_ids = self.base.postings.get(token)
        base_ef = len(base_ids) if base_ids is not None else 0
        if base_ef:
            base_ef -= self._dead_count(token)
        return base_ef + len(self.delta.postings.get(token, ()))

    def global_entity_frequency(self, token: str) -> int:
        """Same as :meth:`entity_frequency` (a live index is never a shard)."""
        return self.entity_frequency(token)

    def uri_of(self, eid: int) -> str:
        return self.uris2[eid]

    # ------------------------------------------------------------------
    # Neighbor overlay
    # ------------------------------------------------------------------
    @property
    def in_neighbors(self) -> CSRAdjacency:
        """The base in-neighbor CSR, extended to ``id_space`` rows with
        dead ids masked (so ``gamma`` never proposes a tombstoned
        entity).  Delta entities contribute no relation structure (the
        relation-neutral scope); their rows are empty."""
        if not self.delta_active:
            return self.base.in_neighbors
        cached = self._csr
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        dead = self.delta.dead_base
        base_csr = self.base.in_neighbors
        rows: list[Sequence[int]] = []
        for eid in range(self.base.n2):
            if eid in dead:
                rows.append(())
                continue
            neighbors = base_csr.neighbors(eid)
            if dead:
                kept = [int(j) for j in neighbors if j not in dead]
                rows.append(kept)
            else:
                rows.append(neighbors)
        rows.extend(() for _ in range(self.delta.allocated))
        csr = CSRAdjacency.from_lists(rows)
        self._csr = (self._epoch, csr)
        return csr

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _base_id(self, uri: str) -> int | None:
        if self._base_uri_ids is None:
            self._base_uri_ids = {
                uri2: eid for eid, uri2 in enumerate(self.base.uris2)
            }
        return self._base_uri_ids.get(uri)

    def _names_of(self, entity: EntityDescription) -> tuple[str, ...]:
        """The entity's normalised names under the base's frozen name
        attributes, in the index build's exact emit order."""
        out: list[str] = []
        seen: set[str] = set()
        for attribute in self.base.name_attributes:
            for raw in entity.values_of(attribute):
                name = normalize_name(raw)
                if name and name not in seen:
                    seen.add(name)
                    out.append(name)
        return tuple(out)

    def upsert(self, entity: EntityDescription) -> int:
        """Insert or replace one entity; returns its new global id.

        Every value is tokenised as a literal (relation-neutral scope);
        a previous delta slot for the URI is tombstoned, a base entity
        with the URI is shadowed via ``dead_base``.
        """
        uri = entity.uri
        if not uri:
            raise ValueError("an upserted entity needs a non-empty URI")
        tokens = self.tokenizer.token_set([value for _, value in entity.pairs])
        names = self._names_of(entity)
        delta = self.delta
        previous = delta.uri_slot.get(uri)
        if previous is not None:
            delta.remove_slot(previous)
        else:
            base_id = self._base_id(uri)
            if base_id is not None:
                delta.dead_base.add(base_id)
        slot = delta.add(entity, tokens, names)
        self._bump()
        return self.base.n2 + slot

    def delete(self, uri: str) -> bool:
        """Remove one entity by URI; False when it was not live."""
        delta = self.delta
        slot = delta.uri_slot.get(uri)
        if slot is not None:
            delta.remove_slot(slot)
            self._bump()
            return True
        base_id = self._base_id(uri)
        if base_id is not None and base_id not in delta.dead_base:
            delta.dead_base.add(base_id)
            self._bump()
            return True
        return False

    def apply(self, op: str, value: Any) -> bool:
        """Apply one replayed ledger event; True if it changed state."""
        if op == "upsert":
            self.upsert(value)
            return True
        if op == "delete":
            return self.delete(value)
        raise ValueError(f"unknown live-index op {op!r}")

    # ------------------------------------------------------------------
    # Sharded-tier helpers
    # ------------------------------------------------------------------
    def dead_base_ids(self) -> list[int]:
        """Sorted dead base ids -- the scatter's ``exclude`` payload."""
        return sorted(self.delta.dead_base)

    def weight_overrides(self, tokens: Iterable[str]) -> dict[str, float]:
        """Per-token live-weight overrides for tokens whose live EF
        differs from the frozen one -- the scatter's ``weights``
        payload (workers keep serving off their unmodified shards)."""
        base_postings = self.base.postings
        overrides: dict[str, float] = {}
        for token in tokens:
            base_ids = base_postings.get(token)
            if base_ids is None:
                continue
            base_ef = len(base_ids)
            live_ef = (
                base_ef
                - self._dead_count(token)
                + len(self.delta.postings.get(token, ()))
            )
            if live_ef != base_ef and live_ef > 0:
                overrides[token] = block_weight(live_ef)
        return overrides

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> ResolutionIndex:
        """Fold base + delta into a fresh frozen index.

        Survivor base entities keep their relative order, live delta
        entities follow in slot (= last-upsert) order; ids are densely
        renumbered by that order, which is exactly the equivalent
        rebuilt KB's id assignment -- so for relation-neutral KBs the
        result's :meth:`~ResolutionIndex.save` bytes equal a cold
        ``ResolutionIndex.build`` of the final KB.  In every case the
        compacted index answers queries identically to the live overlay
        it folded (same postings, weights, names and neighbor rows
        under the monotone renumbering).
        """
        base = self.base
        delta = self.delta
        base_n2 = base.n2
        dead = delta.dead_base
        survivors = [eid for eid in range(base_n2) if eid not in dead]
        mapping: dict[int, int] = {old: new for new, old in enumerate(survivors)}
        uris: list[str] = [base.uris2[eid] for eid in survivors]
        live_slots = delta.live_slots()
        for slot in live_slots:
            mapping[base_n2 + slot] = len(uris)
            uris.append(delta.uris[slot])

        postings: dict[str, array] = {}
        base_postings = base.postings
        for token in base_postings:
            ids = [mapping[eid] for eid in base_postings[token] if eid not in dead]
            slots = delta.postings.get(token)
            if slots:
                ids.extend(mapping[base_n2 + slot] for slot in slots)
            if ids:
                postings[token] = array("i", ids)
        for token, slots in delta.postings.items():
            if slots and token not in base_postings:
                postings[token] = array(
                    "i", [mapping[base_n2 + slot] for slot in slots]
                )
        weights = {token: block_weight(len(ids)) for token, ids in postings.items()}

        names: dict[str, tuple[int, ...]] = {}
        base_names = base.names
        for name in base_names:
            ids = [mapping[eid] for eid in base_names[name] if eid not in dead]
            slots = delta.names.get(name)
            if slots:
                ids.extend(mapping[base_n2 + slot] for slot in slots)
            if ids:
                names[name] = tuple(ids)
        for name, slots in delta.names.items():
            if slots and name not in base_names:
                names[name] = tuple(mapping[base_n2 + slot] for slot in slots)

        base_csr = base.in_neighbors
        rows: list[list[int]] = []
        for eid in survivors:
            rows.append(
                [mapping[j] for j in base_csr.neighbors(eid) if j not in dead]
            )
        rows.extend([] for _ in live_slots)

        return ResolutionIndex(
            kb_name=base.kb_name,
            n2=len(uris),
            uris2=uris,
            config=base.config,
            tokenizer=base.tokenizer,
            name_attributes=base.name_attributes,
            names=names,
            postings=postings,
            singleton_weights=weights,
            in_neighbors=CSRAdjacency.from_lists(rows),
        )

    def describe(self) -> dict[str, object]:
        """Base summary overlaid with live counts and a delta section."""
        summary = self.base.describe()
        summary["entities"] = self.n2
        summary["delta"] = {
            "entities": self.delta.live_count,
            "allocated": self.delta.allocated,
            "dead_base": len(self.delta.dead_base),
            "tombstones": self.tombstone_count,
        }
        return summary

    def __repr__(self) -> str:
        return (
            f"LiveIndex({self.kb_name!r}, base={self.base.n2}, "
            f"delta={self.delta.live_count}, dead={len(self.delta.dead_base)}, "
            f"epoch={self._epoch})"
        )


class IndexHandle:
    """Generation holder + reader/writer drain gate for zero-drop swaps.

    Queries :meth:`pin` the current index state (many at once);
    mutations and swaps take :meth:`exclusive`, which waits for every
    pinned query to finish -- no in-flight query ever sees a torn
    state, and none is dropped: late pins simply wait and run against
    the *new* state.  Writers are preferred (a waiting writer blocks
    new pins) so a steady query stream cannot starve a swap.

    :attr:`generation` is bumped explicitly (:meth:`bump`) while
    exclusive is held; readers observe it stably for the lifetime of
    their pin.
    """

    def __init__(self, generation: int = 0):
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writer_active = False
        self.generation = generation

    @contextmanager
    def pin(self):
        """Hold the current index state for one query."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield self.generation
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def exclusive(self):
        """Drain pinned queries, then hold the index exclusively."""
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()

    def bump(self) -> int:
        """Advance the generation (call only while exclusive is held)."""
        self.generation += 1
        return self.generation

    def __repr__(self) -> str:
        return f"IndexHandle(generation={self.generation}, readers={self._readers})"


class LiveServingMixin:
    """Live-index behaviours over any :class:`MatchEngine` subclass.

    Wraps the engine's query entry points in :meth:`IndexHandle.pin`
    and adds ``upsert``/``delete``/``attach_ledger``/``compact``/
    ``reload``, each of which drains in-flight queries, mutates, bumps
    the generation (invalidating every cached answer -- the LRU key
    carries the generation) and refreshes the ``live.*`` gauges.
    Compose it *before* the engine class::

        class LiveEngine(LiveServingMixin, MatchEngine): ...

    The sharded variant (``LiveShardRouter`` in
    :mod:`repro.sharding.router`) reuses this mixin unchanged and adds
    the scatter-side overlay.
    """

    def __init__(self, index, *args, **kwargs):
        live = index if isinstance(index, LiveIndex) else LiveIndex(index)
        super().__init__(live, *args, **kwargs)
        self.handle = IndexHandle()
        self.ledger: UpsertLedger | None = None
        #: Where the serving base lives on disk; ``compact``/``reload``
        #: default to it.  The CLI sets it from ``--index``.
        self.index_path: Path | None = None
        self.swap_count = 0
        #: Optional :class:`repro.serving.compaction.CompactionScheduler`
        #: poked after every mutation so triggers fire promptly.
        self.compaction = None
        self._refresh_gauges()

    # ------------------------------------------------------------------
    # Pinned query paths
    # ------------------------------------------------------------------
    def match(self, entity, **kwargs):
        with self.handle.pin():
            return super().match(entity, **kwargs)

    def match_batch(self, entities, **kwargs):
        with self.handle.pin():
            return super().match_batch(list(entities), **kwargs)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _mutate(self, operation: Callable[[], Any]) -> Any:
        """Run ``operation`` under the drain gate and bump the generation."""
        with self.handle.exclusive():
            result = operation()
            self.handle.bump()
            self.generation = self.handle.generation
            self._refresh_gauges()
        if self.compaction is not None:
            self.compaction.poke()
        return result

    def upsert(self, entity: EntityDescription, record: bool = True) -> int:
        """Insert or replace one entity; returns the new generation.

        ``record=False`` skips the ledger append (used when the event
        already came *from* the ledger or an upstream log)."""

        def operation():
            self.index.upsert(entity)
            if record and self.ledger is not None:
                self.ledger.append_upsert(entity)
            self.recorder.count("live.upserts")

        self._mutate(operation)
        return self.generation

    def delete(self, uri: str, record: bool = True) -> bool:
        """Remove one entity by URI; False when it was not live."""

        def operation():
            removed = self.index.delete(uri)
            if removed:
                if record and self.ledger is not None:
                    self.ledger.append_delete(uri)
                self.recorder.count("live.deletes")
            return removed

        return self._mutate(operation)

    def attach_ledger(
        self, ledger: UpsertLedger, replay: bool = True, recover: bool = False
    ) -> int:
        """Adopt ``ledger`` for durability; optionally replay it first.

        Returns the number of replayed events.  Replay applies the
        events without re-appending them, so restart recovery is
        idempotent.  ``recover=True`` lets replay truncate a torn tail
        left by a crash mid-append (see :meth:`UpsertLedger.replay`);
        interior corruption raises :class:`LedgerError` regardless.
        """
        self.ledger = ledger
        if not replay:
            return 0
        events = list(ledger.replay(recover=recover))
        if not events:
            return 0

        def operation():
            for op, value in events:
                self.index.apply(op, value)
            self.recorder.count("live.ledger_ops", len(events))

        self._mutate(operation)
        return len(events)

    # ------------------------------------------------------------------
    # Compaction + zero-drop swap
    # ------------------------------------------------------------------
    def _mmap_flag(self) -> bool:
        return bool((self.index.load_info or {}).get("mmap"))

    def _install_base(self, fresh: ResolutionIndex) -> None:
        """Flip the engine onto a fresh frozen base (exclusive held)."""
        self.index = LiveIndex(fresh)
        self._use_row_batch = bool((fresh.load_info or {}).get("mmap"))

    def _swap_workers(
        self, fresh: ResolutionIndex, path: Path | None, reshard: bool
    ) -> None:
        """Propagate a swap to downstream workers (no-op unsharded)."""

    def compact(self, path: str | Path | None = None) -> ResolutionIndex:
        """Fold the delta into a fresh base and swap onto it in place.

        With a ``path`` (default: :attr:`index_path`) the fresh base is
        written there byte-deterministically -- via a temp file +
        atomic rename, so concurrent mmaps of the old file keep their
        pages -- and reloaded with the serving mmap mode; without one
        the fold stays in memory.  The ledger (if attached) is
        truncated: its events now live in the base.  Queries drain
        before the flip and resume against the new base; returns the
        fresh index.

        **Failure isolation**: a compaction that fails partway (the
        ``live:compact`` chaos site, a full disk, a kernel error)
        raises out of the drain gate *without* bumping the generation
        -- the live delta, ledger, and served decisions are exactly as
        if the compaction was never attempted, and the temp file is
        removed.  The background scheduler
        (:class:`repro.serving.compaction.CompactionScheduler`) relies
        on this to retry failed compactions safely.
        """
        target = Path(path) if path is not None else self.index_path

        def operation():
            inject("live:compact")
            fresh = self.index.compact()
            if target is not None:
                tmp = target.with_name(target.name + ".tmp")
                try:
                    fresh.save(tmp)
                    os.replace(tmp, target)
                finally:
                    # A failed save/replace must not leave a stale temp
                    # file shadowing the next compaction attempt.
                    if tmp.exists():
                        try:
                            tmp.unlink()
                        except OSError:
                            pass
                fresh = ResolutionIndex.load(target, mmap=self._mmap_flag())
            self._swap_workers(fresh, target, reshard=True)
            self._install_base(fresh)
            if self.ledger is not None:
                self.ledger.clear()
            self.swap_count += 1
            self.recorder.count("serving.swaps")
            return fresh

        return self._mutate(operation)

    def reload(self, path: str | Path | None = None) -> int:
        """Zero-drop swap onto the index file at ``path``.

        Loads the new base (the slow part happens before queries are
        blocked), drains in-flight queries, flips the engine -- and the
        sharded tier's workers -- atomically, and bumps the generation.
        Any delta state is discarded: a reload asserts the file already
        contains the desired live state (``repro index --compact``
        produces exactly that).  Returns the new generation.
        """
        target = Path(path) if path is not None else self.index_path
        if target is None:
            raise ValueError("reload needs an index path (none configured)")
        fresh = ResolutionIndex.load(target, mmap=self._mmap_flag())

        def operation():
            self._swap_workers(fresh, target, reshard=False)
            self._install_base(fresh)
            self.swap_count += 1
            self.recorder.count("serving.swaps")

        self._mutate(operation)
        return self.generation

    # ------------------------------------------------------------------
    # Delta evidence (consumed by the sharded tier's merge)
    # ------------------------------------------------------------------
    def delta_match_evidence(
        self, tokens: Sequence[str], probe: int | None = None
    ) -> dict[str, object]:
        """The delta segment's merge-ready value evidence for one query.

        Shaped exactly like :meth:`MatchEngine.match_evidence` so the
        router can append it to the worker evidences as one more
        (virtual) shard: delta ids partition disjointly from every
        shard's base ids, weights are the live ones, and the sweep-mins
        argument of :mod:`repro.sharding.merge` extends unchanged.
        """
        live = self.index
        config = self.config
        base_n2 = live.base.n2
        weighted = []
        for token in tokens:
            slots = live.delta.postings.get(token)
            if slots:
                weighted.append(
                    (
                        live.singleton_weights[token],
                        [base_n2 + slot for slot in slots],
                    )
                )
        cap = config.serving_candidate_cap
        keep = cap if cap is not None else config.candidates_k
        row, mins, count, touched = self._run_kernel(
            "row_evidence", weighted, keep, SWEEP_MARGIN, probe
        )
        return {
            "row": [[int(candidate), float(score)] for candidate, score in row],
            "mins": [int(candidate) for candidate in mins],
            "count": int(count),
            "probe": bool(touched),
        }

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _refresh_gauges(self) -> None:
        live = self.index
        recorder = self.recorder
        recorder.gauge("index.generation", self.generation)
        recorder.gauge("live.delta_entities", live.delta.live_count)
        recorder.gauge("live.tombstones", live.tombstone_count)
        recorder.gauge("live.swaps", self.swap_count)

    def stats(self) -> dict[str, object]:
        snapshot = super().stats()
        live = self.index
        snapshot["live"] = {
            "generation": self.generation,
            "delta_entities": live.delta.live_count,
            "delta_allocated": live.delta.allocated,
            "dead_base": len(live.delta.dead_base),
            "tombstones": live.tombstone_count,
            "swaps": self.swap_count,
            "upserts": int(self.recorder.counter_value("live.upserts")),
            "deletes": int(self.recorder.counter_value("live.deletes")),
            "ledger": str(self.ledger.path) if self.ledger is not None else None,
        }
        return snapshot


class LiveEngine(LiveServingMixin, MatchEngine):
    """A :class:`MatchEngine` over a :class:`LiveIndex`: queries pin,
    mutations drain, swaps never drop a query, and every decision is
    bit-identical to a rebuild holding the same entities."""

    def __repr__(self) -> str:
        live = self.index
        return (
            f"LiveEngine(index={live.kb_name!r}, n2={live.n2}, "
            f"generation={self.generation}, delta={live.delta.live_count})"
        )
