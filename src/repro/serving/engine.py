"""Query-time resolution over a frozen :class:`ResolutionIndex`.

Two entry points with one contract:

* :meth:`MatchEngine.match_batch` resolves a *batch* of query
  descriptions together.  The batch supplies the query-side context of
  Algorithm 1 -- Entity Frequencies, name attributes, top in-neighbors
  -- and the engine then runs the exact batch pipeline against the
  frozen index (same blocks, same kernels, same rules), so serving
  every KB1 entity in one batch reproduces
  :meth:`repro.core.pipeline.MinoanER.resolve` pair for pair.
* :meth:`MatchEngine.match` resolves a *single* description as a batch
  of one, on a dedicated hot path: candidates come only from the
  query's shared tokens and names (never a scan of the indexed KB), the
  ``beta`` row is accumulated with the single-row kernel entry points
  (``accumulate_row`` / ``select_row``, dispatched to the configured
  backend and breaker-guarded like the batch kernels; the numpy pair
  consumes memmapped posting slices zero-copy) using the index's
  hoisted singleton block weights, and rules R1-R4 run in a
  query-local form whose per-candidate reciprocity checks touch nothing
  outside the candidate set.  ``match(e)`` equals
  ``match_batch([e])[0]`` by construction (tested).

Batch-of-one semantics, spelled out: the query side contributes
``EF1(t) = 1`` to every block weight, and neighbor evidence (``gamma``)
is inert because a lone description has no resolvable relations --
related queries must be batched together for rule R3's neighbor ranking
to contribute.  Single-query decisions are therefore cacheable by
content fingerprint (:mod:`repro.serving.cache`); batch decisions are
not, and never enter the cache.

Resilience (see ``docs/resilience.md``): when
``config.serving_deadline_ms`` is set, each lookup carries a
:class:`~repro.resilience.policy.Deadline`; a query that exhausts its
budget mid-pipeline receives a *degraded* name-evidence-only answer
(rule R1 or unmatched, ``MatchDecision.degraded = True``, never cached)
instead of blocking the stream.  The numpy kernel backend is guarded by
a :class:`~repro.resilience.breaker.CircuitBreaker`: repeated kernel
failures trip queries down to the bit-identical pure-python kernels
until a timed half-open probe shows numpy recovered.  Lookups are
injection sites (``serve:match``, ``serve:batch``, ``kernel:numpy``)
for the chaos plans of :mod:`repro.resilience.faults`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.blocking.base import Block, BlockCollection
from repro.blocking.name_blocking import normalize_name
from repro.blocking.purging import purge_blocks, purging_threshold_from_counts
from repro.core.config import MinoanERConfig
from repro.core.matcher import NonIterativeMatcher
from repro.core.rank_aggregation import top_aggregate_candidate
from repro.graph.blocking_graph import CandidateList, DisjunctiveBlockingGraph
from repro.graph.pruning import DEFAULT_ADAPTIVE_MINIMUM
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.kernels import (
    InternedBlocks,
    accumulate_row,
    block_weight,
    get_backend,
    resolve_backend_name,
    retained_edge_arrays,
    select_row,
)
from repro.obs import NULL_RECORDER, Recorder, current_recorder
from repro.obs.provenance import RULE_EVIDENCE, ProvenanceRecord, ProvenanceSampler
from repro.resilience.admission import AdmissionController
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import inject
from repro.resilience.policy import Deadline, DeadlineExpired
from repro.serving.cache import LRUCache, entity_fingerprint
from repro.serving.index import ResolutionIndex

RULE_PRIORITY = {"R1": 0, "R2": 1, "R3": 2}
"""Conflict-resolution priority of the matching rules (R1 strongest)."""

PROVENANCE_TOP_SCORES = 3
"""Strongest value candidates kept on a provenance record."""

SWEEP_MARGIN = 4
"""Smallest touched candidate ids a shard reports for the R3 side-2
sweep.  Rules R1-R3 claim at most two KB2 entities before the sweep, so
the sweep's strongest proposal is always among the three smallest
touched ids; four gives one id of slack."""

_Outcome = tuple[
    "int | None", "str | None", "float | None", int, "tuple[tuple[int, float], ...]"
]
"""An internal lookup outcome: (kb2 id, rule, score, retained
candidates, top (kb2 id, beta score) pairs for provenance).  This is
what the LRU cache stores."""


def _top_scores(value_list: Sequence[tuple[int, float]]) -> tuple[tuple[int, float], ...]:
    """The strongest retained value candidates, provenance-sized."""
    return tuple(
        (int(candidate), float(score))
        for candidate, score in value_list[:PROVENANCE_TOP_SCORES]
    )


def apply_single_rules(
    config: MinoanERConfig,
    alpha: int | None,
    value_list: CandidateList,
    touched: Sequence[int],
) -> tuple[int, str, float] | None:
    """Rules R1-R4 in their query-local (batch-of-one) form.

    ``alpha`` is the query's name-evidence match (or None),
    ``value_list`` its pruned value candidates in ``(-score, id)``
    order, and ``touched`` the *ascending* ids of KB2 entities sharing a
    retained block with the query (the R3 side-2 sweep set).  Returns
    the winning ``(kb2 id, rule, score)`` or None.

    Shared by :meth:`MatchEngine._resolve_single` and the shard
    router's evidence merge (:mod:`repro.sharding.merge`), so both
    replay the exact same proposal and conflict logic.
    """
    # Rules R1-R3.  Proposals are (candidate, score, rule); the query
    # is implicitly side-1 entity 0.
    collected: list[tuple[int, float, str]] = []
    claimed_q = False
    claimed_2: set[int] = set()
    if config.use_name_rule and alpha is not None:
        collected.append((alpha, float("inf"), "R1"))
        claimed_q = True
        claimed_2.add(alpha)
    if config.use_value_rule and not claimed_q and value_list:
        top_candidate, top_beta = value_list[0]
        if top_beta >= config.value_threshold:
            collected.append((top_candidate, top_beta, "R2"))
            claimed_q = True
            claimed_2.add(top_candidate)
    if config.use_rank_aggregation:
        if not claimed_q:
            best = top_aggregate_candidate(value_list, (), config.theta)
            if best is not None:
                candidate, score = best
                collected.append((candidate, score, "R3"))
                claimed_2.add(candidate)
        # Side-2 sweep: every touched candidate's own value list is
        # the single pair back to the query (rank score 1.0), so its
        # best aggregate is the query at theta * 1.0.
        side2_score = config.theta
        for candidate in touched:
            if candidate not in claimed_2:
                collected.append((candidate, side2_score, "R3"))
                claimed_2.add(candidate)

    # R4 reciprocity, per candidate: the candidate always retains
    # the query (the query is its entire candidate column), so only
    # the query -> candidate direction can fail -- the candidate
    # must sit in the query's pruned out-set.
    if config.use_reciprocity:
        out_q = {candidate for candidate, _ in value_list}
        if alpha is not None:
            out_q.add(alpha)
        collected = [item for item in collected if item[0] in out_q]

    if not collected:
        return None
    # Unique mapping over pairs sharing one query entity keeps
    # exactly the strongest proposal (rule priority, score, id).
    candidate, score, rule = min(
        collected, key=lambda item: (RULE_PRIORITY[item[2]], -item[1], item[0])
    )
    return int(candidate), rule, float(score)


@dataclass(frozen=True)
class MatchDecision:
    """The engine's answer for one query description.

    ``candidates`` counts the query's retained value candidates (its
    pruned ``beta`` out-degree), the same quantity on the single and
    batch paths.  ``cached`` and ``latency_ms`` describe *this* lookup
    and are excluded from equality, so a decision served from cache
    compares equal to the one that populated it.

    ``degraded`` marks a graceful-degradation answer: the query's
    deadline expired mid-pipeline and the engine fell back to name
    evidence alone (rule R1 or unmatched).  Degraded answers are
    *content*, not lookup metadata -- they participate in equality and
    never enter the cache.

    ``trace_id`` names this lookup within the engine's trace
    (``<engine trace id>-q<seq>``) and ``provenance`` carries the
    sampled audit record when the query was selected by
    ``config.provenance_sample_rate``.  Both describe the lookup, not
    the answer, so like ``cached``/``latency_ms`` they are excluded
    from equality.
    """

    query_uri: str
    kb2_id: int | None
    kb2_uri: str | None
    rule: str | None
    score: float | None
    candidates: int
    degraded: bool = False
    cached: bool = field(default=False, compare=False)
    latency_ms: float = field(default=0.0, compare=False)
    trace_id: str = field(default="", compare=False)
    provenance: ProvenanceRecord | None = field(default=None, compare=False)

    @property
    def matched(self) -> bool:
        """True iff the engine matched the query to an indexed entity."""
        return self.kb2_id is not None


class MatchEngine:
    """Online matcher over a frozen index; safe to share across threads.

    Parameters
    ----------
    index:
        The frozen target-KB structures.
    config:
        Overrides the config baked into the index.  Matching-rule and
        serving knobs take effect immediately; the KB2-side statistics
        knobs (``name_attributes_k``, ``relations_n``) are frozen into
        the index and only affect the query side.
    cache:
        An externally owned :class:`LRUCache` (e.g. shared between
        engines over the same index); by default the engine creates one
        sized ``config.serving_cache_size``.
    recorder:
        Observability sink for the engine's counters and latency/
        candidate histograms (``serving.*`` metrics); :meth:`stats` is
        a derived view over it.  ``None`` picks the ambient
        :func:`repro.obs.current_recorder` when a trace is active at
        construction time (so ``--trace`` runs fold serving metrics
        into the shared trace) and otherwise a private
        :class:`~repro.obs.Recorder`, keeping :meth:`stats` per-engine.
    """

    def __init__(
        self,
        index: ResolutionIndex,
        config: MinoanERConfig | None = None,
        cache: LRUCache | None = None,
        recorder: Recorder | None = None,
    ):
        self.index = index
        self.config = config or index.config
        #: Monotonic index generation: bumped by every live mutation and
        #: zero-drop swap (see :mod:`repro.serving.live`).  Cache keys
        #: carry it, so no answer computed against an older index state
        #: can ever be served after the state changes.
        self.generation = 0
        backend = resolve_backend_name(self.config.kernel_backend)
        if backend == "dict":
            # The dict reference has no array entry points; the python
            # kernels are bit-identical to it, so serving uses them.
            backend = "python"
        self._backend_name = backend
        self._impl = get_backend(backend)
        self._cut = (
            (self.config.pruning_gap_ratio, DEFAULT_ADAPTIVE_MINIMUM)
            if self.config.dynamic_pruning
            else None
        )
        self.cache = cache if cache is not None else LRUCache(self.config.serving_cache_size)
        # mmap-native batch path: with a mapped index the row kernels
        # consume posting slices zero-copy, so batches skip
        # materialising interned block copies (bit-identical results;
        # gated by the mmap equivalence suite).
        self._use_row_batch = bool((index.load_info or {}).get("mmap"))
        self._sampler = ProvenanceSampler(self.config.provenance_sample_rate)
        if recorder is not None:
            self.recorder = recorder
        else:
            ambient = current_recorder()
            self.recorder = ambient if ambient is not NULL_RECORDER else Recorder()
        if backend == "numpy":
            # The breaker guards the only backend with a cheaper
            # bit-identical stand-in; python/dict have nothing to fall
            # back to, so their kernel errors propagate as usual.
            self._fallback = get_backend("python")
            self.breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                reset_after_s=self.config.breaker_reset_s,
                recorder=self.recorder,
            )
        else:
            self._fallback = None
            self.breaker = None
        # Admission control (docs/resilience.md): a bounded pending-work
        # gauge plus per-source token-bucket quotas.  Both knobs default
        # off, so the engine only pays the context-manager when the
        # operator asked for overload protection.
        if self.config.serving_max_pending or self.config.serving_quota_qps:
            self.admission: AdmissionController | None = AdmissionController(
                max_pending=self.config.serving_max_pending or None,
                quota_qps=self.config.serving_quota_qps,
                quota_burst=self.config.serving_quota_burst,
                recorder=self.recorder,
            )
        else:
            self.admission = None

    @contextmanager
    def _admitted(self, source: str | None, cost: int) -> Iterator[None]:
        """Hold admission for ``cost`` queries; no-op when control is off.

        Raises :class:`~repro.resilience.admission.LoadShedError` before
        any resolution work happens -- the caller (``repro serve``)
        turns that into an explicit JSONL shed record.
        """
        if self.admission is None:
            yield
            return
        with self.admission.admit(source=source, cost=cost):
            yield

    # ------------------------------------------------------------------
    # Single-query path
    # ------------------------------------------------------------------
    def match(
        self, entity: EntityDescription, *, source: str | None = None
    ) -> MatchDecision:
        """Resolve one description against the index (batch-of-one).

        Consults the LRU cache first (content-fingerprint key); on a
        miss, runs the query-local pipeline and caches the outcome.
        With ``config.serving_deadline_ms`` set, a query that exhausts
        its budget mid-pipeline gets a degraded name-evidence-only
        answer (counted ``deadline.expired``; never cached).  ``source``
        labels the request for per-source admission quotas; with
        admission control configured, an over-limit query raises
        :class:`~repro.resilience.admission.LoadShedError` before any
        resolution work.
        """
        with self._admitted(source, 1):
            return self._match_one(entity)

    def _match_one(self, entity: EntityDescription) -> MatchDecision:
        """The single-query path, past admission (subclass override point)."""
        started = time.perf_counter()
        key = (self.generation, entity_fingerprint(entity))
        outcome = self.cache.get(key)
        hit = outcome is not None
        self.recorder.count("serving.cache.hits" if hit else "serving.cache.misses")
        degraded = False
        if not hit:
            deadline = self._query_deadline()
            try:
                inject("serve:match")
                outcome, degraded = self._lookup(entity, deadline)
            except DeadlineExpired:
                self.recorder.count("deadline.expired")
                self.recorder.count("serving.degraded")
                outcome = self._name_only_outcome(entity)
                degraded = True
            else:
                if degraded:
                    self.recorder.count("serving.degraded")
                else:
                    self.cache.put(key, outcome)
        kb2_id, rule, score, candidates, top = outcome
        latency_ms = (time.perf_counter() - started) * 1e3
        trace_id, provenance = self._provenance(
            entity.uri, rule, candidates, top, degraded=degraded, cached=hit
        )
        decision = MatchDecision(
            query_uri=entity.uri,
            kb2_id=kb2_id,
            kb2_uri=self.index.uris2[kb2_id] if kb2_id is not None else None,
            rule=rule,
            score=score,
            candidates=candidates,
            degraded=degraded,
            cached=hit,
            latency_ms=latency_ms,
            trace_id=trace_id,
            provenance=provenance,
        )
        self._record(1, latency_ms, [candidates], 1 if kb2_id is not None else 0)
        return decision

    def _provenance(
        self,
        query_uri: str,
        rule: str | None,
        candidates: int,
        top: tuple[tuple[int, float], ...],
        degraded: bool = False,
        cached: bool = False,
        batched: bool = False,
    ) -> tuple[str, ProvenanceRecord | None]:
        """Allocate this lookup's trace id; build its audit record when
        the deterministic sampler selects it (``serving.provenance_sampled``)."""
        seq, sampled = self._sampler.next()
        trace_id = f"{self.recorder.trace_id or 'serve'}-q{seq}"
        if not sampled:
            return trace_id, None
        self.recorder.count("serving.provenance_sampled")
        return trace_id, ProvenanceRecord(
            trace_id=trace_id,
            query_uri=query_uri,
            rule=rule,
            evidence=RULE_EVIDENCE.get(rule) if rule is not None else None,
            candidates=candidates,
            top_scores=top,
            degraded=degraded,
            cached=cached,
            batched=batched,
            generation=self.generation,
        )

    def _lookup(
        self, entity: EntityDescription, deadline: Deadline | None
    ) -> tuple[_Outcome, bool]:
        """Resolve one cache-missed query: ``(outcome, degraded)``.

        The shard router overrides this to scatter/gather; degraded
        outcomes (partial shard evidence) are never cached.
        """
        return self._resolve_single(entity, deadline), False

    def _query_deadline(self) -> Deadline | None:
        """A fresh per-lookup deadline, or None when none is configured."""
        budget_ms = self.config.serving_deadline_ms
        return Deadline.after_ms(budget_ms) if budget_ms is not None else None

    def _alpha_match(self, qstats: KBStatistics) -> int | None:
        """Name evidence for a lone query: the first singleton shared
        name in sorted order (the emit order of name_blocks +
        name_evidence)."""
        qnames = {
            name
            for name in (normalize_name(raw) for raw in qstats.names(0))
            if name
        }
        # Membership loop, not a set intersection: the index's name map
        # may be a memmapped view whose keys-view would decode the whole
        # table; probing the few query names costs O(log n) each.
        names2 = self.index.names
        for name in sorted(name for name in qnames if name in names2):
            ids2 = names2[name]
            if len(ids2) == 1:
                return ids2[0]
        return None

    def _name_only_outcome(self, entity: EntityDescription) -> _Outcome:
        """The degraded answer: rule R1 over name evidence, or nothing.

        Deliberately the cheapest sound answer the index supports -- one
        name lookup, no token scan, no kernels -- so it fits in whatever
        sliver of budget remains after a deadline expires.
        """
        if self.index.n2 == 0 or not self.config.use_name_rule:
            return None, None, None, 0, ()
        qkb = KnowledgeBase([entity], name="query", tokenizer=self.index.tokenizer)
        qstats = KBStatistics(
            qkb,
            top_k_name_attributes=self.config.name_attributes_k,
            top_n_relations=self.config.relations_n,
        )
        alpha = self._alpha_match(qstats)
        if alpha is None:
            return None, None, None, 0, ()
        return int(alpha), "R1", float("inf"), 0, ()

    def _resolve_single(
        self, entity: EntityDescription, deadline: Deadline | None = None
    ) -> _Outcome:
        """Query-local Algorithm 1 + rules R1-R4 for a batch of one.

        Returns ``(kb2 id, rule, score, retained candidates, top
        scores)`` -- the decision ``match_batch([entity])`` would
        produce plus the query's strongest value candidates for
        provenance -- computed in O(candidate set) instead of O(|KB2|).
        Raises :class:`DeadlineExpired` at the inter-step checkpoints
        when the optional ``deadline`` runs out.
        """
        index = self.index
        config = self.config
        if index.n2 == 0:
            return None, None, None, 0, ()

        qkb = KnowledgeBase([entity], name="query", tokenizer=index.tokenizer)
        qstats = KBStatistics(
            qkb,
            top_k_name_attributes=config.name_attributes_k,
            top_n_relations=config.relations_n,
        )
        if deadline is not None:
            deadline.check("name evidence")

        # Name evidence is computed even with R1 off: the alpha edge
        # still participates in R4 reciprocity, as in the batch graph.
        alpha = self._alpha_match(qstats)
        if deadline is not None:
            deadline.check("value evidence")

        # Value evidence over the query's shared-token blocks only.
        postings = index.postings
        shared = sorted(token for token in qkb.tokens(0) if token in postings)
        if config.purge_blocks and shared:
            threshold = config.max_block_comparisons
            if threshold is None:
                # One query entity: a token block suggests EF2(t)
                # comparisons against a Cartesian of 1 * n2.
                threshold = purging_threshold_from_counts(
                    (len(postings[token]) for token in shared),
                    cartesian=index.n2,
                    budget_ratio=config.purging_budget_ratio,
                )
            shared = [token for token in shared if len(postings[token]) <= threshold]

        # The weighted postings are materialised (not a generator): the
        # breaker may replay the args against the python fallback, and
        # the numpy backend consumes memmapped id slices zero-copy.
        singleton_weights = index.singleton_weights
        weighted = [(singleton_weights[token], postings[token]) for token in shared]
        ids, sums = self._run_kernel("accumulate_row", weighted)
        cap = config.serving_candidate_cap
        if cap is not None and len(ids) > cap:
            capped = self._run_kernel("select_row", ids, sums, cap, None)
            ids = [candidate for candidate, _ in capped]
            sums = [score for _, score in capped]
        value_list = self._run_kernel(
            "select_row", ids, sums, config.candidates_k, self._cut
        )
        if deadline is not None:
            deadline.check("matching rules")
        # gamma is inert for a lone query (no resolvable relations), so
        # the neighbor candidate lists of both sides are empty.

        top = _top_scores(value_list)
        matched = apply_single_rules(config, alpha, value_list, sorted(ids))
        if matched is None:
            return None, None, None, len(value_list), top
        candidate, rule, score = matched
        return candidate, rule, score, len(value_list), top

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def match_batch(
        self, entities: Iterable[EntityDescription], *, source: str | None = None
    ) -> list[MatchDecision]:
        """Resolve a batch of descriptions together, with shared context.

        The batch is treated as the query-side KB of Algorithm 1:
        relations between batch entities resolve, Entity Frequencies
        come from the batch, and neighbor evidence propagates inside
        it.  Decisions are returned in input order; entities the rules
        left unmatched get an unmatched decision.  Results bypass the
        cache (they are only valid within this batch context).

        With ``config.serving_deadline_ms`` set, the budget covers the
        whole batch; on expiry every batch entity gets a degraded
        name-evidence-only decision (batch context is lost, so the
        degraded answers are query-local).  With admission control
        configured, the whole batch is admitted at once (cost = batch
        size, charged to ``source``) or shed at once with
        :class:`~repro.resilience.admission.LoadShedError`.
        """
        batch = list(entities)
        if not batch:
            return []
        with self._admitted(source, len(batch)):
            return self._match_many(batch)

    def _match_many(self, batch: list[EntityDescription]) -> list[MatchDecision]:
        """The batch path, past admission (subclass override point)."""
        started = time.perf_counter()
        deadline = self._query_deadline()
        try:
            inject("serve:batch")
            qkb, qstats = self._batch_stats(batch)
            if deadline is not None:
                deadline.check("batch graph")
            graph = self._batch_graph(qkb, qstats)
            if deadline is not None:
                deadline.check("batch matching")
        except DeadlineExpired:
            self.recorder.count("deadline.expired")
            return self._degraded_batch(batch, started)
        return self._finish_batch(batch, graph, started)

    def _batch_stats(
        self, batch: list[EntityDescription]
    ) -> tuple[KnowledgeBase, KBStatistics]:
        """The batch as the query-side KB of Algorithm 1, profiled."""
        qkb = KnowledgeBase(
            batch, name="query-batch", tokenizer=self.index.tokenizer
        )
        qstats = KBStatistics(
            qkb,
            top_k_name_attributes=self.config.name_attributes_k,
            top_n_relations=self.config.relations_n,
        )
        return qkb, qstats

    def _finish_batch(
        self,
        batch: list[EntityDescription],
        graph: DisjunctiveBlockingGraph,
        started: float,
        degraded: bool = False,
    ) -> list[MatchDecision]:
        """Run the matcher over the assembled graph and shape decisions.

        ``degraded`` marks every decision as partial-evidence (the shard
        router sets it when a shard's contribution is missing).
        """
        index = self.index
        matching = NonIterativeMatcher(self.config).match(graph)
        if degraded:
            self.recorder.count("serving.degraded", len(batch))

        # Per query entity, the strongest surviving pair (under the
        # matcher's own conflict order; unique mapping already leaves at
        # most one).
        best_of: dict[int, tuple[tuple, int, str, float]] = {}
        for pair, rule in matching.rule_of.items():
            score = matching.scores[pair]
            eid1 = int(pair[0])
            order = (RULE_PRIORITY[rule], -score, pair)
            if eid1 not in best_of or order < best_of[eid1][0]:
                best_of[eid1] = (order, int(pair[1]), rule, float(score))

        latency_ms = (time.perf_counter() - started) * 1e3
        per_query_ms = latency_ms / len(batch)
        decisions: list[MatchDecision] = []
        candidate_counts: list[int] = []
        matched = 0
        for position, entity in enumerate(batch):
            value_list = graph.value_candidates(1, position)
            candidates = len(value_list)
            candidate_counts.append(candidates)
            if position in best_of:
                _, kb2_id, rule, score = best_of[position]
                matched += 1
            else:
                kb2_id = rule = score = None
            trace_id, provenance = self._provenance(
                entity.uri,
                rule,
                candidates,
                _top_scores(value_list),
                degraded=degraded,
                batched=True,
            )
            decisions.append(
                MatchDecision(
                    query_uri=entity.uri,
                    kb2_id=kb2_id,
                    kb2_uri=index.uris2[kb2_id] if kb2_id is not None else None,
                    rule=rule,
                    score=score,
                    candidates=candidates,
                    degraded=degraded,
                    latency_ms=per_query_ms,
                    trace_id=trace_id,
                    provenance=provenance,
                )
            )
        self._record(len(batch), latency_ms, candidate_counts, matched, batch=True)
        return decisions

    def _degraded_batch(
        self, batch: list[EntityDescription], started: float
    ) -> list[MatchDecision]:
        """Name-evidence-only decisions for a batch whose deadline expired."""
        self.recorder.count("serving.degraded", len(batch))
        latency_ms = (time.perf_counter() - started) * 1e3
        per_query_ms = latency_ms / len(batch)
        decisions: list[MatchDecision] = []
        matched = 0
        for entity in batch:
            kb2_id, rule, score, candidates, top = self._name_only_outcome(entity)
            if kb2_id is not None:
                matched += 1
            trace_id, provenance = self._provenance(
                entity.uri, rule, candidates, top, degraded=True, batched=True
            )
            decisions.append(
                MatchDecision(
                    query_uri=entity.uri,
                    kb2_id=kb2_id,
                    kb2_uri=self.index.uris2[kb2_id] if kb2_id is not None else None,
                    rule=rule,
                    score=score,
                    candidates=candidates,
                    degraded=True,
                    latency_ms=per_query_ms,
                    trace_id=trace_id,
                    provenance=provenance,
                )
            )
        self._record(len(batch), latency_ms, [0] * len(batch), matched, batch=True)
        return decisions

    def _run_kernel(self, method: str, *args):
        """One kernel call, routed through the circuit breaker when the
        numpy backend is guarded.

        Closed/half-open: attempt numpy (itself a ``kernel:numpy``
        injection site) and record the outcome; a failure is answered by
        the pure-python fallback (bit-identical, slower) and counted
        ``serving.kernel_fallback``.  Open: skip numpy entirely.
        """
        breaker = self.breaker
        if breaker is None:
            return getattr(self._impl, method)(*args)
        if breaker.allow():
            try:
                inject(f"kernel:{self._backend_name}")
                result = getattr(self._impl, method)(*args)
            except Exception:
                breaker.record_failure()
            else:
                breaker.record_success()
                return result
        self.recorder.count("serving.kernel_fallback")
        return getattr(self._fallback, method)(*args)

    def _batch_graph(
        self, qkb: KnowledgeBase, qstats: KBStatistics
    ) -> DisjunctiveBlockingGraph:
        """Algorithm 1 with the KB2 side read from the frozen index."""
        index = self.index
        config = self.config
        k = config.candidates_k
        cap = config.serving_candidate_cap
        if cap is None and self._use_row_batch:
            # mmap-native: accumulate each query row straight off the
            # mapped posting slices instead of materialising interned
            # block copies.  Bit-identical to the kernel path below.
            value_1, value_2 = self._row_value_topk(qkb, k)
        else:
            blocks = BlockCollection(kind="token")
            postings = index.postings
            # Probe the (few) query tokens against the index rather than
            # intersecting keys views: a memmapped postings table answers
            # membership by binary search without decoding its tokens.
            for token in sorted(t for t in qkb.token_index if t in postings):
                blocks.add(Block(token, qkb.token_index[token], postings[token]))
            if config.purge_blocks:
                blocks = purge_blocks(
                    blocks,
                    cartesian=len(qkb) * index.n2,
                    budget_ratio=config.purging_budget_ratio,
                    max_comparisons=config.max_block_comparisons,
                )

            interned = InternedBlocks.from_blocks(blocks, len(qkb), index.id_space)
            if cap is None:
                value_1, value_2 = self._run_kernel(
                    "value_topk", interned, k, self._cut
                )
            else:
                value_1, value_2 = self._capped_value_topk(interned, k, cap)
        return self._assemble_graph(qkb, qstats, value_1, value_2)

    def _assemble_graph(
        self,
        qkb: KnowledgeBase,
        qstats: KBStatistics,
        value_1: list[CandidateList],
        value_2: list[CandidateList],
    ) -> DisjunctiveBlockingGraph:
        """Name + neighbor evidence over computed value candidates.

        Factored out of :meth:`_batch_graph` because the shard router
        merges ``value_1``/``value_2`` from worker evidence and then
        needs exactly this remainder of the batch pipeline.
        """
        index = self.index
        config = self.config
        names_forward, names_reverse = self._batch_name_evidence(qstats)
        edges = retained_edge_arrays(value_1, value_2)
        neighbor_1, neighbor_2 = self._run_kernel(
            "gamma_topk",
            edges,
            qstats.in_neighbor_csr(),
            index.in_neighbors,
            config.candidates_k,
            self._cut,
        )
        return DisjunctiveBlockingGraph(
            n1=len(qkb),
            n2=index.id_space,
            name_matches_1=names_forward,
            name_matches_2=names_reverse,
            value_candidates_1=value_1,
            value_candidates_2=value_2,
            neighbor_candidates_1=neighbor_1,
            neighbor_candidates_2=neighbor_2,
        )

    def _retained_row_tokens(self, qkb: KnowledgeBase) -> list[str]:
        """The batch's shared tokens after purging, for the row path.

        Mirrors the block construction + :func:`purge_blocks` pass of
        :meth:`_batch_graph` exactly -- same sorted token order, same
        comparison counts, same threshold -- but via global Entity
        Frequencies, so it also holds on a per-shard index whose local
        postings under-count the blocks.
        """
        index = self.index
        config = self.config
        postings = index.postings
        token_index = qkb.token_index
        shared = sorted(t for t in token_index if t in postings)
        if not config.purge_blocks or not shared:
            return shared
        ef = index.global_entity_frequency
        threshold = config.max_block_comparisons
        if threshold is None:
            threshold = purging_threshold_from_counts(
                (len(token_index[t]) * ef(t) for t in shared),
                cartesian=len(qkb) * index.n2,
                budget_ratio=config.purging_budget_ratio,
            )
        return [t for t in shared if len(token_index[t]) * ef(t) <= threshold]

    def _value_rows(self, qkb: KnowledgeBase, tokens: Sequence[str]):
        """Yield each batch entity's ``beta`` row over ``tokens``.

        Weighted posting chunks are appended per entity in ascending
        token order -- the interned block visit order -- so the
        accumulated float sums are bit-identical to the batch kernels'.
        Weights use global Entity Frequencies (equal to local ones off
        a shard).
        """
        index = self.index
        postings = index.postings
        token_index = qkb.token_index
        ef = index.global_entity_frequency
        weighted: list[list[tuple[float, object]]] = [[] for _ in range(len(qkb))]
        for token in tokens:
            ids2 = postings[token]
            members = token_index[token]
            weight = block_weight(len(members) * ef(token))
            for eid in members:
                weighted[eid].append((weight, ids2))
        for per_entity in weighted:
            yield self._run_kernel("accumulate_row", per_entity)

    def _row_value_topk(
        self, qkb: KnowledgeBase, k: int
    ) -> tuple[list[CandidateList], list[CandidateList]]:
        """``value_topk`` computed row by row with the single-row kernels."""
        column_ids: list[list[int]] = [[] for _ in range(self.index.id_space)]
        column_sums: list[list[float]] = [[] for _ in range(self.index.id_space)]
        side1: list[CandidateList] = []
        for ids, sums in self._value_rows(qkb, self._retained_row_tokens(qkb)):
            side1.append(self._run_kernel("select_row", ids, sums, k, self._cut))
            entity = len(side1) - 1
            for candidate, value in zip(ids, sums):
                column_ids[candidate].append(entity)
                column_sums[candidate].append(value)
        side2 = [
            self._run_kernel("select_row", ids, sums, k, self._cut)
            for ids, sums in zip(column_ids, column_sums)
        ]
        return side1, side2

    def _batch_name_evidence(
        self, qstats: KBStatistics
    ) -> tuple[dict[int, int], dict[int, int]]:
        """``alpha = 1`` edges between the batch and the frozen name map,
        in the exact order of ``name_blocks`` + ``name_evidence``."""
        index1: dict[str, list[int]] = {}
        for eid in range(len(qstats.kb)):
            seen: set[str] = set()
            for raw in qstats.names(eid):
                name = normalize_name(raw)
                if name and name not in seen:
                    seen.add(name)
                    index1.setdefault(name, []).append(eid)
        forward: dict[int, int] = {}
        reverse: dict[int, int] = {}
        names2 = self.index.names
        for name in sorted(n for n in index1 if n in names2):
            ids1, ids2 = index1[name], names2[name]
            if len(ids1) == 1 and len(ids2) == 1:
                eid1, eid2 = ids1[0], ids2[0]
                if eid1 not in forward and eid2 not in reverse:
                    forward[eid1] = eid2
                    reverse[eid2] = eid1
        return forward, reverse

    def _capped_value_topk(
        self, interned: InternedBlocks, k: int, cap: int
    ) -> tuple[list[CandidateList], list[CandidateList]]:
        """``value_topk`` with each query row capped to its ``cap``
        strongest candidates before pruning and transposition.

        Uses the python backend's per-row representation regardless of
        the configured backend (the capped path is an opt-in
        latency/recall trade-off, not a batch-equivalence path).
        """
        from repro.kernels import python_backend

        column_ids: list[list[int]] = [[] for _ in range(interned.n2)]
        column_sums: list[list[float]] = [[] for _ in range(interned.n2)]
        side1: list[CandidateList] = []
        for ids, sums in python_backend.beta_sparse(interned):
            if len(ids) > cap:
                capped = select_row(ids, sums, cap)
                ids = [candidate for candidate, _ in capped]
                sums = [score for _, score in capped]
            side1.append(select_row(ids, sums, k, self._cut))
            entity = len(side1) - 1
            for candidate, value in zip(ids, sums):
                column_ids[candidate].append(entity)
                column_sums[candidate].append(value)
        side2 = [
            select_row(ids, sums, k, self._cut)
            for ids, sums in zip(column_ids, column_sums)
        ]
        return side1, side2

    # ------------------------------------------------------------------
    # Shard-worker evidence (see repro.sharding)
    # ------------------------------------------------------------------
    def value_tokens(
        self,
        entity: EntityDescription,
        qkb: KnowledgeBase | None = None,
    ) -> list[str]:
        """The purged, sorted shared-token list for one query entity.

        The query tokens that exist in the indexed KB, sorted, with
        stopword-like blocks purged by *global* Entity Frequency --
        exactly the list :meth:`match_evidence` derives for itself.
        Shard files carry the full token table and the global EFs, so
        every worker would derive the same list independently; the
        router therefore computes it once on the full index and ships
        it with the request (see :mod:`repro.sharding`).
        """
        index = self.index
        config = self.config
        if qkb is None:
            qkb = KnowledgeBase([entity], name="query", tokenizer=index.tokenizer)
        postings = index.postings
        ef = index.global_entity_frequency
        shared = sorted(token for token in qkb.tokens(0) if token in postings)
        if config.purge_blocks and shared:
            threshold = config.max_block_comparisons
            if threshold is None:
                threshold = purging_threshold_from_counts(
                    (ef(token) for token in shared),
                    cartesian=index.n2,
                    budget_ratio=config.purging_budget_ratio,
                )
            shared = [token for token in shared if ef(token) <= threshold]
        return shared

    def match_evidence(
        self,
        entity: EntityDescription | None,
        probe: int | None = None,
        deadline: Deadline | None = None,
        tokens: list[str] | None = None,
        exclude: Sequence[int] | None = None,
        weights: dict[str, float] | None = None,
    ) -> dict[str, object]:
        """This index's value evidence for one query, merge-ready.

        Runs the value half of :meth:`_resolve_single` -- with *global*
        Entity Frequencies, so per-shard weights and purging thresholds
        equal the unsharded ones -- and returns what the router's merge
        needs: the strongest ``(candidate, score)`` pairs in
        ``(-score, id)`` order (``serving_candidate_cap`` of them, else
        ``candidates_k``), the :data:`SWEEP_MARGIN` smallest touched
        ids, the touched count, and whether the router-supplied
        ``probe`` candidate (its alpha match) was touched.

        ``tokens`` short-circuits :meth:`value_tokens`: when the router
        ships the purged token list it computed once, the worker skips
        re-tokenising and re-purging the query (``entity`` may then be
        ``None``) -- the derived list is identical either way.

        ``exclude`` and ``weights`` carry the live-index overlay of a
        router whose base has pending edits (see
        :mod:`repro.serving.live`): ``exclude`` lists dead base ids to
        drop from every posting before accumulating, ``weights``
        overrides the hoisted singleton block weight of tokens whose
        *live* Entity Frequency differs from the frozen one.  Both
        default to no-ops, so the frozen-index path is untouched.
        """
        index = self.index
        config = self.config
        if index.n2 == 0:
            return {"row": [], "mins": [], "count": 0, "probe": False}
        if deadline is not None:
            deadline.check("value evidence")
        shared = self.value_tokens(entity) if tokens is None else tokens
        postings = index.postings
        singleton_weights = index.singleton_weights
        dead = set(exclude) if exclude else None
        weighted = []
        for token in shared:
            ids = postings[token]
            if dead is not None:
                kept = [candidate for candidate in ids if candidate not in dead]
                if len(kept) != len(ids):
                    ids = kept
            weight = singleton_weights[token]
            if weights is not None and token in weights:
                weight = float(weights[token])
            weighted.append((weight, ids))
        cap = config.serving_candidate_cap
        keep = cap if cap is not None else config.candidates_k
        row, mins, count, touched = self._run_kernel(
            "row_evidence", weighted, keep, SWEEP_MARGIN, probe
        )
        return {
            "row": [[int(candidate), float(score)] for candidate, score in row],
            "mins": [int(candidate) for candidate in mins],
            "count": int(count),
            "probe": bool(touched),
        }

    def batch_evidence(
        self,
        entities: Iterable[EntityDescription],
        deadline: Deadline | None = None,
    ) -> dict[str, object]:
        """This index's value evidence for a whole batch, merge-ready.

        Per batch entity, the strongest pairs of its ``beta`` row over
        this index (``serving_candidate_cap`` of them, else
        ``candidates_k``; *unpruned* -- the adaptive cut only applies to
        the globally merged row).  Without a cap the shard-final pruned
        candidate columns travel too: each KB2 entity's column lives
        wholly in its owner shard, so ``select_row(k, cut)`` here *is*
        the global column.
        """
        batch = list(entities)
        index = self.index
        config = self.config
        if not batch or index.n2 == 0:
            return {"rows": [[] for _ in batch], "cols": {}}
        qkb = KnowledgeBase(batch, name="query-batch", tokenizer=index.tokenizer)
        if deadline is not None:
            deadline.check("batch evidence")
        k = config.candidates_k
        cap = config.serving_candidate_cap
        keep = cap if cap is not None else k
        rows_out: list[list[list[object]]] = []
        columns: dict[int, tuple[list[int], list[float]]] = {}
        for entity, (ids, sums) in enumerate(
            self._value_rows(qkb, self._retained_row_tokens(qkb))
        ):
            top = self._run_kernel("select_row", ids, sums, keep, None)
            rows_out.append([[int(c), float(s)] for c, s in top])
            if cap is None:
                for candidate, value in zip(ids, sums):
                    column = columns.setdefault(int(candidate), ([], []))
                    column[0].append(entity)
                    column[1].append(float(value))
        cols: dict[str, list[list[object]]] = {}
        for candidate, (ents, values) in columns.items():
            ranked = self._run_kernel("select_row", ents, values, k, self._cut)
            cols[str(candidate)] = [[int(e), float(s)] for e, s in ranked]
        return {"rows": rows_out, "cols": cols}

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _record(
        self,
        queries: int,
        latency_ms: float,
        candidate_counts: Sequence[int],
        matched: int,
        batch: bool = False,
    ) -> None:
        """Record one lookup's metrics on :attr:`recorder`.

        One ``serving.latency_ms`` observation per call: the per-query
        latency (batch latency is attributed evenly to its queries).
        The recorder is thread-safe, so the engine needs no lock of its
        own.
        """
        recorder = self.recorder
        recorder.count("serving.queries", queries)
        if batch:
            recorder.count("serving.batches")
            recorder.count("serving.batch_queries", queries)
        if matched:
            recorder.count("serving.matched", matched)
        for count in candidate_counts:
            recorder.observe("serving.candidates", count)
        recorder.count("serving.latency_total_ms", latency_ms)
        recorder.observe("serving.latency_ms", latency_ms / (queries if batch else 1))

    def stats(self) -> dict[str, object]:
        """Snapshot of the engine's ``serving.*`` metrics plus the cache's.

        A derived view over :attr:`recorder`: counters and histogram
        snapshots are folded back into the flat dict shape this method
        has always returned.  Latency percentiles cover the histogram's
        bounded window of recent per-query latencies.
        """
        recorder = self.recorder
        queries = int(recorder.counter_value("serving.queries"))
        latency = recorder.histogram("serving.latency_ms")
        candidates = recorder.histogram("serving.candidates")
        latency_total = recorder.counter_value("serving.latency_total_ms")
        snapshot: dict[str, object] = {
            "queries": queries,
            "batches": int(recorder.counter_value("serving.batches")),
            "batch_queries": int(recorder.counter_value("serving.batch_queries")),
            "matched": int(recorder.counter_value("serving.matched")),
            "candidates_total": int(candidates.total),
            "candidates_max": int(candidates.maximum),
            "candidates_mean": candidates.total / queries if queries else 0.0,
            "latency_total_ms": latency_total,
            "latency_mean_ms": latency_total / queries if queries else 0.0,
            "latency_p50_ms": latency.p50,
            "latency_p95_ms": latency.p95,
            "degraded": int(recorder.counter_value("serving.degraded")),
            "deadline_expired": int(recorder.counter_value("deadline.expired")),
            "kernel_fallback": int(recorder.counter_value("serving.kernel_fallback")),
            "request_errors": int(recorder.counter_value("serving.request_errors")),
            "query_errors": int(recorder.counter_value("serving.query_errors")),
        }
        if self.breaker is not None:
            snapshot["breaker"] = {
                "state": self.breaker.state,
                "trips": self.breaker.trips,
            }
        if self.admission is not None:
            snapshot["admission"] = self.admission.stats()
        snapshot["cache"] = self.cache.stats()
        return snapshot

    def __repr__(self) -> str:
        return (
            f"MatchEngine(index={self.index.kb_name!r}, n2={self.index.n2}, "
            f"queries={int(self.recorder.counter_value('serving.queries'))})"
        )
