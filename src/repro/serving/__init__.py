"""Online query-time resolution over a frozen KB index.

The batch pipeline (:mod:`repro.core.pipeline`) answers "match these two
KBs"; this package answers "match *this entity, now*" without paying the
batch cost per query:

* :class:`~repro.serving.index.ResolutionIndex` freezes everything
  Algorithm 1 needs about the target KB -- build once (or
  :meth:`~repro.serving.index.ResolutionIndex.load` from disk), serve
  many;
* :class:`~repro.serving.engine.MatchEngine` answers single queries in
  O(candidate set) and batches with full batch-side context, backed by
  a thread-safe content-addressed
  :class:`~repro.serving.cache.LRUCache`;
* :mod:`repro.serving.io` defines the JSONL wire format of the
  ``python -m repro serve`` subcommand.

Serving the whole of KB1 through
:meth:`~repro.serving.engine.MatchEngine.match_batch` reproduces the
batch pipeline's match set exactly (tested in
``tests/serving/test_equivalence.py``).
"""

from repro.serving.cache import LRUCache, entity_fingerprint
from repro.serving.engine import MatchDecision, MatchEngine
from repro.serving.index import ResolutionIndex
from repro.serving.io import RequestError, iter_requests, read_requests

__all__ = [
    "LRUCache",
    "MatchDecision",
    "MatchEngine",
    "RequestError",
    "ResolutionIndex",
    "entity_fingerprint",
    "iter_requests",
    "read_requests",
]
