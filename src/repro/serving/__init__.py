"""Online query-time resolution over a frozen KB index.

The batch pipeline (:mod:`repro.core.pipeline`) answers "match these two
KBs"; this package answers "match *this entity, now*" without paying the
batch cost per query:

* :class:`~repro.serving.index.ResolutionIndex` freezes everything
  Algorithm 1 needs about the target KB -- build once (or
  :meth:`~repro.serving.index.ResolutionIndex.load` from disk), serve
  many;
* :class:`~repro.serving.engine.MatchEngine` answers single queries in
  O(candidate set) and batches with full batch-side context, backed by
  a thread-safe content-addressed
  :class:`~repro.serving.cache.LRUCache`;
* :mod:`repro.serving.io` defines the JSONL wire format of the
  ``python -m repro serve`` subcommand;
* :mod:`repro.serving.live` makes the frozen index *mutable* without
  giving up its guarantees: an append-only
  :class:`~repro.serving.live.UpsertLedger`, an LSM-style in-memory
  delta segment overlaid by :class:`~repro.serving.live.LiveIndex`,
  and :class:`~repro.serving.live.LiveEngine`, whose decisions stay
  bit-identical to a full rebuild of the same entities and whose
  compaction/reload swaps never drop an in-flight query (see
  ``docs/live_index.md``).

Serving the whole of KB1 through
:meth:`~repro.serving.engine.MatchEngine.match_batch` reproduces the
batch pipeline's match set exactly (tested in
``tests/serving/test_equivalence.py``).
"""

from repro.serving.cache import LRUCache, entity_fingerprint
from repro.serving.engine import MatchDecision, MatchEngine
from repro.serving.index import ResolutionIndex
from repro.serving.io import ControlRequest, RequestError, iter_requests, read_requests
from repro.serving.live import (
    IndexHandle,
    LedgerError,
    LiveEngine,
    LiveIndex,
    LiveServingMixin,
    UpsertLedger,
)

__all__ = [
    "ControlRequest",
    "IndexHandle",
    "LRUCache",
    "LedgerError",
    "LiveEngine",
    "LiveIndex",
    "LiveServingMixin",
    "MatchDecision",
    "MatchEngine",
    "RequestError",
    "ResolutionIndex",
    "UpsertLedger",
    "entity_fingerprint",
    "iter_requests",
    "read_requests",
]
