"""JSONL wire format of the serving engine (see ``docs/serving.md``).

Requests (one JSON object per line)::

    {"uri": "q1", "pairs": [["label", "fat duck bray"], ["year", 1995]]}
    {"uri": "q2", "attributes": {"label": "eltham palace", "city": ["london"]}}

Either ``pairs`` (a list of ``[attribute, value]`` pairs, RDF-style
multi-valued) or ``attributes`` (a mapping of attribute to value or list
of values) describes the entity.  Values may be any JSON scalar --
strings, numbers, booleans -- and are coerced to strings at parse time;
nested objects and arrays are rejected with the offending line number.
``uri`` is optional and defaults to ``query-N`` where ``N`` is the
request's position among the *accepted* requests (blank lines do not
consume a position).

Responses (one JSON object per request line, in request order)::

    {"query": "q1", "match": "http://kb2/r17", "rule": "R1",
     "score": null, "candidates": 12, "cached": false, "latency_ms": 0.41}

``match`` is null when no rule matched the query.  ``score`` is the
producing rule's score; rule R1's score is by definition ``+inf`` and
serialises as null (JSON has no Infinity).  Any *other* non-finite
score is an engine invariant violation and raises instead of being
masked as null.  ``degraded`` is true when the answer is a
deadline-degraded name-evidence-only decision (see
``docs/resilience.md``).  Every response carries a ``trace_id`` naming
the lookup within the engine's trace; when provenance sampling is on
(``MinoanERConfig.provenance_sample_rate`` / ``--provenance``) a
sampled response additionally carries a ``provenance`` object with the
decision's audit record (see ``docs/serving.md``).

Error records: the lenient reader (:func:`iter_requests`, used by the
``serve`` subcommand) never aborts the stream on one bad line -- it
yields a :class:`RequestError` carrying the raw line number, which the
server writes back as::

    {"error": "bad request on line 3: ...", "line": 3}

Blank lines are still silently skipped (they are separators, not
errors); malformed JSON, nested/null/non-finite values (``NaN`` and
``Infinity`` literals parse as floats but cannot tokenize), and
oversized lines (> :data:`MAX_REQUEST_LINE_BYTES`) become error
records.  The strict :func:`read_requests` (batch tooling) raises on
the first error instead.

Overload records: a request line may carry an optional ``"source"``
string labelling its traffic source; with admission control configured
(``--max-pending`` / ``--quota-qps``, see ``docs/resilience.md``) an
over-limit request is *shed* -- answered in stream order with an
explicit error record instead of a decision, never silently dropped::

    {"error": "source 'tenant-a' over quota (100.0/s)", "shed": true,
     "reason": "quota", "query": "q7", "line": 12}
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, TextIO

from repro.kb.entity import EntityDescription
from repro.resilience.faults import inject
from repro.serving.engine import MatchDecision

_SCALARS = (str, int, float, bool)

MAX_REQUEST_LINE_BYTES = 1_000_000
"""Default per-line size guard of :func:`iter_requests`: a request line
whose UTF-8 encoding (line terminator excluded) is longer than this in
*bytes* is rejected without being parsed, so one runaway producer
cannot balloon the server's memory."""


CONTROL_OPS = frozenset({"upsert", "delete", "compact", "reload"})
"""In-band control operations the live serving loop understands."""


@dataclass(frozen=True)
class ControlRequest:
    """One in-band control record of a live serving stream.

    A request line shaped ``{"control": "upsert", "entity": {...}}``
    (or ``delete``/``compact``/``reload``) mutates the live index
    instead of querying it (see ``docs/live_index.md``).  Control
    records do not consume an accepted-query position, so positional
    ``query-N`` URIs stay contiguous around them.

    ``entity`` is set for ``upsert`` (the full description), ``uri``
    for ``delete``; ``path`` optionally names the index file for
    ``compact``/``reload``.
    """

    op: str
    line: int
    entity: EntityDescription | None = None
    uri: str | None = None
    path: str | None = None


def control_from_json(payload: dict[str, Any], line: int) -> ControlRequest:
    """Parse one ``{"control": ...}`` record (``ValueError`` on bad shape)."""
    op = payload["control"]
    if op not in CONTROL_OPS:
        raise ValueError(
            f"unknown control operation {op!r}; expected one of "
            f"{sorted(CONTROL_OPS)}"
        )
    if op == "upsert":
        if "entity" not in payload:
            raise ValueError("control 'upsert' needs an 'entity' object")
        entity = entity_from_json(payload["entity"], default_uri="")
        if not entity.uri:
            raise ValueError("control 'upsert' entity needs a non-empty 'uri'")
        return ControlRequest(op, line, entity=entity)
    if op == "delete":
        uri = payload.get("uri")
        if not isinstance(uri, str) or not uri:
            raise ValueError("control 'delete' needs a non-empty string 'uri'")
        return ControlRequest(op, line, uri=uri)
    path = payload.get("path")
    if path is not None and not isinstance(path, str):
        raise ValueError(f"control {op!r} 'path' must be a string, got {path!r}")
    return ControlRequest(op, line, path=path)


@dataclass(frozen=True)
class QueryRequest:
    """One accepted query line with its wire envelope, from
    :func:`iter_requests` in ``envelopes=True`` mode.

    ``source`` is the optional ``"source"`` key of the request line --
    a free-form traffic label (tenant, pipeline, client) that admission
    control charges per-source quotas against (``docs/resilience.md``).
    The entity itself never carries it: descriptions are content, the
    envelope is routing.
    """

    entity: EntityDescription
    line: int
    source: str | None = None


@dataclass(frozen=True)
class RequestError:
    """One rejected request line of a lenient :func:`iter_requests` scan.

    ``line`` is the raw 1-based line number (blank lines included, for
    editor navigation); ``error`` is the human-readable reason.
    """

    line: int
    error: str

    def to_json(self) -> dict[str, Any]:
        """The JSONL error record the server emits for this line."""
        return {"error": self.error, "line": self.line}


def _coerce_scalar(value: Any, role: str) -> str:
    """``value`` as a string, or ``ValueError`` for null, nested
    structures, and non-finite numbers (the tokenizer only understands
    flat finite scalars)."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return json.dumps(value)
    if isinstance(value, (int, float)):
        # json.loads accepts the non-standard NaN/Infinity literals and
        # hands back non-finite floats; they have no token form.
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"{role} must be finite, got {value!r}")
        return str(value)
    raise ValueError(
        f"{role} must be a JSON scalar (string, number, or boolean), "
        f"got {value!r}"
    )


def entity_from_json(payload: dict[str, Any], default_uri: str) -> EntityDescription:
    """Build an :class:`~repro.kb.entity.EntityDescription` from one
    decoded request object.

    Scalar attribute names and values are coerced to strings (so
    ``["year", 1995]`` and ``{"year": 1995}`` both tokenize as
    ``"1995"``); nested objects/arrays and nulls raise ``ValueError``.

    >>> entity_from_json({"pairs": [["label", "Bray"]]}, "query-0").uri
    'query-0'
    >>> entity_from_json({"uri": "q", "attributes": {"a": ["1", 2]}}, "-").pairs
    (('a', '1'), ('a', '2'))
    """
    if not isinstance(payload, dict):
        raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
    uri = payload.get("uri", default_uri)
    if "pairs" in payload:
        raw_pairs = payload["pairs"]
        pairs = []
        for item in raw_pairs:
            if not isinstance(item, (list, tuple)) or len(item) != 2:
                raise ValueError(f"each pair must be [attribute, value], got {item!r}")
            pairs.append(
                (
                    _coerce_scalar(item[0], "pair attribute"),
                    _coerce_scalar(item[1], "pair value"),
                )
            )
        return EntityDescription(uri, pairs)
    if "attributes" in payload:
        mapping = payload["attributes"]
        if not isinstance(mapping, dict):
            raise ValueError(
                f"'attributes' must be an object, got {type(mapping).__name__}"
            )
        pairs = []
        for attribute, value in mapping.items():
            if isinstance(value, list):
                pairs.extend(
                    (attribute, _coerce_scalar(v, f"value of {attribute!r}"))
                    for v in value
                )
            else:
                pairs.append(
                    (attribute, _coerce_scalar(value, f"value of {attribute!r}"))
                )
        return EntityDescription(uri, pairs)
    raise ValueError("request needs a 'pairs' list or an 'attributes' object")


def entity_to_json(entity: EntityDescription) -> dict[str, Any]:
    """The request object that round-trips through :func:`entity_from_json`."""
    return {"uri": entity.uri, "pairs": [list(pair) for pair in entity.pairs]}


def decision_to_json(decision: MatchDecision) -> dict[str, Any]:
    """Serialise a decision to the response object.

    Rule R1's score is ``+inf`` by definition and becomes null (JSON
    has no Infinity); any other non-finite score (``-inf`` sentinels,
    NaN) indicates an engine bug and raises ``ValueError`` instead of
    being silently masked.  Ids are coerced to built-in ``int`` (the
    numpy backend may hand back ``numpy.int64``).
    """
    score = decision.score
    if score is not None and not math.isfinite(score):
        if decision.rule == "R1" and score == math.inf:
            score = None
        else:
            raise ValueError(
                f"non-finite score {score!r} from rule {decision.rule!r} for "
                f"query {decision.query_uri!r} cannot be serialised; only "
                f"rule R1 produces an infinite (+inf) score by design"
            )
    payload = {
        "query": decision.query_uri,
        "match": decision.kb2_uri,
        "match_id": int(decision.kb2_id) if decision.kb2_id is not None else None,
        "rule": decision.rule,
        "score": float(score) if score is not None else None,
        "candidates": int(decision.candidates),
        "degraded": decision.degraded,
        "cached": decision.cached,
        "latency_ms": round(decision.latency_ms, 3),
        "trace_id": decision.trace_id or None,
    }
    if decision.provenance is not None:
        payload["provenance"] = decision.provenance.to_json()
    return payload


def iter_requests(
    stream: TextIO,
    max_line_bytes: int = MAX_REQUEST_LINE_BYTES,
    recorder=None,
    envelopes: bool = False,
) -> Iterator[EntityDescription | QueryRequest | ControlRequest | RequestError]:
    """Lenient JSONL scan: one item per non-blank line, errors included.

    Well-formed requests come out as
    :class:`~repro.kb.entity.EntityDescription`; lines carrying a
    ``"control"`` key come out as :class:`ControlRequest` (live-index
    mutations, see ``docs/live_index.md``); malformed, oversized, and
    fault-injected (``io:read_requests``) lines come out as
    :class:`RequestError` and the scan *continues*, so one garbage
    producer cannot take down the stream.  Blank lines are separators
    and yield nothing.

    With ``envelopes=True`` (the server's mode) accepted queries come
    out as :class:`QueryRequest` instead, carrying the line's optional
    ``"source"`` traffic label for per-source admission quotas; plain
    mode ignores the key, so the wire format is one and the same.

    Default URIs are positional over *accepted* requests: the N-th
    non-blank, well-formed request without a ``uri`` gets ``query-N``
    (1-based), so identifiers stay contiguous regardless of blank and
    rejected lines.  Every rejection is counted
    ``serving.request_errors`` on ``recorder`` (default: the ambient
    one; the server passes its engine's so :meth:`MatchEngine.stats`
    sees the count either way).
    """
    if recorder is None:
        from repro.obs import current_recorder

        recorder = current_recorder()
    accepted = 0
    for number, line in enumerate(stream, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            inject("io:read_requests")
            # Measure actual UTF-8 bytes, excluding the line terminator:
            # ``len(line)`` counts characters, which understates a
            # multi-byte payload by up to 4x against the byte budget.
            line_bytes = len(line.rstrip("\r\n").encode("utf-8"))
            if line_bytes > max_line_bytes:
                raise ValueError(
                    f"request line exceeds {max_line_bytes} bytes "
                    f"({line_bytes} bytes)"
                )
            payload = json.loads(stripped)
            if isinstance(payload, dict) and "control" in payload:
                yield control_from_json(payload, number)
                continue
            source = None
            if envelopes and isinstance(payload, dict):
                source = payload.get("source")
                if source is not None and not isinstance(source, str):
                    raise ValueError(
                        f"'source' must be a string, got {source!r}"
                    )
            entity = entity_from_json(payload, default_uri=f"query-{accepted + 1}")
        except (json.JSONDecodeError, ValueError, RuntimeError) as error:
            recorder.count("serving.request_errors")
            yield RequestError(number, f"bad request on line {number}: {error}")
            continue
        accepted += 1
        if envelopes:
            yield QueryRequest(entity, number, source=source)
        else:
            yield entity


def read_requests(stream: TextIO) -> Iterator[EntityDescription]:
    """Strict JSONL parse: the lenient scan with errors promoted to
    ``ValueError`` (raised on the first bad line, naming it).
    """
    for item in iter_requests(stream):
        if isinstance(item, RequestError):
            raise ValueError(item.error)
        if isinstance(item, ControlRequest):
            raise ValueError(
                f"control record on line {item.line}: batch tooling reads "
                f"plain query streams (control ops are for 'serve')"
            )
        yield item


def write_decisions(decisions: Iterable[MatchDecision], stream: TextIO) -> None:
    """Write one response line per decision, flushing after each batch."""
    for decision in decisions:
        stream.write(json.dumps(decision_to_json(decision)) + "\n")
    stream.flush()
