"""JSONL wire format of the serving engine (see ``docs/serving.md``).

Requests (one JSON object per line)::

    {"uri": "q1", "pairs": [["label", "fat duck bray"], ["year", "1995"]]}
    {"uri": "q2", "attributes": {"label": "eltham palace", "city": ["london"]}}

Either ``pairs`` (a list of ``[attribute, value]`` pairs, RDF-style
multi-valued) or ``attributes`` (a mapping of attribute to value or list
of values) describes the entity; ``uri`` is optional and defaults to a
positional identifier.

Responses (one JSON object per request line, in request order)::

    {"query": "q1", "match": "http://kb2/r17", "rule": "R1",
     "score": null, "candidates": 12, "cached": false, "latency_ms": 0.41}

``match`` is null when no rule matched the query.  ``score`` is the
producing rule's score; rule R1's score is infinite and serialises as
null (JSON has no Infinity).
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Iterator, TextIO

from repro.kb.entity import EntityDescription
from repro.serving.engine import MatchDecision


def entity_from_json(payload: dict[str, Any], default_uri: str) -> EntityDescription:
    """Build an :class:`~repro.kb.entity.EntityDescription` from one
    decoded request object.

    >>> entity_from_json({"pairs": [["label", "Bray"]]}, "query-0").uri
    'query-0'
    >>> entity_from_json({"uri": "q", "attributes": {"a": ["1", "2"]}}, "-").pairs
    (('a', '1'), ('a', '2'))
    """
    if not isinstance(payload, dict):
        raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
    uri = payload.get("uri", default_uri)
    if "pairs" in payload:
        raw_pairs = payload["pairs"]
        pairs = []
        for item in raw_pairs:
            if not isinstance(item, (list, tuple)) or len(item) != 2:
                raise ValueError(f"each pair must be [attribute, value], got {item!r}")
            pairs.append((item[0], item[1]))
        return EntityDescription(uri, pairs)
    if "attributes" in payload:
        mapping = payload["attributes"]
        if not isinstance(mapping, dict):
            raise ValueError(
                f"'attributes' must be an object, got {type(mapping).__name__}"
            )
        return EntityDescription.from_mapping(uri, mapping)
    raise ValueError("request needs a 'pairs' list or an 'attributes' object")


def entity_to_json(entity: EntityDescription) -> dict[str, Any]:
    """The request object that round-trips through :func:`entity_from_json`."""
    return {"uri": entity.uri, "pairs": [list(pair) for pair in entity.pairs]}


def decision_to_json(decision: MatchDecision) -> dict[str, Any]:
    """Serialise a decision to the response object.

    Infinite scores (rule R1) become null; ids are coerced to built-in
    ``int`` (the numpy backend may hand back ``numpy.int64``).
    """
    score = decision.score
    if score is not None and not math.isfinite(score):
        score = None
    return {
        "query": decision.query_uri,
        "match": decision.kb2_uri,
        "match_id": int(decision.kb2_id) if decision.kb2_id is not None else None,
        "rule": decision.rule,
        "score": float(score) if score is not None else None,
        "candidates": int(decision.candidates),
        "cached": decision.cached,
        "latency_ms": round(decision.latency_ms, 3),
    }


def read_requests(stream: TextIO) -> Iterator[EntityDescription]:
    """Parse a JSONL request stream, skipping blank lines.

    Malformed lines raise ``ValueError`` naming the line number.
    """
    for number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            yield entity_from_json(payload, default_uri=f"query-{number}")
        except (json.JSONDecodeError, ValueError) as error:
            raise ValueError(f"bad request on line {number}: {error}") from error


def write_decisions(decisions: Iterable[MatchDecision], stream: TextIO) -> None:
    """Write one response line per decision, flushing after each batch."""
    for decision in decisions:
        stream.write(json.dumps(decision_to_json(decision)) + "\n")
    stream.flush()
