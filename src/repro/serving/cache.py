"""Thread-safe LRU result cache for the serving engine.

Single-query decisions depend only on the query's *content* (its
attribute-value pairs) and the frozen index, never on the query URI, so
the cache is keyed by a content fingerprint: two descriptions with
identical pairs share one cache entry regardless of URI.  Batch
decisions are never cached -- they depend on the whole batch context.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.kb.entity import EntityDescription

_MISSING = object()


def entity_fingerprint(entity: EntityDescription) -> str:
    """Content fingerprint of a description (URI excluded).

    ``EntityDescription.pairs`` is already deduplicated and sorted, so
    the fingerprint is canonical: descriptions equal up to URI and pair
    order fingerprint identically.

    >>> a = EntityDescription("x", [("label", "Bray")])
    >>> b = EntityDescription("y", [("label", "Bray")])
    >>> entity_fingerprint(a) == entity_fingerprint(b)
    True
    """
    digest = hashlib.blake2b(digest_size=16)
    for attribute, value in entity.pairs:
        # Length-prefix each field: separator bytes alone are ambiguous
        # (("a\x1eb", "c") and ("a", "b\x1ec") would collide), and a
        # collision here serves the wrong cached decision.
        for field in (attribute, value):
            data = field.encode("utf-8")
            digest.update(len(data).to_bytes(8, "big"))
            digest.update(data)
    return digest.hexdigest()


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss counters.

    All operations take the internal lock, so one instance can be
    shared by every thread of a serving process.  ``capacity = 0``
    disables storage (every ``get`` is a miss, ``put`` is a no-op)
    while keeping the counters meaningful.

    >>> cache = LRUCache(2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> cache.get("a") is None  # evicted: least recently used
    True
    >>> cache.get("c")
    3
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` (refreshing its recency), or
        ``default``; counts a hit or a miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the least recently used
        entry when over capacity."""
        with self._lock:
            if self.capacity > 0:
                if key in self._entries:
                    self._entries.move_to_end(key)
                self._entries[key] = value
            # ``capacity`` is a mutable public attribute: after a shrink,
            # a put that merely refreshes an existing key (or is dropped
            # by a zero capacity) still has to drain the excess, so
            # evict until back under the bound.
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership without touching recency or counters."""
        with self._lock:
            return key in self._entries

    def keys(self) -> list[Hashable]:
        """Keys in eviction order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict[str, int | float]:
        """Snapshot of size and counters (consistent under the lock)."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"LRUCache(size={stats['size']}/{stats['capacity']}, "
            f"hits={stats['hits']}, misses={stats['misses']}, "
            f"evictions={stats['evictions']})"
        )
