"""The columnar on-disk format of :class:`ResolutionIndex` (version 2).

Version 1 persisted the index as one pickle: load time and resident
memory scaled linearly with index size, and nothing could be shared
between processes serving the same index.  Version 2 is a versioned
columnar container designed for ``numpy.memmap``:

::

    MINOANER-INDEX\\x00           15-byte magic
    version                      1 byte (2)
    header length                uint32, little-endian
    header                       UTF-8 JSON (config, tokenizer spec,
                                 counts, section table)
    padding                      zero bytes up to a 64-byte boundary
    sections                     raw little-endian arrays, each aligned
                                 to 64 bytes relative to the payload base

The header carries only O(1) metadata; every O(index)-sized structure
lives in a raw array section:

========================  =====  =========================================
section                   dtype  contents
========================  =====  =========================================
``token_blob``            u1     UTF-8 bytes of all tokens, sorted
``token_offsets``         i4     token -> blob slice (``n_tokens + 1``)
``posting_offsets``       i4     token -> postings slice (``n_tokens + 1``)
``posting_ids``           i4     CSR-flattened ascending KB2 entity ids
``token_weights``         f8     hoisted ``1/log2(EF2+1)`` per token
``name_blob``             u1     UTF-8 bytes of all normalised names, sorted
``name_offsets``          i4     name -> blob slice (``n_names + 1``)
``name_id_offsets``       i4     name -> id slice (``n_names + 1``)
``name_ids``              i4     CSR-flattened entity ids per name
``uri_blob``              u1     UTF-8 bytes of all entity URIs, by id
``uri_offsets``           i4     entity id -> blob slice (``n2 + 1``)
``neighbor_offsets``      i4     top in-neighbor CSR offsets (``n2 + 1``)
``neighbor_ids``          i4     top in-neighbor CSR ids
``token_global_ef``       i4     *optional*: global ``EF2(t)`` per token
========================  =====  =========================================

The ``token_global_ef`` section and the ``shards`` header key exist only
in per-shard files written by :class:`repro.sharding.ShardPlanner`: a
shard keeps the full (global) token table but only its own entities'
posting slices, so the global Entity Frequency of every token -- which
drives block weights and purging thresholds -- must travel with the
file.  Readers that predate sharding ignore both (the header parser
tolerates unknown sections), and files without them encode byte-for-byte
exactly as before.

Tokens and names are sorted by their UTF-8 byte sequences (identical to
Python's code-point string order), so a lookup is one binary search over
the offset table -- no hash map is ever materialised.  Because sections
are plain little-endian buffers, ``load(mmap=True)`` maps the file once
and hands out zero-copy views: load time is O(1) in index size and all
processes mapping one file share its read-only pages through the page
cache.  The format contains no executable payload -- decoding touches
only ``json.loads``, integer arrays and UTF-8 -- unlike the legacy
pickle, which could execute arbitrary code on load.

:func:`encode_index` is deterministic (sorted keys, zero padding,
canonical JSON), so ``save -> load -> save`` reproduces a file byte for
byte; the round-trip test gates on it.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import Any, Iterator, Mapping, Sequence

from repro.core.config import MinoanERConfig, config_from_dict, config_to_dict
from repro.kb.tokenizer import Tokenizer
from repro.kernels import CSRAdjacency

MAGIC = b"MINOANER-INDEX\x00"
FORMAT_VERSION = 2
LEGACY_FORMAT_VERSION = 1
ALIGNMENT = 64

_HEADER_LEN_STRUCT = struct.Struct("<I")
_PREFIX_LEN = len(MAGIC) + 1 + _HEADER_LEN_STRUCT.size
_INT32_MAX = 2**31 - 1

_DTYPE_ITEMSIZE = {"u1": 1, "i4": 4, "f8": 8}
_DTYPE_TYPECODE = {"i4": "i", "f8": "d"}

_SECTION_NAMES = (
    "token_blob",
    "token_offsets",
    "posting_offsets",
    "posting_ids",
    "token_weights",
    "name_blob",
    "name_offsets",
    "name_id_offsets",
    "name_ids",
    "uri_blob",
    "uri_offsets",
    "neighbor_offsets",
    "neighbor_ids",
)

assert array("i").itemsize == 4 and array("d").itemsize == 8


def _le_bytes(arr: array) -> bytes:
    """The array's raw bytes in little-endian order."""
    if sys.byteorder == "big":
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _blob_and_offsets(strings: Sequence[str]) -> tuple[bytes, array]:
    """Concatenated UTF-8 blob + (len + 1) int32 slice offsets."""
    offsets = array("i", [0])
    parts: list[bytes] = []
    total = 0
    for text in strings:
        encoded = text.encode("utf-8")
        parts.append(encoded)
        total += len(encoded)
        offsets.append(total)
    if total > _INT32_MAX:
        raise ValueError(f"string blob of {total} bytes overflows int32 offsets")
    return b"".join(parts), offsets


def _csr_ids(groups: Sequence[Sequence[int]]) -> tuple[array, array]:
    """Flattened int32 ids + (len + 1) int32 offsets of id groups."""
    offsets = array("i", [0])
    ids = array("i")
    for group in groups:
        for eid in group:
            ids.append(int(eid))
        if len(ids) > _INT32_MAX:
            raise ValueError(f"{len(ids)} CSR entries overflow int32 offsets")
        offsets.append(len(ids))
    return ids, offsets


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def encode_index(fields: Mapping[str, Any]) -> bytes:
    """Serialise the persisted fields of a :class:`ResolutionIndex`.

    ``fields`` holds the same keys the legacy pickle persisted
    (``repro.serving.index._PERSISTED_FIELDS``); mapping values may be
    plain dicts or the mapped read-only views, so re-saving a loaded
    index (eager or memmapped) works identically.
    """
    postings = fields["postings"]
    weights = fields["singleton_weights"]
    names = fields["names"]
    uris: Sequence[str] = fields["uris2"]
    adjacency: CSRAdjacency = fields["in_neighbors"]
    tokenizer: Tokenizer = fields["tokenizer"]

    tokens = sorted(postings)
    token_blob, token_offsets = _blob_and_offsets(tokens)
    posting_ids, posting_offsets = _csr_ids([postings[t] for t in tokens])
    token_weights = array("d", (weights[t] for t in tokens))

    sorted_names = sorted(names)
    name_blob, name_offsets = _blob_and_offsets(sorted_names)
    name_ids, name_id_offsets = _csr_ids([names[n] for n in sorted_names])

    uri_blob, uri_offsets = _blob_and_offsets(uris)
    neighbor_offsets = array("i", (int(v) for v in adjacency.offsets))
    neighbor_ids = array("i", (int(v) for v in adjacency.ids))

    raw: dict[str, tuple[str, bytes, int]] = {
        "token_blob": ("u1", token_blob, len(token_blob)),
        "token_offsets": ("i4", _le_bytes(token_offsets), len(token_offsets)),
        "posting_offsets": ("i4", _le_bytes(posting_offsets), len(posting_offsets)),
        "posting_ids": ("i4", _le_bytes(posting_ids), len(posting_ids)),
        "token_weights": ("f8", _le_bytes(token_weights), len(token_weights)),
        "name_blob": ("u1", name_blob, len(name_blob)),
        "name_offsets": ("i4", _le_bytes(name_offsets), len(name_offsets)),
        "name_id_offsets": ("i4", _le_bytes(name_id_offsets), len(name_id_offsets)),
        "name_ids": ("i4", _le_bytes(name_ids), len(name_ids)),
        "uri_blob": ("u1", uri_blob, len(uri_blob)),
        "uri_offsets": ("i4", _le_bytes(uri_offsets), len(uri_offsets)),
        "neighbor_offsets": ("i4", _le_bytes(neighbor_offsets), len(neighbor_offsets)),
        "neighbor_ids": ("i4", _le_bytes(neighbor_ids), len(neighbor_ids)),
    }

    section_names = list(_SECTION_NAMES)
    global_ef = fields.get("token_global_ef")
    if global_ef is not None:
        ef_values = array("i", (int(global_ef[token]) for token in tokens))
        raw["token_global_ef"] = ("i4", _le_bytes(ef_values), len(ef_values))
        section_names.append("token_global_ef")

    chunks: list[bytes] = []
    sections: list[dict[str, Any]] = []
    cursor = 0
    for name in section_names:
        dtype, data, count = raw[name]
        pad = (-cursor) % ALIGNMENT
        if pad:
            chunks.append(b"\x00" * pad)
            cursor += pad
        sections.append(
            {"name": name, "dtype": dtype, "offset": cursor, "count": count}
        )
        chunks.append(data)
        cursor += len(data)

    header = {
        "kb_name": fields["kb_name"],
        "n2": int(fields["n2"]),
        "name_attributes": list(fields["name_attributes"]),
        "config": config_to_dict(fields["config"]),
        "tokenizer": {
            "min_length": tokenizer.min_length,
            "stopwords": sorted(tokenizer.stopwords),
        },
        "counts": {
            "tokens": len(tokens),
            "names": len(sorted_names),
            "posting_entries": len(posting_ids),
            "name_entries": len(name_ids),
            "neighbor_edges": len(neighbor_ids),
        },
        "sections": sections,
    }
    shard_info = fields.get("shard_info")
    if shard_info is not None:
        header["shards"] = dict(shard_info)
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")

    prefix = (
        MAGIC
        + bytes([FORMAT_VERSION])
        + _HEADER_LEN_STRUCT.pack(len(header_bytes))
        + header_bytes
    )
    prefix += b"\x00" * ((-len(prefix)) % ALIGNMENT)
    return prefix + b"".join(chunks)


# ----------------------------------------------------------------------
# Container parsing
# ----------------------------------------------------------------------


def read_version(data: bytes) -> int:
    """Validate the magic and return the version byte of ``data``.

    Raises ``ValueError`` on a foreign prefix or a file too short to
    carry a version byte.
    """
    if data[: len(MAGIC)] != MAGIC:
        raise ValueError("not a MinoanER resolution index")
    if len(data) < len(MAGIC) + 1:
        raise ValueError("unsupported index format version None (truncated file)")
    return data[len(MAGIC)]


def parse_header(data: bytes | memoryview, size: int) -> tuple[dict, int]:
    """The JSON header of a v2 container + the payload base offset.

    ``size`` is the container's total byte length, used to validate the
    section table; raises ``ValueError`` on truncation or corruption.
    """
    if size < _PREFIX_LEN:
        raise ValueError("truncated index file: missing header length")
    (header_len,) = _HEADER_LEN_STRUCT.unpack(
        bytes(data[len(MAGIC) + 1 : _PREFIX_LEN])
    )
    if _PREFIX_LEN + header_len > size:
        raise ValueError("truncated index file: incomplete header")
    try:
        header = json.loads(bytes(data[_PREFIX_LEN : _PREFIX_LEN + header_len]))
    except ValueError as error:
        raise ValueError(f"corrupt index header: {error}") from None
    base = _PREFIX_LEN + header_len
    base += (-base) % ALIGNMENT
    try:
        sections = header["sections"]
        for section in sections:
            end = base + section["offset"]
            end += section["count"] * _DTYPE_ITEMSIZE[section["dtype"]]
            if end > size:
                raise ValueError(
                    f"truncated index file: section {section['name']!r} "
                    f"ends at byte {end}, file has {size}"
                )
        present = {section["name"] for section in sections}
        missing = set(_SECTION_NAMES) - present
        if missing:
            raise ValueError(f"corrupt index header: missing sections {sorted(missing)}")
    except (KeyError, TypeError) as error:
        raise ValueError(f"corrupt index header: {error!r}") from None
    return header, base


def _header_fields(header: dict) -> dict[str, Any]:
    """The O(1) metadata fields shared by both decode paths."""
    spec = header["tokenizer"]
    return {
        "kb_name": header["kb_name"],
        "n2": int(header["n2"]),
        "name_attributes": tuple(header["name_attributes"]),
        "config": config_from_dict(header["config"]),
        "tokenizer": Tokenizer(
            min_length=spec["min_length"], stopwords=spec["stopwords"]
        ),
    }


# ----------------------------------------------------------------------
# Eager decoding (stdlib only; numpy never required)
# ----------------------------------------------------------------------


def _eager_section(data: bytes, base: int, section: dict) -> bytes | array:
    start = base + section["offset"]
    nbytes = section["count"] * _DTYPE_ITEMSIZE[section["dtype"]]
    raw = data[start : start + nbytes]
    if len(raw) != nbytes:
        raise ValueError(f"truncated index file: section {section['name']!r}")
    if section["dtype"] == "u1":
        return raw
    arr = array(_DTYPE_TYPECODE[section["dtype"]])
    arr.frombytes(raw)
    if sys.byteorder == "big":
        arr.byteswap()
    return arr


def _decode_strings(blob: bytes, offsets: array) -> list[str]:
    return [
        blob[offsets[i] : offsets[i + 1]].decode("utf-8")
        for i in range(len(offsets) - 1)
    ]


def decode_eager(data: bytes) -> dict[str, Any]:
    """Materialise a v2 container into the legacy in-memory shapes.

    Returns the persisted fields with plain ``dict``/``list``/``array``
    values -- exactly what the pickle format used to load -- so eager
    loads behave identically to historical ones.  Pure stdlib: works
    without numpy.
    """
    header, base = parse_header(data, len(data))
    sections = {section["name"]: section for section in header["sections"]}
    get = lambda name: _eager_section(data, base, sections[name])  # noqa: E731

    tokens = _decode_strings(get("token_blob"), get("token_offsets"))
    posting_offsets = get("posting_offsets")
    posting_ids = get("posting_ids")
    token_weights = get("token_weights")
    postings = {
        token: posting_ids[posting_offsets[i] : posting_offsets[i + 1]]
        for i, token in enumerate(tokens)
    }
    singleton_weights = {
        token: token_weights[i] for i, token in enumerate(tokens)
    }

    name_keys = _decode_strings(get("name_blob"), get("name_offsets"))
    name_id_offsets = get("name_id_offsets")
    name_ids = get("name_ids")
    names = {
        name: tuple(name_ids[name_id_offsets[i] : name_id_offsets[i + 1]])
        for i, name in enumerate(name_keys)
    }

    fields = _header_fields(header)
    fields["uris2"] = _decode_strings(get("uri_blob"), get("uri_offsets"))
    fields["postings"] = postings
    fields["singleton_weights"] = singleton_weights
    fields["names"] = names
    fields["in_neighbors"] = CSRAdjacency(
        get("neighbor_offsets"), get("neighbor_ids")
    )
    if "token_global_ef" in sections:
        ef_values = get("token_global_ef")
        fields["token_global_ef"] = {
            token: ef_values[i] for i, token in enumerate(tokens)
        }
    if "shards" in header:
        fields["shard_info"] = header["shards"]
    return fields


# ----------------------------------------------------------------------
# Zero-copy memmap views
# ----------------------------------------------------------------------


class StringTable:
    """Binary search over a sorted UTF-8 blob + offset table.

    Comparison happens on raw UTF-8 byte sequences, whose lexicographic
    order equals Python's code-point string order, so :meth:`find`
    agrees with a ``sorted()`` of the decoded strings.

    The offset array (4 bytes per string, tiny next to the blob) is
    flattened to python ints and the blob wrapped in a ``memoryview``
    on the first lookup, keeping load O(1) while dropping the per-probe
    cost from two ``memmap.__getitem__`` scalar reads plus an ndarray
    slice to two list reads plus a buffer slice.  Resolved indices are
    memoised: one online query consults the same token several times
    (membership, posting, weight, global EF), and query streams repeat
    tokens heavily, so most lookups are a dict hit.
    """

    __slots__ = ("_blob", "_offsets", "count", "_view", "_bounds", "_cache")

    _CACHE_LIMIT = 1 << 18

    def __init__(self, blob, offsets):
        self._blob = blob
        self._offsets = offsets
        self.count = len(offsets) - 1
        self._view = None
        self._bounds = None
        self._cache: dict[str, int] = {}

    def _materialise(self):
        self._bounds = bounds = self._offsets.tolist()
        self._view = view = memoryview(self._blob)
        return view, bounds

    def find(self, text: str) -> int:
        """Index of ``text`` in the table, or -1."""
        cache = self._cache
        found = cache.get(text)
        if found is None:
            view, bounds = self._view, self._bounds
            if bounds is None:
                view, bounds = self._materialise()
            key = text.encode("utf-8")
            lo, hi = 0, self.count
            found = -1
            while lo < hi:
                mid = (lo + hi) // 2
                probe = bytes(view[bounds[mid] : bounds[mid + 1]])
                if probe < key:
                    lo = mid + 1
                elif probe > key:
                    hi = mid
                else:
                    found = mid
                    break
            if len(cache) >= self._CACHE_LIMIT:
                cache.clear()
            cache[text] = found
        return found

    def decode(self, i: int) -> str:
        view, bounds = self._view, self._bounds
        if bounds is None:
            view, bounds = self._materialise()
        return bytes(view[bounds[i] : bounds[i + 1]]).decode("utf-8")

    def __iter__(self) -> Iterator[str]:
        for i in range(self.count):
            yield self.decode(i)


class MappedPostings(Mapping):
    """Token -> zero-copy int32 posting slice over the mapped file.

    A lookup is one binary search (O(log tokens)) plus an array view --
    no python list of ids is ever materialised, and the bytes behind the
    view are the memmapped file pages themselves.
    """

    __slots__ = ("_table", "_offsets", "_ids")

    def __init__(self, table: StringTable, offsets, ids):
        self._table = table
        self._offsets = offsets
        self._ids = ids

    def __getitem__(self, token: str):
        i = self._table.find(token)
        if i < 0:
            raise KeyError(token)
        return self._ids[self._offsets[i] : self._offsets[i + 1]]

    def __contains__(self, token: object) -> bool:
        return isinstance(token, str) and self._table.find(token) >= 0

    def get(self, token: str, default=()):
        i = self._table.find(token)
        if i < 0:
            return default
        return self._ids[self._offsets[i] : self._offsets[i + 1]]

    def __iter__(self) -> Iterator[str]:
        return iter(self._table)

    def __len__(self) -> int:
        return self._table.count

    def total_entries(self) -> int:
        """Posting entries across all tokens, without iterating them."""
        return len(self._ids)

    def __repr__(self) -> str:
        return f"MappedPostings({len(self)} tokens, {len(self._ids)} entries)"


class MappedWeights(Mapping):
    """Token -> hoisted singleton block weight (float), zero-copy."""

    __slots__ = ("_table", "_weights")

    def __init__(self, table: StringTable, weights):
        self._table = table
        self._weights = weights

    def __getitem__(self, token: str) -> float:
        i = self._table.find(token)
        if i < 0:
            raise KeyError(token)
        return float(self._weights[i])

    def __contains__(self, token: object) -> bool:
        return isinstance(token, str) and self._table.find(token) >= 0

    def __iter__(self) -> Iterator[str]:
        return iter(self._table)

    def __len__(self) -> int:
        return self._table.count


class MappedNames(Mapping):
    """Normalised name -> tuple of entity ids, decoded per lookup.

    Id groups are tiny (typically one entity), so they are returned as
    plain int tuples -- identical to the eager representation -- while
    the table itself stays on mapped pages.
    """

    __slots__ = ("_table", "_offsets", "_ids")

    def __init__(self, table: StringTable, offsets, ids):
        self._table = table
        self._offsets = offsets
        self._ids = ids

    def __getitem__(self, name: str) -> tuple[int, ...]:
        i = self._table.find(name)
        if i < 0:
            raise KeyError(name)
        return tuple(self._ids[self._offsets[i] : self._offsets[i + 1]].tolist())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._table.find(name) >= 0

    def __iter__(self) -> Iterator[str]:
        return iter(self._table)

    def __len__(self) -> int:
        return self._table.count


class MappedEntityFrequencies(Mapping):
    """Token -> global Entity Frequency (int), zero-copy.

    Present only in per-shard files; see the module docstring.
    """

    __slots__ = ("_table", "_values")

    def __init__(self, table: StringTable, values):
        self._table = table
        self._values = values

    def __getitem__(self, token: str) -> int:
        i = self._table.find(token)
        if i < 0:
            raise KeyError(token)
        return int(self._values[i])

    def __contains__(self, token: object) -> bool:
        return isinstance(token, str) and self._table.find(token) >= 0

    def __iter__(self) -> Iterator[str]:
        return iter(self._table)

    def __len__(self) -> int:
        return self._table.count


class MappedURIs(Sequence):
    """Entity id -> URI string, decoded on demand from the mapped blob.

    Like :class:`StringTable`, the offsets flatten to python ints on
    first access so per-decision decodes stay off the memmap scalar
    path; the URI bytes themselves remain mapped.
    """

    __slots__ = ("_blob", "_offsets", "_view", "_bounds")

    def __init__(self, blob, offsets):
        self._blob = blob
        self._offsets = offsets
        self._view = None
        self._bounds = None

    def __getitem__(self, eid):
        if isinstance(eid, slice):
            return [self[i] for i in range(*eid.indices(len(self)))]
        bounds = self._bounds
        if bounds is None:
            self._bounds = bounds = self._offsets.tolist()
            self._view = memoryview(self._blob)
        n = len(bounds) - 1
        if eid < 0:
            eid += n
        if not 0 <= eid < n:
            raise IndexError(eid)
        return bytes(self._view[bounds[eid] : bounds[eid + 1]]).decode("utf-8")

    def __len__(self) -> int:
        return len(self._offsets) - 1


def open_mmap(path) -> tuple[dict[str, Any], int]:
    """Memory-map a v2 container into zero-copy field views.

    Returns ``(fields, file_bytes)``.  Requires numpy (the only consumer
    of the raw little-endian sections); raises ``RuntimeError`` without
    it so callers can fall back to the eager decoder.
    """
    from repro.kernels import numpy_available

    if not numpy_available():
        raise RuntimeError(
            "ResolutionIndex.load(mmap=True) requires numpy; "
            "use the eager loader (mmap=False) instead"
        )
    import numpy as np

    buf = np.memmap(path, dtype=np.uint8, mode="r")
    size = int(buf.shape[0])
    if size < _PREFIX_LEN:
        raise ValueError("truncated index file: missing header length")
    (header_len,) = _HEADER_LEN_STRUCT.unpack(
        bytes(buf[len(MAGIC) + 1 : _PREFIX_LEN])
    )
    header, base = parse_header(
        bytes(buf[: min(size, _PREFIX_LEN + header_len)]), size
    )
    sections = {section["name"]: section for section in header["sections"]}

    def view(name: str):
        section = sections[name]
        start = base + section["offset"]
        nbytes = section["count"] * _DTYPE_ITEMSIZE[section["dtype"]]
        raw = buf[start : start + nbytes]
        if section["dtype"] == "u1":
            return raw
        return raw.view("<" + section["dtype"])

    token_table = StringTable(view("token_blob"), view("token_offsets"))
    name_table = StringTable(view("name_blob"), view("name_offsets"))

    fields = _header_fields(header)
    fields["postings"] = MappedPostings(
        token_table, view("posting_offsets"), view("posting_ids")
    )
    fields["singleton_weights"] = MappedWeights(token_table, view("token_weights"))
    fields["names"] = MappedNames(name_table, view("name_id_offsets"), view("name_ids"))
    fields["uris2"] = MappedURIs(view("uri_blob"), view("uri_offsets"))
    fields["in_neighbors"] = CSRAdjacency(
        view("neighbor_offsets"), view("neighbor_ids")
    )
    if "token_global_ef" in sections:
        fields["token_global_ef"] = MappedEntityFrequencies(
            token_table, view("token_global_ef")
        )
    if "shards" in header:
        fields["shard_info"] = header["shards"]
    return fields, size


# ----------------------------------------------------------------------
# Legacy pickle (version 1)
# ----------------------------------------------------------------------


def write_legacy_index(fields: Mapping[str, Any], path) -> None:
    """Write a version-1 (pickle) index file.

    Exists for migration tests and for reproducing old files; new code
    always writes the columnar format.  The payload mirrors what
    version-1 ``save`` persisted, so old builds can read the file.
    """
    import pickle

    payload = {
        key: (
            dict(value)
            if isinstance(value, Mapping) and not isinstance(value, dict)
            else list(value)
            if key == "uris2" and not isinstance(value, list)
            else value
        )
        for key, value in fields.items()
    }
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(bytes([LEGACY_FORMAT_VERSION]))
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
