"""Cut one :class:`ResolutionIndex` into N per-shard indexes.

Partitioning is by KB2 entity: entity ``e`` belongs to shard
``crc32(uri(e)) % N`` -- stable across runs, machines and python
versions, and independent of dense id assignment.  A shard keeps:

* the **full token table** with only its own entities in each posting
  list (tokens owned entirely by other shards keep an *empty* list, so
  token membership -- which gates block formation -- stays global);
* the **global Entity Frequency** per token (``token_global_ef``
  section) and the unchanged **global singleton weights**, so block
  weights and purging thresholds computed on a shard equal the
  unsharded ones bit for bit;
* the full ``n2``/URI table (ids stay global; a shard's answers need
  no translation), config, tokenizer, name attributes and in-neighbor
  CSR;
* only the globally-*singleton* names whose single entity it owns --
  a shard-local name map must never claim a name that is ambiguous
  globally.

Because posting lists partition disjointly and every weight input is
global, each candidate's ``beta`` score is computed wholly inside its
owner shard and equals the unsharded score exactly; the router's merge
(:mod:`repro.sharding.merge`) then only has to re-rank under the same
``(-score, id)`` order.

Each shard file is a normal columnar v2 container (see
:mod:`repro.serving.format`): the stock engine loads it, mmap works,
and ``repro index --migrate`` rewrites it byte-identically.
"""

from __future__ import annotations

import zlib
from array import array
from pathlib import Path

from repro.obs import current_recorder
from repro.serving.index import ResolutionIndex

__all__ = ["ShardPlanner", "partition_of", "shard_paths"]

PARTITION_SCHEME = "crc32"
"""Identifier of the URI hash recorded in each shard's descriptor."""


def partition_of(uri: str, count: int) -> int:
    """The shard owning the entity with this URI (``crc32 % count``)."""
    return zlib.crc32(uri.encode("utf-8")) % count


def shard_paths(base: str | Path, count: int) -> list[Path]:
    """The per-shard file names derived from an index path.

    ``kb2.idx`` with 3 shards becomes ``kb2.idx.shard0-of-3`` ...
    ``kb2.idx.shard2-of-3`` next to the original file.
    """
    base = Path(base)
    return [
        base.with_name(f"{base.name}.shard{i}-of-{count}") for i in range(count)
    ]


class ShardPlanner:
    """Split a built (or loaded) index into ``count`` shard indexes."""

    def __init__(self, count: int):
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        self.count = count

    def owners(self, index: ResolutionIndex) -> list[int]:
        """Owning shard of every KB2 entity, by dense id."""
        count = self.count
        return [partition_of(uri, count) for uri in index.uris2]

    def plan(self, index: ResolutionIndex) -> list[ResolutionIndex]:
        """The ``count`` shard indexes of ``index``, in shard order."""
        if index.shard_info is not None:
            raise ValueError(
                f"refusing to re-shard a shard "
                f"({index.shard_info.get('index')}/{index.shard_info.get('count')} "
                f"of a {index.shard_info.get('count')}-way split)"
            )
        recorder = current_recorder()
        with recorder.span("shard.plan", shards=self.count, n2=index.n2):
            owners = self.owners(index)
            postings = index.postings
            global_ef = {token: len(postings[token]) for token in postings}
            local_postings: list[dict[str, array]] = [
                {} for _ in range(self.count)
            ]
            for token in postings:
                split: list[array] = [array("i") for _ in range(self.count)]
                for eid in postings[token]:
                    split[owners[eid]].append(eid)
                for shard, ids in enumerate(split):
                    local_postings[shard][token] = ids

            # Names: globally-singleton only, kept by the owner shard.
            local_names: list[dict[str, tuple[int, ...]]] = [
                {} for _ in range(self.count)
            ]
            for name, ids in index.names.items():
                if len(ids) == 1:
                    local_names[owners[ids[0]]][name] = tuple(ids)

            weights = dict(index.singleton_weights)
            shards = []
            for shard in range(self.count):
                shards.append(
                    ResolutionIndex(
                        kb_name=index.kb_name,
                        n2=index.n2,
                        uris2=list(index.uris2),
                        config=index.config,
                        tokenizer=index.tokenizer,
                        name_attributes=index.name_attributes,
                        names=local_names[shard],
                        postings=local_postings[shard],
                        singleton_weights=weights,
                        in_neighbors=index.in_neighbors,
                        token_global_ef=global_ef,
                        shard_info={
                            "count": self.count,
                            "index": shard,
                            "partition": PARTITION_SCHEME,
                        },
                    )
                )
            return shards

    def write(self, index: ResolutionIndex, base: str | Path) -> list[Path]:
        """Plan + save: the shard files of ``index`` next to ``base``."""
        paths = shard_paths(base, self.count)
        for shard, path in zip(self.plan(index), paths):
            shard.save(path)
        return paths
