"""Scatter/gather serving over shard workers, bit-identical to one engine.

:class:`ShardRouter` *is a* :class:`~repro.serving.engine.MatchEngine`
over the full (unsharded) index -- memory-mapped, so loading it is O(1)
and its pages are shared with any local worker mapping the same file.
Everything query-side and cheap runs in the router exactly as in the
single-process engine: name evidence (alpha), batch statistics,
neighbor evidence (gamma), the matching rules, caching, deadlines and
provenance.  Only the expensive *value* evidence (the ``beta`` rows
over the token postings) is scattered to the shard workers, whose
disjoint posting partitions + global weights make every per-pair score
bit-identical to the unsharded one; the router re-ranks the merged
evidence with :mod:`repro.sharding.merge` and replays the rules through
the engine's own code path.

Per shard, R replicas serve interchangeably.  A request goes to one
replica (round-robin); if no answer arrives within the hedge delay --
``config.serving_hedge_ms`` when set, else an adaptive p95 of the
shard's recent latencies -- a backup request is *hedged* to the next
replica and the first answer wins (the loser is cancelled best-effort).
Replica faults feed per-replica circuit breakers
(:mod:`repro.resilience.breaker`); what happens when a whole shard is
unreachable follows ``config.failure_mode``:

* ``fail_fast`` -- the query raises :class:`ShardFailure`;
* ``retry`` -- the scatter is retried per ``config.retry_*``, then
  raises;
* ``degrade`` -- the survivors' evidence is merged anyway and every
  affected decision is marked ``degraded`` (the existing wire format),
  with ``on_shard_error`` fired once per healthy->down transition so
  the stream can carry an error record.

Deadlines decay across the fan-out: each worker request carries the
router deadline's *remaining* budget as ``budget_ms``, so a slow shard
cannot spend time a later pipeline stage no longer has.
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.core.config import MinoanERConfig, config_to_dict
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.obs import Recorder
from repro.obs.recorder import percentile
from repro.resilience.admission import RetryBudget
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPlan, current_faults, inject
from repro.resilience.policy import Deadline, DeadlineExpired, RetryPolicy
from repro.resilience.supervisor import ReplicaSupervisor
from repro.serving.cache import LRUCache
from repro.serving.engine import MatchDecision, MatchEngine, _Outcome
from repro.serving.index import ResolutionIndex
from repro.serving.io import entity_to_json
from repro.serving.live import LiveServingMixin
from repro.sharding.merge import merge_batch_evidence, merge_single_evidence
from repro.sharding.planner import ShardPlanner, shard_paths
from repro.sharding.protocol import read_frame, snapshot_from_json, write_frame
from repro.sharding.worker import ShardWorker

__all__ = [
    "InlineReplica",
    "LiveShardRouter",
    "ProcessReplica",
    "ShardFailure",
    "ShardRouter",
]

DEFAULT_HEDGE_DELAY_S = 0.05
"""Hedge delay before the adaptive p95 has enough samples."""

HEDGE_MIN_SAMPLES = 8
"""Latency observations a shard needs before its p95 drives hedging."""

HEDGE_WINDOW = 128
"""Recent per-shard latencies kept for the adaptive hedge delay."""


class ShardFailure(RuntimeError):
    """A shard request failed on every replica the router could try."""


def _host_cpus() -> int:
    """CPUs this process may run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


class ProcessReplica:
    """One worker subprocess speaking the frame protocol over pipes.

    A dedicated reader thread demultiplexes responses to per-request
    sink queues by ``id``, so hedged requests to sibling replicas can
    share one sink and race.  All messages a replica delivers have the
    shape ``("ok", replica, frame)`` or ``("err", replica, error)``;
    once the process dies, every pending and future request fails fast
    with the terminal error.
    """

    def __init__(
        self,
        path: str | Path,
        shard: int,
        mmap: bool = False,
        config_json: str | None = None,
    ):
        argv = [sys.executable, "-m", "repro.sharding", str(path)]
        if mmap:
            argv.append("--mmap")
        if config_json is not None:
            argv += ["--config", config_json]
        self.shard = shard
        self.breaker: CircuitBreaker | None = None
        self.proc = subprocess.Popen(  # noqa: S603 - argv is our own module
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE
        )
        self._lock = threading.Lock()
        self._pending: dict[int, "queue.Queue"] = {}
        self._next_rid = 0
        self._dead: Exception | None = None
        self._reader = threading.Thread(
            target=self._read_loop, name=f"shard-{shard}-reader", daemon=True
        )
        self._reader.start()

    @property
    def alive(self) -> bool:
        return self._dead is None and self.proc.poll() is None

    def send(self, op: str, payload: dict[str, Any], sink: "queue.Queue") -> int:
        """Dispatch one request; its response will arrive on ``sink``."""
        with self._lock:
            if self._dead is not None:
                raise ShardFailure(f"shard {self.shard} worker is down: {self._dead}")
            self._next_rid += 1
            rid = self._next_rid
            self._pending[rid] = sink
            try:
                write_frame(self.proc.stdin, {"id": rid, "op": op, **payload})
            except Exception as error:
                self._pending.pop(rid, None)
                raise ShardFailure(
                    f"shard {self.shard} worker write failed: {error}"
                ) from error
        return rid

    def cancel(self, rid: int) -> None:
        """Forget a request; best-effort tell the worker to skip it."""
        with self._lock:
            self._pending.pop(rid, None)
            if self._dead is None:
                try:
                    write_frame(self.proc.stdin, {"cancel": rid})
                except Exception:
                    pass

    def request(
        self, op: str, payload: dict[str, Any] | None = None, timeout: float = 30.0
    ) -> dict[str, Any]:
        """Synchronous round trip; raises :class:`ShardFailure` on error."""
        sink: queue.Queue = queue.Queue()
        rid = self.send(op, payload or {}, sink)
        try:
            kind, _, body = sink.get(timeout=timeout)
        except queue.Empty:
            self.cancel(rid)
            raise ShardFailure(
                f"shard {self.shard} worker timed out on {op!r}"
            ) from None
        if kind == "err":
            raise ShardFailure(f"shard {self.shard}: {body}")
        if not body.get("ok"):
            raise ShardFailure(f"shard {self.shard}: {body.get('error', 'unknown error')}")
        return body

    def shutdown(self, timeout: float = 5.0) -> None:
        """Polite stop: shutdown op, close stdin, wait, then kill."""
        try:
            self.request("shutdown", timeout=timeout)
        except Exception:
            pass
        try:
            self.proc.stdin.close()
        except Exception:
            pass
        try:
            self.proc.wait(timeout=timeout)
        except Exception:
            self.kill()

    def kill(self) -> None:
        try:
            self.proc.kill()
            self.proc.wait(timeout=5.0)
        except Exception:
            pass

    def _read_loop(self) -> None:
        try:
            while True:
                frame = read_frame(self.proc.stdout)
                if frame is None:
                    break
                sink = None
                with self._lock:
                    sink = self._pending.pop(frame.get("id"), None)
                if sink is not None:
                    sink.put(("ok", self, frame))
        except Exception as error:
            self._mark_dead(error)
            return
        self._mark_dead(RuntimeError(f"shard {self.shard} worker exited"))

    def _mark_dead(self, error: Exception) -> None:
        with self._lock:
            if self._dead is not None:
                return
            self._dead = error
            pending = list(self._pending.values())
            self._pending.clear()
        for sink in pending:
            sink.put(("err", self, error))

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"ProcessReplica(shard={self.shard}, pid={self.proc.pid}, {state})"


class InlineReplica:
    """An in-process replica over a :class:`ShardWorker`, for tests.

    Requests and responses still round-trip through JSON so the inline
    path exercises exact wire fidelity (float repr round-trips, string
    column keys) without subprocess overhead -- the property tests run
    hundreds of sharded queries through it.
    """

    def __init__(self, worker: ShardWorker, shard: int | None = None):
        self.worker = worker
        self.shard = worker.shard_index if shard is None else shard
        self.breaker: CircuitBreaker | None = None
        self._lock = threading.Lock()
        self._next_rid = 0

    @property
    def alive(self) -> bool:
        return True

    def send(self, op: str, payload: dict[str, Any], sink: "queue.Queue") -> int:
        with self._lock:
            self._next_rid += 1
            rid = self._next_rid
        request = json.loads(json.dumps({"id": rid, "op": op, **payload}))
        response = json.loads(json.dumps(self.worker.handle(request)))
        sink.put(("ok", self, response))
        return rid

    def cancel(self, rid: int) -> None:
        pass

    def request(
        self, op: str, payload: dict[str, Any] | None = None, timeout: float = 30.0
    ) -> dict[str, Any]:
        sink: queue.Queue = queue.Queue()
        self.send(op, payload or {}, sink)
        _, _, body = sink.get_nowait()
        if not body.get("ok"):
            raise ShardFailure(f"shard {self.shard}: {body.get('error', 'unknown error')}")
        return body

    def shutdown(self, timeout: float = 5.0) -> None:
        pass

    def kill(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"InlineReplica(shard={self.shard})"


class ShardRouter(MatchEngine):
    """A :class:`MatchEngine` whose value evidence is scattered to shards.

    Parameters
    ----------
    index:
        The *full* (unsharded) index; name/neighbor evidence and the
        rules run on it locally.  Load it with ``mmap=True`` -- O(1)
        and page-shared with co-located workers.
    replica_sets:
        One list of replicas per shard, shard order.  Replicas need
        ``send/cancel/request/shutdown/kill`` (see
        :class:`ProcessReplica` / :class:`InlineReplica`); each gets a
        circuit breaker attached if it brings none.
    on_shard_error:
        ``(shard, error) -> None``, fired once per healthy->down
        transition in ``degrade`` mode; the CLI emits the stream's
        error record from it.

    Everything else (config, cache, recorder) is the engine's.
    """

    def __init__(
        self,
        index: ResolutionIndex,
        replica_sets: Sequence[Sequence[Any]],
        config: MinoanERConfig | None = None,
        cache: LRUCache | None = None,
        recorder: Recorder | None = None,
        on_shard_error: Callable[[int, Exception], None] | None = None,
        scatter: str = "auto",
    ):
        super().__init__(index, config, cache, recorder)
        if scatter not in ("auto", "pool", "sequential"):
            raise ValueError(f"scatter must be auto|pool|sequential, got {scatter!r}")
        if not replica_sets:
            raise ValueError("a router needs at least one shard")
        self._replicas: list[list[Any]] = [list(group) for group in replica_sets]
        for group in self._replicas:
            if not group:
                raise ValueError("every shard needs at least one replica")
            for replica in group:
                if replica.breaker is None:
                    replica.breaker = CircuitBreaker(
                        failure_threshold=self.config.breaker_threshold,
                        reset_after_s=self.config.breaker_reset_s,
                        recorder=self.recorder,
                    )
        self.shards = len(self._replicas)
        self._on_shard_error = on_shard_error
        self._down: set[int] = set()
        self._rr = [0] * self.shards
        self._rr_lock = threading.Lock()
        self._latency: list[deque[float]] = [
            deque(maxlen=HEDGE_WINDOW) for _ in range(self.shards)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, 2 * self.shards), thread_name_prefix="shard-router"
        )
        if scatter == "auto":
            # On a single-core host the fan-out serialises anyway, so
            # the pool's submit/wakeup machinery is pure overhead;
            # scatter shard-by-shard on the query thread instead.
            # Hedging, retries, breakers and chaos all live inside
            # _request_shard and behave identically on either path.
            scatter = "sequential" if _host_cpus() == 1 else "pool"
        self._sequential = scatter == "sequential"
        #: Per-shard round-trip milliseconds of the most recent scatter,
        #: shard order -- only measured on the sequential path (pool
        #: timings would include sibling shards' queueing); None there.
        self.last_shard_ms: list[float] | None = None
        #: Per-shard worker compute milliseconds (self-reported
        #: ``service_ms``) of the most recent scatter; None for a shard
        #: that degraded.  Set on both scatter paths.
        self.last_service_ms: list[float | None] | None = None
        #: Finagle-style retry budget shared by every shard call in
        #: ``failure_mode="retry"``: retries stop when sustained
        #: failures outpace real traffic (docs/resilience.md).
        self.retry_budget = (
            RetryBudget(ratio=self.config.retry_budget_ratio)
            if self.config.retry_budget_ratio is not None
            else None
        )
        #: ``shard -> replica`` factory used by :meth:`resurrect`;
        #: :meth:`spawn` installs one over the shard files it launched
        #: from.  ``None`` means dead replicas stay dead (constructed
        #: routers own replicas the router cannot recreate).
        self._replica_factory: Callable[[int], Any] | None = None
        #: Attached :class:`~repro.resilience.supervisor.ReplicaSupervisor`
        #: (``spawn(supervise=True)``); closed first by :meth:`close`.
        self.supervisor: ReplicaSupervisor | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def spawn(
        cls,
        index_path: str | Path,
        count: int,
        replicas: int = 1,
        mmap: bool = True,
        config: MinoanERConfig | None = None,
        cache: LRUCache | None = None,
        recorder: Recorder | None = None,
        on_shard_error: Callable[[int, Exception], None] | None = None,
        index: ResolutionIndex | None = None,
        scatter: str = "auto",
        supervise: bool = False,
        supervisor_options: dict[str, Any] | None = None,
    ) -> "ShardRouter":
        """Launch ``count * replicas`` worker subprocesses and a router.

        Expects the shard files of ``index_path`` (written by
        ``repro index --shards``) next to it; each worker is
        handshaken with ``hello`` before the router is returned, so a
        missing or corrupt shard fails construction, not the first
        query.  ``index`` short-circuits re-loading the full index when
        the caller already holds it.

        ``supervise=True`` attaches a started
        :class:`~repro.resilience.supervisor.ReplicaSupervisor`
        (tunable via ``supervisor_options``) that restarts crashed or
        reload-failed replicas from the same shard files; the router
        always installs the replica factory :meth:`resurrect` needs, so
        a supervisor can also be attached later.
        """
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        paths = shard_paths(index_path, count)
        missing = [str(path) for path in paths if not path.exists()]
        if missing:
            raise FileNotFoundError(
                f"missing shard files ({', '.join(missing)}); "
                f"run `repro index --shards {count}` first"
            )
        if index is None:
            index = ResolutionIndex.load(index_path, mmap=mmap)
        config_json = (
            json.dumps(config_to_dict(config)) if config is not None else None
        )

        def factory(shard: int) -> "ProcessReplica":
            return ProcessReplica(
                paths[shard], shard, mmap=mmap, config_json=config_json
            )

        replica_sets: list[list[ProcessReplica]] = []
        try:
            for shard in range(len(paths)):
                group = []
                for _ in range(replicas):
                    replica = factory(shard)
                    group.append(replica)
                    replica.request("hello", timeout=120.0)
                replica_sets.append(group)
        except Exception:
            for group in replica_sets:
                for replica in group:
                    replica.kill()
            raise
        router = cls(
            index,
            replica_sets,
            config=config,
            cache=cache,
            recorder=recorder,
            on_shard_error=on_shard_error,
            scatter=scatter,
        )
        router._replica_factory = factory
        if supervise:
            router.supervisor = ReplicaSupervisor(
                router, **(supervisor_options or {})
            ).start()
        return router

    # ------------------------------------------------------------------
    # Engine overrides
    # ------------------------------------------------------------------
    def _lookup(
        self, entity: EntityDescription, deadline: Deadline | None
    ) -> tuple[_Outcome, bool]:
        """Local alpha, scattered value evidence, merged outcome."""
        index = self.index
        if index.n2 == 0:
            return (None, None, None, 0, ()), False
        qkb = KnowledgeBase([entity], name="query", tokenizer=index.tokenizer)
        qstats = KBStatistics(
            qkb,
            top_k_name_attributes=self.config.name_attributes_k,
            top_n_relations=self.config.relations_n,
        )
        if deadline is not None:
            deadline.check("name evidence")
        alpha = self._alpha_match(qstats)
        # The purged shared-token list is identical on every shard (full
        # token table + global EFs travel in each shard file), so derive
        # it once here instead of N times in the workers; the request
        # then carries a small token list, not the whole entity.
        payload: dict[str, Any] = {"tokens": self.value_tokens(entity, qkb=qkb)}
        if alpha is not None:
            payload["probe"] = int(alpha)
        evidences, degraded = self._gather("match", payload, deadline)
        outcome = merge_single_evidence(
            self.config, self._cut, alpha, [e for e in evidences if e is not None]
        )
        return outcome, degraded

    def _match_many(self, batch: list[EntityDescription]) -> list[MatchDecision]:
        """The engine's batch pipeline with scattered value evidence.

        Overrides the post-admission hook of
        :meth:`MatchEngine.match_batch`, so admission control (queue
        bound + per-source quota) applies before any scatter happens.
        """
        started = time.perf_counter()
        deadline = self._query_deadline()
        try:
            inject("serve:batch")
            qkb, qstats = self._batch_stats(batch)
            if deadline is not None:
                deadline.check("batch graph")
            payload = {"entities": [entity_to_json(entity) for entity in batch]}
            evidences, degraded = self._gather("batch", payload, deadline)
            value_1, value_2 = merge_batch_evidence(
                self.config,
                self._cut,
                len(batch),
                self.index.id_space,
                [evidence for evidence in evidences if evidence is not None],
            )
            graph = self._assemble_graph(qkb, qstats, value_1, value_2)
            if deadline is not None:
                deadline.check("batch matching")
        except DeadlineExpired:
            self.recorder.count("deadline.expired")
            return self._degraded_batch(batch, started)
        return self._finish_batch(batch, graph, started, degraded=degraded)

    # ------------------------------------------------------------------
    # Scatter/gather
    # ------------------------------------------------------------------
    def _gather(
        self, op: str, payload: dict[str, Any], deadline: Deadline | None
    ) -> tuple[list[dict[str, Any] | None], bool]:
        """One request to every shard; ``(per-shard results, degraded)``.

        A shard whose every usable replica failed contributes ``None``
        in ``degrade`` mode (the merge treats absence as empty
        evidence); in ``fail_fast``/``retry`` modes its failure
        propagates.  :class:`DeadlineExpired` always propagates -- the
        engine's degraded-answer machinery owns budget expiry.
        """
        # The ambient fault plan is a ContextVar and would be invisible
        # inside the pool threads; capture it here (the query thread)
        # so `--chaos shard:request:N=...` reaches the launch sites.
        plan = current_faults()
        results: list[dict[str, Any] | None] = []
        degraded = False

        def settle(shard: int, resolve: Callable[[], dict[str, Any]]) -> None:
            nonlocal degraded
            try:
                result = resolve()
            except DeadlineExpired:
                raise
            except ShardFailure as error:
                if self.config.failure_mode != "degrade":
                    raise
                results.append(None)
                degraded = True
                if shard not in self._down:
                    self._down.add(shard)
                    if self._on_shard_error is not None:
                        self._on_shard_error(shard, error)
            else:
                results.append(result)
                if shard in self._down:
                    self._down.discard(shard)

        if self._sequential:
            timings: list[float] = []
            for shard in range(self.shards):
                started = time.perf_counter()
                settle(
                    shard,
                    lambda shard=shard: self._shard_call(
                        shard, op, payload, deadline, plan
                    ),
                )
                timings.append((time.perf_counter() - started) * 1e3)
            self.last_shard_ms = timings
        else:
            self.last_shard_ms = None
            futures = [
                self._pool.submit(self._shard_call, shard, op, payload, deadline, plan)
                for shard in range(self.shards)
            ]
            for shard, future in enumerate(futures):
                settle(shard, future.result)
        self.last_service_ms = [
            result.get("service_ms") if result is not None else None
            for result in results
        ]
        return results, degraded

    def _shard_call(
        self,
        shard: int,
        op: str,
        payload: dict[str, Any],
        deadline: Deadline | None,
        plan: FaultPlan | None = None,
    ) -> dict[str, Any]:
        """One shard's answer, retried per ``config.failure_mode``.

        Retries are doubly bounded: backoff sleeps clamp to the
        query's remaining deadline, and the router-wide
        :attr:`retry_budget` (fed by real shard calls) stops retry
        amplification once sustained failures outpace traffic.
        """
        if self.config.failure_mode == "retry":
            if self.retry_budget is not None:
                self.retry_budget.note_request()
            policy = RetryPolicy(
                max_attempts=self.config.retry_max_attempts,
                base_delay_s=self.config.retry_base_delay_s,
                retryable=(ShardFailure,),
            )
            return policy.call(
                lambda: self._request_shard(shard, op, payload, deadline, plan),
                deadline=deadline,
                budget=self.retry_budget,
            )
        return self._request_shard(shard, op, payload, deadline, plan)

    def _request_shard(
        self,
        shard: int,
        op: str,
        payload: dict[str, Any],
        deadline: Deadline | None,
        plan: FaultPlan | None = None,
    ) -> dict[str, Any]:
        """One hedged request to a shard's replica group.

        Round-robin picks the primary; a backup fires after the hedge
        delay and the first good answer wins (losers cancelled).  A
        replica error rolls over to the next usable replica
        immediately.  Raises :class:`ShardFailure` when the group is
        exhausted and :class:`DeadlineExpired` when the budget runs out
        (locally or reported by the worker).
        """
        replicas = self._replica_order(shard)
        if deadline is not None:
            deadline.check(f"shard {shard} request")
            payload = dict(payload)
            payload["budget_ms"] = deadline.remaining() * 1e3
        sink: queue.Queue = queue.Queue()
        inflight: dict[Any, int] = {}
        cursor = 0
        last_error: Exception | None = None
        hedge_replica: Any = None

        def launch() -> Any:
            nonlocal cursor, last_error
            while cursor < len(replicas):
                replica = replicas[cursor]
                cursor += 1
                if not replica.breaker.allow():
                    continue
                self.recorder.count("shard.requests")
                try:
                    if plan is not None:
                        action = plan.draw(f"shard:request:{shard}")
                        if action is not None:
                            action.apply()
                    rid = replica.send(op, payload, sink)
                except Exception as error:
                    last_error = error
                    self._replica_failed(replica, error)
                    continue
                inflight[replica] = rid
                return replica
            return None

        def cancel_losers(winner: Any = None) -> None:
            for replica, rid in list(inflight.items()):
                if replica is not winner:
                    replica.cancel(rid)

        primary = launch()
        if primary is None:
            raise ShardFailure(
                f"shard {shard}: no replica accepted the request"
                + (f" ({last_error})" if last_error else "")
            )
        started = time.perf_counter()
        hedge_delay = self._hedge_delay(shard)
        while True:
            if not inflight:
                if launch() is None:
                    raise ShardFailure(
                        f"shard {shard}: all replicas failed ({last_error})"
                    )
                continue
            timeout: float | None = None
            if hedge_replica is None and cursor < len(replicas):
                elapsed = time.perf_counter() - started
                timeout = max(0.0, hedge_delay - elapsed)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    cancel_losers()
                    deadline.check(f"shard {shard} response")
                timeout = remaining if timeout is None else min(timeout, remaining)
            try:
                kind, replica, body = sink.get(timeout=timeout)
            except queue.Empty:
                if deadline is not None and deadline.expired:
                    cancel_losers()
                    deadline.check(f"shard {shard} response")
                if hedge_replica is None and cursor < len(replicas):
                    hedge_replica = launch()
                    if hedge_replica is not None:
                        self.recorder.count("shard.hedge.fired")
                continue
            if inflight.pop(replica, None) is None:
                continue  # stale answer from a cancelled twin
            if kind == "err":
                last_error = body
                self._replica_failed(replica, body)
                continue
            if not body.get("ok"):
                message = body.get("error", "unknown error")
                if body.get("kind") == "deadline":
                    # The worker ran out of the budget we gave it; that
                    # is the query's deadline, not the replica's fault.
                    replica.breaker.record_success()
                    cancel_losers()
                    raise DeadlineExpired(f"shard {shard}: {message}")
                error = ShardFailure(f"shard {shard}: {message}")
                last_error = error
                self._replica_failed(replica, error)
                continue
            replica.breaker.record_success()
            elapsed_ms = (time.perf_counter() - started) * 1e3
            self.recorder.observe("shard.latency_ms", elapsed_ms)
            self._latency[shard].append(elapsed_ms)
            if hedge_replica is not None:
                self.recorder.count(
                    "shard.hedge.won"
                    if replica is hedge_replica
                    else "shard.hedge.lost"
                )
            cancel_losers(winner=replica)
            return body

    def _replica_order(self, shard: int) -> list[Any]:
        """The shard's replicas, rotated round-robin per request."""
        group = self._replicas[shard]
        with self._rr_lock:
            offset = self._rr[shard]
            self._rr[shard] = (offset + 1) % len(group)
        return group[offset:] + group[:offset]

    def _replica_failed(self, replica: Any, error: Exception) -> None:
        replica.breaker.record_failure()
        self.recorder.count("shard.failures")

    def _hedge_delay(self, shard: int) -> float:
        """Seconds before a backup request fires for this shard."""
        fixed = self.config.serving_hedge_ms
        if fixed is not None:
            return fixed / 1e3
        window = self._latency[shard]
        if len(window) < HEDGE_MIN_SAMPLES:
            return DEFAULT_HEDGE_DELAY_S
        return percentile(sorted(window), 0.95) / 1e3

    # ------------------------------------------------------------------
    # Resurrection (driven by ReplicaSupervisor)
    # ------------------------------------------------------------------
    @contextmanager
    def _resurrection_gate(self) -> Iterator[None]:
        """Mutual exclusion for readmitting a replica into its group.

        The plain router only needs the round-robin lock (the group
        list is never swapped); :class:`LiveShardRouter` overrides this
        with the drain gate so readmission serialises with compaction's
        worker-fleet swap.
        """
        with self._rr_lock:
            yield

    def _swap_epoch(self) -> int:
        """Monotonic count of base swaps; a worker spawned before a
        swap must not be readmitted after it (it mapped the old file)."""
        return getattr(self, "swap_count", 0)

    def resurrect(self, shard: int, position: int) -> bool:
        """Replace a dead replica at ``(shard, position)`` with a fresh
        worker spawned from the shard file on disk.

        The expensive part -- spawn + ``hello`` handshake, which mmaps
        and verifies the shard container -- happens *outside* any gate,
        so queries keep flowing while the worker warms.  Readmission
        itself is a short critical section that first re-checks the
        swap epoch recorded before the spawn: if a compaction swapped
        the shard files meanwhile, the fresh worker mapped a stale
        file and is discarded (:class:`ShardFailure`; the supervisor
        retries, and the retry maps the new file).  A readmitted worker
        is decision-identical to one that never crashed: workers are
        pure functions of the frozen shard file and the per-request
        wire payload, and the live overlay always rides on the wire.

        Returns ``False`` when the router has no replica factory
        (replicas it cannot recreate) or the slot is alive again.
        Counts ``shard.resurrections``.
        """
        factory = self._replica_factory
        if factory is None or self._closed:
            return False
        group = self._replicas[shard]
        dead = group[position]
        if getattr(dead, "alive", False):
            return False
        epoch = self._swap_epoch()
        replica = factory(shard)
        try:
            hello = replica.request("hello", timeout=120.0)
            if int(hello.get("shard", -1)) != shard:
                raise ShardFailure(
                    f"shard {shard}: resurrected worker identifies as "
                    f"shard {hello.get('shard')}"
                )
        except Exception:
            replica.kill()
            raise
        if replica.breaker is None:
            replica.breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                reset_after_s=self.config.breaker_reset_s,
                recorder=self.recorder,
            )
        with self._resurrection_gate():
            if self._closed or self._swap_epoch() != epoch:
                replica.kill()
                raise ShardFailure(
                    f"shard {shard}: index swapped during resurrection"
                )
            group[position] = replica
        dead.kill()
        self.recorder.count("shard.resurrections")
        return True

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def wire_floor_ms(self, samples: int = 30) -> float:
        """Median ``hello`` round-trip: the fan-out's pure wire cost.

        No evidence compute happens on a ``hello``, so this is the
        frame-protocol + scheduling floor one shard hop pays; the
        shard-scaling benchmark combines it with the workers'
        self-reported ``service_ms`` to reconstruct the scatter-gather
        critical path free of single-core queueing noise.
        """
        timings = []
        for _ in range(max(1, samples)):
            started = time.perf_counter()
            self._replicas[0][0].request("hello", timeout=30.0)
            timings.append((time.perf_counter() - started) * 1e3)
        timings.sort()
        return timings[len(timings) // 2]

    def stats(self) -> dict[str, object]:
        """Engine stats plus a ``sharding`` section."""
        snapshot = super().stats()
        recorder = self.recorder
        snapshot["sharding"] = {
            "shards": self.shards,
            "replicas": [len(group) for group in self._replicas],
            "down": sorted(self._down),
            "requests": int(recorder.counter_value("shard.requests")),
            "failures": int(recorder.counter_value("shard.failures")),
            "hedge_fired": int(recorder.counter_value("shard.hedge.fired")),
            "hedge_won": int(recorder.counter_value("shard.hedge.won")),
            "hedge_lost": int(recorder.counter_value("shard.hedge.lost")),
            "resurrections": int(recorder.counter_value("shard.resurrections")),
        }
        if self.retry_budget is not None:
            snapshot["sharding"]["retry_budget"] = self.retry_budget.stats()
        if self.supervisor is not None:
            snapshot["sharding"]["supervisor"] = self.supervisor.stats()
        return snapshot

    def close(self) -> None:
        """Graft worker traces into the router's recorder and shut down.

        Each reachable replica is asked for its engine's
        :class:`~repro.obs.recorder.RecorderSnapshot`, which is merged
        under a ``shard.worker`` span (so ``--trace`` output shows
        per-shard kernel/cache activity nested under the router's
        trace); then workers are stopped and the pool drained.
        Idempotent.
        """
        if self._closed:
            return
        # Stop the supervisor before killing workers: a sweep racing
        # shutdown would resurrect the very replicas being stopped.
        if self.supervisor is not None:
            self.supervisor.close()
        self._closed = True
        for shard, group in enumerate(self._replicas):
            for position, replica in enumerate(group):
                try:
                    body = replica.request("stats", timeout=10.0)
                except Exception:
                    continue
                with self.recorder.span(
                    "shard.worker", shard=shard, replica=position
                ) as span:
                    pass
                self.recorder.merge(snapshot_from_json(body["snapshot"]), span)
        for group in self._replicas:
            for replica in group:
                try:
                    replica.shutdown()
                except Exception:
                    pass
        self._pool.shutdown(wait=False)

    def __repr__(self) -> str:
        return (
            f"ShardRouter(index={self.index.kb_name!r}, shards={self.shards}, "
            f"replicas={[len(group) for group in self._replicas]})"
        )


class LiveShardRouter(LiveServingMixin, ShardRouter):
    """A :class:`ShardRouter` over a live index: upserts, deletes,
    compaction and zero-drop swaps across the whole worker fleet.

    Workers keep serving their frozen shard files untouched; the
    router-side :class:`~repro.serving.live.LiveIndex` overlay makes
    the fleet's answers track the edits exactly:

    * **alpha / gamma / rules** already run on the router, so they see
      the live name map and neighbor view for free;
    * **value evidence** scatters the shared tokens present in the
      *base* (a worker's token table covers only those) together with
      the overlay's ``exclude`` dead-id list and live ``weights``
      overrides, and merges the delta segment's own evidence
      (:meth:`~repro.serving.live.LiveServingMixin.delta_match_evidence`)
      as one more virtual shard.  Posting partitions stay disjoint --
      base candidates live in their owner shard, delta candidates only
      in the virtual shard -- so every per-pair score still accumulates
      exactly once and the PR7 merge argument extends unchanged;
    * **batches** fall back to the router-local engine pipeline while a
      delta is active (counted ``shard.batch_local``): the batch wire
      format has no overlay channel, and a rarely-exercised parallel
      encoding of the overlay is exactly the kind of divergence this
      tier exists to avoid.  Compaction restores the scattered path.

    :meth:`compact` re-shards the fresh base and broadcasts ``reload``
    to every replica while the drain gate is held (no worker request
    can be in flight), writing each file via temp + atomic rename so
    replicas mapping the old inode keep their pages until they flip.  A
    replica that fails its reload is killed on the spot -- a dead
    replica degrades per ``failure_mode``, which is strictly better
    than a live one answering from a stale generation.
    """

    def _lookup(
        self, entity: EntityDescription, deadline: Deadline | None
    ) -> tuple[_Outcome, bool]:
        live = self.index
        if not live.delta_active:
            return super()._lookup(entity, deadline)
        if live.n2 == 0:
            return (None, None, None, 0, ()), False
        qkb = KnowledgeBase([entity], name="query", tokenizer=live.tokenizer)
        qstats = KBStatistics(
            qkb,
            top_k_name_attributes=self.config.name_attributes_k,
            top_n_relations=self.config.relations_n,
        )
        if deadline is not None:
            deadline.check("name evidence")
        alpha = self._alpha_match(qstats)
        shared = self.value_tokens(entity, qkb=qkb)
        # Delta-only tokens are absent from the workers' (full, frozen)
        # token tables; their evidence comes from the virtual shard.
        base_postings = live.base.postings
        payload: dict[str, Any] = {
            "tokens": [token for token in shared if token in base_postings]
        }
        exclude = live.dead_base_ids()
        if exclude:
            payload["exclude"] = exclude
        overrides = live.weight_overrides(shared)
        if overrides:
            payload["weights"] = overrides
        if alpha is not None:
            payload["probe"] = int(alpha)
        evidences, degraded = self._gather("match", payload, deadline)
        merged = [evidence for evidence in evidences if evidence is not None]
        merged.append(
            self.delta_match_evidence(
                shared, probe=int(alpha) if alpha is not None else None
            )
        )
        outcome = merge_single_evidence(self.config, self._cut, alpha, merged)
        return outcome, degraded

    def _match_many(self, batch: list[EntityDescription]):
        if self.index.delta_active:
            self.recorder.count("shard.batch_local")
            return MatchEngine._match_many(self, batch)
        return super()._match_many(batch)

    @contextmanager
    def _resurrection_gate(self):
        """Readmission serialises with compaction through the drain
        gate: ``_swap_workers`` runs under ``handle.exclusive()``, so a
        resurrected worker can never slip into the fleet while the
        shard files and worker generations are mid-swap."""
        with self.handle.exclusive():
            yield

    def _swap_workers(
        self, fresh: ResolutionIndex, path: Path | None, reshard: bool
    ) -> None:
        if path is None:
            raise ValueError(
                "a sharded live tier swaps through shard files on disk; "
                "set index_path (the CLI does) or pass compact(path=...)"
            )
        paths = shard_paths(path, self.shards)
        if reshard:
            for shard_index, target in zip(
                ShardPlanner(self.shards).plan(fresh), paths
            ):
                # Temp file + atomic rename: replicas still mmapping the
                # old file keep its (old-inode) pages until they reload.
                tmp = target.with_name(target.name + ".tmp")
                shard_index.save(tmp)
                os.replace(tmp, target)
        mmap = self._mmap_flag()
        for shard, group in enumerate(self._replicas):
            for replica in list(group):
                try:
                    body = replica.request(
                        "reload",
                        {"path": str(paths[shard]), "mmap": mmap},
                        timeout=120.0,
                    )
                    if int(body.get("shard", shard)) != shard:
                        raise ShardFailure(
                            f"shard {shard}: reloaded file identifies as "
                            f"shard {body.get('shard')}"
                        )
                except Exception as error:
                    # A replica that missed the swap must never answer
                    # again -- it would serve the old generation.  Kill
                    # it; the group degrades per failure_mode.
                    replica.kill()
                    self.recorder.count("shard.reload_failures")
                    if self._on_shard_error is not None:
                        exc = (
                            error
                            if isinstance(error, Exception)
                            else RuntimeError(str(error))
                        )
                        self._on_shard_error(shard, exc)

    def __repr__(self) -> str:
        live = self.index
        return (
            f"LiveShardRouter(index={live.kb_name!r}, shards={self.shards}, "
            f"generation={self.generation}, delta={live.delta.live_count})"
        )
