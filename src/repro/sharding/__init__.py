"""Sharded, replicated, hedged serving over the memory-mapped index.

The online tier of :mod:`repro.serving` answers queries from one
process.  This package partitions the KB2 side of a
:class:`~repro.serving.index.ResolutionIndex` across N worker
processes and serves through a scatter/gather router, keeping the
decision stream **bit-identical** to the single-process engine:

* :class:`~repro.sharding.planner.ShardPlanner` cuts one built index
  into N per-shard columnar v2 files (``repro index --shards N``).
  Entities are hash-partitioned by URI (``crc32 % N``); every shard
  keeps the full token table plus the global per-token Entity
  Frequency, so block weights and purging thresholds are computed
  identically everywhere.  Each shard file is a fully valid
  ``ResolutionIndex`` -- the stock engine loads it unchanged, mmap
  included, and ``repro index --migrate`` rewrites it like any other
  v2 file.
* :class:`~repro.sharding.worker.ShardWorker` runs a ``MatchEngine``
  over one shard and answers *evidence* requests over length-prefixed
  JSONL frames (:mod:`repro.sharding.protocol`) on stdin/stdout.
* :class:`~repro.sharding.router.ShardRouter` fans queries and batches
  out to R replicas per shard (hedged after a p95-based delay, first
  answer wins, loser cancelled), merges per-shard top-K evidence under
  the global ``(-score, id)`` order (:mod:`repro.sharding.merge`) and
  replays rules R1-R4 via the exact engine code path.  Shard failures
  degrade the answer (``degraded`` on the wire + an error record)
  instead of failing the query; per-replica circuit breakers and
  remaining-budget deadline decay come from :mod:`repro.resilience`.

See ``docs/sharding.md`` for the partitioning proof, the hedging
policy, the failure semantics and the wire protocol.
"""

from repro.sharding.merge import merge_batch_evidence, merge_single_evidence
from repro.sharding.planner import ShardPlanner, partition_of, shard_paths
from repro.sharding.protocol import (
    ProtocolError,
    read_frame,
    snapshot_from_json,
    snapshot_to_json,
    write_frame,
)
from repro.sharding.router import (
    InlineReplica,
    LiveShardRouter,
    ProcessReplica,
    ShardFailure,
    ShardRouter,
)
from repro.sharding.worker import ShardWorker

__all__ = [
    "InlineReplica",
    "LiveShardRouter",
    "ProcessReplica",
    "ProtocolError",
    "ShardFailure",
    "ShardPlanner",
    "ShardRouter",
    "ShardWorker",
    "merge_batch_evidence",
    "merge_single_evidence",
    "partition_of",
    "read_frame",
    "shard_paths",
    "snapshot_from_json",
    "snapshot_to_json",
    "write_frame",
]
