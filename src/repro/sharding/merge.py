"""Merge per-shard evidence into the unsharded engine's exact answer.

Every float a worker ships was accumulated wholly inside one shard
(posting lists partition disjointly; weights and purging thresholds
use global Entity Frequencies), so merging is pure *re-ranking* under
the engine's total order ``(-score, id)`` -- implemented by the same
:func:`repro.kernels.select_row` the engine uses, which is insensitive
to input permutation.  The rules then replay through
:func:`repro.serving.engine.apply_single_rules`, the code path the
single-process engine itself runs.

Why the merged answer is bit-identical (see ``docs/sharding.md`` for
the long form):

* **Rows** -- each shard ships its top ``keep`` pairs; the global top
  ``keep`` is a subset of the union, so ``select_row`` over the
  concatenation reproduces the global ranking, including the optional
  ``serving_candidate_cap`` truncation (applied only when the union
  exceeds the cap -- exactly when the unsharded row would truncate).
* **Sweep ids** (single queries, uncapped) -- rules R1-R3 claim at
  most two entities before the R3 side-2 sweep, so the sweep's
  strongest proposal is among the three smallest *touched* ids; each
  shard's :data:`~repro.serving.engine.SWEEP_MARGIN` smallest cover
  them.  With reciprocity on, surviving sweep proposals are further
  confined to the pruned value list plus the (probed) alpha.  Replay
  over this subset therefore keeps the true winner while every extra
  id it proposes is one the unsharded sweep proposed too.
* **Columns** (batches, uncapped) -- a KB2 entity's candidate column
  lives wholly in its owner shard, so the shard's pruned column *is*
  the global one and columns merge by disjoint union.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.config import MinoanERConfig
from repro.graph.blocking_graph import CandidateList
from repro.graph.pruning import adaptive_cut
from repro.kernels import select_row
from repro.serving.engine import _Outcome, _top_scores, apply_single_rules

__all__ = ["merge_batch_evidence", "merge_single_evidence"]


def _concat_rows(rows: Sequence[Sequence[Sequence[Any]]]) -> tuple[list[int], list[float]]:
    ids: list[int] = []
    sums: list[float] = []
    for row in rows:
        for candidate, score in row:
            ids.append(int(candidate))
            sums.append(float(score))
    return ids, sums


def _merge_ranked(
    rows: Sequence[Sequence[Sequence[Any]]], k: int, cut
) -> CandidateList:
    """Top-K of the union of per-shard ranked rows, ``(-score, id)`` order.

    A candidate id lives in exactly one shard (posting lists partition
    by entity), so the decorated ``(score, -id)`` tuples are pairwise
    distinct and one descending C-level sort realises the exact total
    order :func:`select_row` would produce over the concatenation --
    and since each shard's row arrives already ranked, Timsort merges
    the descending runs by galloping instead of re-sorting.  No
    ``int``/``float`` casts: rows come off the wire as native JSON
    numbers (the engine casts when it builds them).  This is the
    router's per-query merge hot path; its cost is what scales with
    shard count on the scatter-gather critical path.
    """
    decorated = [(score, -candidate) for row in rows for candidate, score in row]
    decorated.sort(reverse=True)
    ranked: CandidateList = tuple((-negated, score) for score, negated in decorated[:k])
    if cut is not None:
        ranked = adaptive_cut(ranked, cut[0], cut[1])
    return ranked


def _capped(
    ids: list[int], sums: list[float], cap: int | None
) -> tuple[list[int], list[float]]:
    """The engine's candidate-cap truncation, applied to a merged row."""
    if cap is None or len(ids) <= cap:
        return ids, sums
    capped = select_row(ids, sums, cap)
    return [candidate for candidate, _ in capped], [score for _, score in capped]


def merge_single_evidence(
    config: MinoanERConfig,
    cut,
    alpha: int | None,
    evidences: Sequence[dict[str, Any]],
) -> _Outcome:
    """One query's outcome from per-shard ``match_evidence`` payloads.

    ``alpha`` is the router's locally-computed name match and ``cut``
    the engine's adaptive-pruning tuple.  ``evidences`` holds the
    surviving shards' payloads (a failed shard is simply absent --
    the merge then yields the best degraded answer the survivors
    support).  Returns the engine's ``_Outcome`` shape.
    """
    k = config.candidates_k
    cap = config.serving_candidate_cap
    if cap is not None:
        ids, sums = _concat_rows([evidence["row"] for evidence in evidences])
        ids, sums = _capped(ids, sums, cap)
        value_list = select_row(ids, sums, k, cut)
        sweep: Sequence[int] = sorted(ids)
    else:
        value_list = _merge_ranked([evidence["row"] for evidence in evidences], k, cut)
        sweep_set = {
            int(candidate)
            for evidence in evidences
            for candidate in evidence["mins"]
        }
        sweep_set.update(candidate for candidate, _ in value_list)
        if alpha is not None and any(
            evidence["probe"] for evidence in evidences
        ):
            sweep_set.add(int(alpha))
        sweep = sorted(sweep_set)
    top = _top_scores(value_list)
    matched = apply_single_rules(config, alpha, value_list, sweep)
    if matched is None:
        return None, None, None, len(value_list), top
    candidate, rule, score = matched
    return candidate, rule, score, len(value_list), top


def merge_batch_evidence(
    config: MinoanERConfig,
    cut,
    n_entities: int,
    n2: int,
    evidences: Sequence[dict[str, Any]],
) -> tuple[list[CandidateList], list[CandidateList]]:
    """A batch's ``(value_1, value_2)`` from per-shard ``batch_evidence``.

    Reproduces exactly what the engine's ``value_topk`` (uncapped) or
    ``_capped_value_topk`` (capped) would return for the whole batch
    against the unsharded index; the router feeds the result to
    ``MatchEngine._assemble_graph``.
    """
    k = config.candidates_k
    cap = config.serving_candidate_cap
    value_1: list[CandidateList] = []
    if cap is None:
        for position in range(n_entities):
            ids, sums = _concat_rows(
                [evidence["rows"][position] for evidence in evidences]
            )
            value_1.append(select_row(ids, sums, k, cut))
        value_2: list[CandidateList] = [() for _ in range(n2)]
        for evidence in evidences:
            for candidate, ranked in evidence["cols"].items():
                value_2[int(candidate)] = tuple(
                    (int(entity), float(score)) for entity, score in ranked
                )
        return value_1, value_2

    # Capped: columns are rebuilt from the *capped* merged rows, in
    # batch-entity order -- mirroring ``_capped_value_topk``.
    column_ids: list[list[int]] = [[] for _ in range(n2)]
    column_sums: list[list[float]] = [[] for _ in range(n2)]
    for position in range(n_entities):
        ids, sums = _concat_rows(
            [evidence["rows"][position] for evidence in evidences]
        )
        ids, sums = _capped(ids, sums, cap)
        value_1.append(select_row(ids, sums, k, cut))
        for candidate, score in zip(ids, sums):
            column_ids[candidate].append(position)
            column_sums[candidate].append(score)
    value_2 = [
        select_row(ids, sums, k, cut)
        for ids, sums in zip(column_ids, column_sums)
    ]
    return value_1, value_2
