"""Length-prefixed JSONL framing for the shard wire protocol.

A frame is the ASCII decimal byte length of a canonical-JSON message,
a newline, the message, a newline::

    47\\n{"id":3,"op":"match","entity":{...}}\\n

The explicit length makes framing independent of message content (no
embedded-newline hazards) while staying trivially debuggable -- a
captured stream is readable JSONL with interleaved lengths.  Messages
are plain JSON objects; request/response correlation is by ``id``.

Requests (router -> worker): ``op`` of ``hello`` (handshake +
shard descriptor), ``match`` (single-query evidence; carries the
router's alpha ``probe`` and optional ``budget_ms``, plus the live
overlay's ``exclude`` dead-id list and ``weights`` overrides when the
router has pending edits -- see ``docs/live_index.md``), ``batch``
(batch evidence), ``stats`` (engine stats + a
:class:`~repro.obs.recorder.RecorderSnapshot` for trace grafting),
``reload`` (zero-drop swap onto a freshly compacted shard file; the
response is the new ``hello`` descriptor), ``shutdown``; plus
``{"cancel": id}`` (no response -- a hedged request whose twin already
won is dropped if still queued).

Responses (worker -> router) echo ``id`` and carry ``ok``; failures
are ``{"ok": false, "error": ..., "kind": "deadline" | "error"}`` so
the router can distinguish budget expiry (degrade like the engine
would) from worker faults (count against the replica's breaker).

Scores are floats and survive the trip bit-exactly: python's
``json`` emits ``repr``-round-trippable doubles.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

from repro.obs.recorder import RecorderSnapshot, Span

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "read_frame",
    "snapshot_from_json",
    "snapshot_to_json",
    "write_frame",
]

MAX_FRAME_BYTES = 256 * 1024 * 1024
"""Upper bound on one frame's payload; a corrupt length prefix must
not make the reader allocate unbounded memory."""


class ProtocolError(RuntimeError):
    """A malformed frame: bad length prefix, truncation, or non-JSON."""


def write_frame(stream: BinaryIO, message: dict[str, Any]) -> None:
    """Serialise one message onto ``stream`` and flush it."""
    data = json.dumps(message, separators=(",", ":"), ensure_ascii=False).encode(
        "utf-8"
    )
    stream.write(b"%d\n%s\n" % (len(data), data))
    stream.flush()


def read_frame(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one message from ``stream``; None on clean end-of-stream.

    Raises :class:`ProtocolError` on a malformed length line, a frame
    truncated mid-payload, an oversized length, or non-JSON payload.
    """
    line = stream.readline()
    if not line:
        return None
    try:
        length = int(line)
    except ValueError:
        raise ProtocolError(f"bad frame length prefix {line[:64]!r}") from None
    if not 0 <= length <= MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} out of bounds")
    data = stream.read(length + 1)
    if len(data) < length + 1:
        raise ProtocolError(
            f"truncated frame: expected {length + 1} bytes, got {len(data)}"
        )
    try:
        message = json.loads(data[:length])
    except ValueError as error:
        raise ProtocolError(f"frame payload is not JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(message).__name__}")
    return message


def _json_scalar(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def snapshot_to_json(snapshot: RecorderSnapshot) -> dict[str, Any]:
    """A :class:`RecorderSnapshot` as a JSON-safe object.

    Span attributes are coerced to scalars (``str`` fallback); every
    numeric field survives exactly.
    """
    return {
        "trace_id": snapshot.trace_id,
        "duration_s": snapshot.duration_s,
        "spans": [
            [
                span.name,
                span.span_id,
                span.parent_id,
                span.depth,
                span.start,
                span.seconds,
                span.status,
                {key: _json_scalar(value) for key, value in span.attributes.items()},
            ]
            for span in snapshot.spans
        ],
        "counters": dict(snapshot.counters),
        "gauges": dict(snapshot.gauges),
        "gauge_times": dict(snapshot.gauge_times),
        "histograms": {
            name: [count, total, minimum, maximum, list(window)]
            for name, (count, total, minimum, maximum, window) in snapshot.histograms.items()
        },
    }


def snapshot_from_json(payload: dict[str, Any]) -> RecorderSnapshot:
    """Rebuild the snapshot :func:`snapshot_to_json` serialised."""
    return RecorderSnapshot(
        trace_id=payload["trace_id"],
        duration_s=payload["duration_s"],
        spans=tuple(
            Span(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                depth=depth,
                start=start,
                seconds=seconds,
                status=status,
                attributes=dict(attributes),
            )
            for name, span_id, parent_id, depth, start, seconds, status, attributes in payload["spans"]
        ),
        counters=dict(payload["counters"]),
        gauges=dict(payload["gauges"]),
        gauge_times=dict(payload["gauge_times"]),
        histograms={
            name: (entry[0], entry[1], entry[2], entry[3], tuple(entry[4]))
            for name, entry in payload["histograms"].items()
        },
    )
