"""A shard-serving worker process: one engine, one frame loop.

``python -m repro.sharding SHARD_FILE [--mmap] [--config JSON]``
loads one per-shard index, wraps it in a
:class:`~repro.serving.engine.MatchEngine` and answers evidence
requests framed by :mod:`repro.sharding.protocol` on stdin/stdout
(stdout carries *only* frames; diagnostics go to stderr).

The worker is deliberately thin: it never runs the matching rules or
name evidence -- the router does, over the merged evidence -- so a
worker request is a pure function of its shard's frozen structures.
Deadlines arrive as ``budget_ms`` (the router's remaining budget at
send time) and expire into ``kind: "deadline"`` error responses; any
other exception becomes ``kind: "error"`` without killing the loop.

Cancellation is best-effort: the loop is single-threaded, so a
``{"cancel": id}`` frame only suppresses a request still queued behind
the one being processed (the router ignores stale responses anyway).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from typing import Any, BinaryIO

from repro.core.config import config_from_dict
from repro.obs import Recorder
from repro.resilience.policy import Deadline, DeadlineExpired
from repro.serving.engine import MatchEngine
from repro.serving.index import ResolutionIndex
from repro.serving.io import entity_from_json
from repro.sharding.protocol import ProtocolError, read_frame, snapshot_to_json, write_frame

__all__ = ["ShardWorker", "main"]


class ShardWorker:
    """Request handler over one shard's :class:`MatchEngine`.

    Usable in-process (the router's :class:`InlineReplica` and the
    property tests call :meth:`handle` directly, round-tripping
    messages through JSON for wire fidelity) or as a subprocess via
    :meth:`serve` / :func:`main`.
    """

    def __init__(self, engine: MatchEngine):
        self.engine = engine
        index = engine.index
        info = index.shard_info or {}
        self.shard_index = int(info.get("index", 0))
        self.shard_count = int(info.get("count", 1))

    def describe(self) -> dict[str, Any]:
        """The ``hello`` payload: shard identity + load provenance."""
        index = self.engine.index
        load_info = index.load_info or {}
        return {
            "shard": self.shard_index,
            "count": self.shard_count,
            "n2": index.n2,
            "tokens": len(index.postings),
            "mmap": bool(load_info.get("mmap")),
            "kb": index.kb_name,
        }

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Answer one decoded request message.

        Evidence responses carry ``service_ms``, the worker's own
        compute time for the request -- the part of a round trip that
        shrinks with the shard, free of wire and scheduling noise.  The
        shard-scaling benchmark reads it to separate per-shard work
        from fan-out overhead.
        """
        rid = request.get("id")
        op = request.get("op")
        started = time.perf_counter()
        try:
            if op == "hello":
                result = self.describe()
            elif op == "match":
                # Routers ship the purged token list they computed once
                # on the full index instead of the (larger) entity; the
                # entity form stays supported for direct callers.
                result = self.engine.match_evidence(
                    entity_from_json(request["entity"], "query")
                    if "entity" in request
                    else None,
                    probe=request.get("probe"),
                    deadline=self._deadline(request),
                    tokens=request.get("tokens"),
                    exclude=request.get("exclude"),
                    weights=request.get("weights"),
                )
            elif op == "batch":
                result = self.engine.batch_evidence(
                    [
                        entity_from_json(entity, f"query-{i}")
                        for i, entity in enumerate(request["entities"])
                    ],
                    deadline=self._deadline(request),
                )
            elif op == "reload":
                # Zero-drop swap: adopt a freshly compacted shard file.
                # The router holds its drain gate while broadcasting, so
                # no evidence request is in flight; loading before the
                # old engine is dropped keeps the worker answerable if
                # the load raises (the router kills the replica then).
                result = self._reload(request)
            elif op == "stats":
                result = {
                    "stats": self.engine.stats(),
                    "snapshot": snapshot_to_json(self.engine.recorder.snapshot()),
                }
            elif op == "shutdown":
                result = {"bye": True}
            else:
                return {
                    "id": rid,
                    "ok": False,
                    "error": f"unknown op {op!r}",
                    "kind": "error",
                }
        except DeadlineExpired as error:
            return {"id": rid, "ok": False, "error": str(error), "kind": "deadline"}
        except Exception as error:  # noqa: BLE001 - the loop must survive
            return {
                "id": rid,
                "ok": False,
                "error": f"{type(error).__name__}: {error}",
                "kind": "error",
            }
        if op in ("match", "batch"):
            result["service_ms"] = (time.perf_counter() - started) * 1e3
        return {"id": rid, "ok": True, **result}

    def _reload(self, request: dict[str, Any]) -> dict[str, Any]:
        """Load the shard file named by ``request["path"]`` and flip the
        engine onto it, preserving config and recorder; returns the new
        ``hello`` payload so the router can sanity-check the identity."""
        old = self.engine
        mmap = request.get("mmap")
        if mmap is None:
            mmap = bool((old.index.load_info or {}).get("mmap"))
        index = ResolutionIndex.load(request["path"], mmap=bool(mmap))
        self.engine = MatchEngine(index, old.config, recorder=old.recorder)
        info = index.shard_info or {}
        self.shard_index = int(info.get("index", 0))
        self.shard_count = int(info.get("count", 1))
        return self.describe()

    @staticmethod
    def _deadline(request: dict[str, Any]) -> Deadline | None:
        budget_ms = request.get("budget_ms")
        return Deadline.after_ms(budget_ms) if budget_ms is not None else None

    def serve(self, reader: BinaryIO, writer: BinaryIO) -> None:
        """Answer frames until end-of-stream or a ``shutdown`` request."""
        cancelled: set[Any] = set()
        while True:
            try:
                frame = read_frame(reader)
            except ProtocolError as error:
                print(f"shard {self.shard_index}: {error}", file=sys.stderr)
                return
            if frame is None:
                return
            if "cancel" in frame and "op" not in frame:
                cancelled.add(frame["cancel"])
                continue
            if frame.get("id") in cancelled:
                cancelled.discard(frame.get("id"))
                continue
            write_frame(writer, self.handle(frame))
            if frame.get("op") == "shutdown":
                return


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sharding",
        description="Serve shard evidence over stdin/stdout frames.",
    )
    parser.add_argument("shard", help="per-shard index file (columnar v2)")
    parser.add_argument(
        "--mmap",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="memory-map the shard instead of decoding it eagerly",
    )
    parser.add_argument(
        "--config",
        default=None,
        help="JSON config dict overriding the one baked into the shard",
    )
    args = parser.parse_args(argv)

    index = ResolutionIndex.load(args.shard, mmap=args.mmap)
    config = (
        config_from_dict(json.loads(args.config))
        if args.config is not None
        else index.config
    )
    engine = MatchEngine(index, config, recorder=Recorder())
    # The loaded index and engine are immortal for the process lifetime;
    # freezing them keeps the cyclic GC's full collections (triggered by
    # per-request JSON churn) from rescanning the whole object graph --
    # multi-ms tail pauses on large shards otherwise.
    gc.collect()
    gc.freeze()
    ShardWorker(engine).serve(sys.stdin.buffer, sys.stdout.buffer)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
