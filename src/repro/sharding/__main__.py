"""``python -m repro.sharding`` runs one shard worker over stdin/stdout.

A separate entry module (rather than ``-m repro.sharding.worker``) so
runpy does not re-execute a module the package already imported.
"""

from repro.sharding.worker import main

if __name__ == "__main__":
    raise SystemExit(main())
