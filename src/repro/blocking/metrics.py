"""Blocking quality metrics: the numbers behind the paper's Table 2.

For a block collection and a ground truth of matching ``(eid1, eid2)``
pairs we report:

* ``recall`` (pair completeness): fraction of ground-truth pairs that
  co-occur in at least one block;
* ``precision`` (pair quality): ground-truth pairs found per suggested
  comparison, where comparisons are counted per block occurrence
  (``||B||``), exactly as Table 2 does;
* ``f1``: their harmonic mean.

Values are fractions in [0, 1]; the reporting layer renders them as
percentages like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.blocking.base import BlockCollection


@dataclass(frozen=True)
class BlockingReport:
    """Aggregate statistics of one or more block collections."""

    num_blocks: int
    total_comparisons: int
    distinct_pairs: int
    matches_covered: int
    total_matches: int

    @property
    def recall(self) -> float:
        """Pair completeness: covered matches / all matches."""
        if self.total_matches == 0:
            return 0.0
        return self.matches_covered / self.total_matches

    @property
    def precision(self) -> float:
        """Pair quality: covered matches / suggested comparisons (``||B||``)."""
        if self.total_comparisons == 0:
            return 0.0
        return self.matches_covered / self.total_comparisons

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)


def evaluate_blocks(
    collections: Iterable[BlockCollection],
    ground_truth: set[tuple[int, int]],
) -> BlockingReport:
    """Evaluate the union of several block collections against ground truth.

    ``ground_truth`` holds ``(eid1, eid2)`` id pairs (KB1 id, KB2 id).
    """
    collections = list(collections)
    covered: set[tuple[int, int]] = set()
    distinct: set[tuple[int, int]] = set()
    total_comparisons = 0
    num_blocks = 0
    for collection in collections:
        num_blocks += len(collection)
        total_comparisons += collection.total_comparisons()
        for block in collection:
            side2 = set(block.side2)
            for eid1 in block.side1:
                for eid2 in side2:
                    pair = (eid1, eid2)
                    distinct.add(pair)
                    if pair in ground_truth:
                        covered.add(pair)
    return BlockingReport(
        num_blocks=num_blocks,
        total_comparisons=total_comparisons,
        distinct_pairs=len(distinct),
        matches_covered=len(covered),
        total_matches=len(ground_truth),
    )
