"""Block purging: discard oversized (stopword-like) token blocks.

Section 3.3: "we bound the number of computations by removing
excessively large blocks that correspond to highly frequent tokens
(e.g., stop-words)", citing the Block Purging of Papadakis et al.
(TKDE 2013).  The paper reports that after purging, the retained blocks
"involve two orders of magnitude fewer comparisons than the brute-force
approach, without any significant impact on recall" (Table 2 confirms:
0.08%-1.3% of the Cartesian product across the four datasets).

This module implements purging as a *comparison budget*: blocks are
admitted in ascending order of their suggested comparisons (small,
discriminative blocks first -- these carry the valueSim signal) until
the cumulative count reaches ``budget_ratio`` of the Cartesian product;
every larger block is dropped.  A token frequent enough to overflow the
budget behaves like a stopword and carries almost no matching evidence
anyway, since its blocks would contribute ``1/log2(|b1|*|b2|+1) ~ 0``.

The threshold is a whole cardinality level: blocks with equally many
comparisons are kept or dropped together, so the result does not depend
on tie order.
"""

from __future__ import annotations

from typing import Iterable

from repro.blocking.base import BlockCollection

DEFAULT_BUDGET_RATIO = 0.01
"""Retain ~1% of the brute-force comparisons (two orders of magnitude
fewer), the regime the paper's Table 2 reports."""

MIN_BUDGET = 1000
"""Purging exists to bound a quadratic blowup; below this many
comparisons there is nothing to bound, so tiny inputs keep all blocks."""


def purging_threshold_from_counts(
    counts: Iterable[int],
    cartesian: int,
    budget_ratio: float = DEFAULT_BUDGET_RATIO,
) -> int:
    """:func:`purging_threshold` over bare per-block comparison counts.

    The serving engine uses this form: at query time a block is a
    ``(query entities, posting list)`` pair whose comparison count is
    known without materialising a :class:`~repro.blocking.base.Block`.
    """
    if budget_ratio <= 0:
        raise ValueError(f"budget_ratio must be > 0, got {budget_ratio}")
    per_level: dict[int, int] = {}
    for comparisons in counts:
        per_level[comparisons] = per_level.get(comparisons, 0) + comparisons
    levels = sorted(per_level)
    if not levels:
        return 0
    budget = max(budget_ratio * cartesian, float(MIN_BUDGET))
    threshold = levels[0]
    cumulative = 0
    for level in levels:
        cumulative += per_level[level]
        if cumulative > budget and level != levels[0]:
            break
        threshold = level
    return threshold


def purging_threshold(
    blocks: BlockCollection,
    cartesian: int,
    budget_ratio: float = DEFAULT_BUDGET_RATIO,
) -> int:
    """Maximum per-block comparison count retained by the budget.

    Admits whole cardinality levels (ascending by per-block comparisons)
    while the running total stays within ``budget_ratio * cartesian``.
    At least the smallest level is always kept, so purging never empties
    a non-empty collection.
    """
    return purging_threshold_from_counts(
        (block.comparisons for block in blocks), cartesian, budget_ratio
    )


def purge_blocks(
    blocks: BlockCollection,
    cartesian: int | None = None,
    budget_ratio: float = DEFAULT_BUDGET_RATIO,
    max_comparisons: int | None = None,
) -> BlockCollection:
    """Drop blocks suggesting more comparisons than the purging threshold.

    Parameters
    ----------
    blocks:
        The collection to purge (typically token blocks).
    cartesian:
        ``|E1| * |E2|``, the brute-force comparison count the budget is
        relative to.  Defaults to the collection's own total comparisons
        (a conservative stand-in when the KB sizes are unknown).
    budget_ratio:
        Fraction of the Cartesian product the retained blocks may
        suggest in total.
    max_comparisons:
        Manual override: when given, the budget logic is skipped and
        blocks with more comparisons than this are dropped.

    Returns a *new* collection; the input is never mutated.
    """
    if max_comparisons is None:
        if cartesian is None:
            cartesian = blocks.total_comparisons()
        max_comparisons = purging_threshold(blocks, cartesian, budget_ratio)
    return blocks.filter(lambda block: block.comparisons <= max_comparisons)
