"""Composite blocking: token blocks, name blocks, purging, quality metrics.

Implements section 3 of the paper.  Blocking reduces the candidate-pair
search space: two entities are candidate matches iff they co-occur in at
least one block.  MinoanER's composite scheme is the disjunction of

* **name blocking** -- one block per name value shared by both KBs, and
* **token blocking** -- one block per token shared by both KBs
  (which doubles as the evidence from which valueSim is derived).

Oversized token blocks (stopword-like tokens) are removed by
**block purging** before graph construction.
"""

from repro.blocking.base import Block, BlockCollection
from repro.blocking.lsh import lsh_blocks
from repro.blocking.metrics import BlockingReport, evaluate_blocks
from repro.blocking.name_blocking import name_blocks, normalize_name
from repro.blocking.purging import purge_blocks
from repro.blocking.sorted_neighborhood import sorted_neighborhood_blocks
from repro.blocking.token_blocking import token_blocks

__all__ = [
    "Block",
    "BlockCollection",
    "BlockingReport",
    "evaluate_blocks",
    "lsh_blocks",
    "name_blocks",
    "normalize_name",
    "purge_blocks",
    "sorted_neighborhood_blocks",
    "token_blocks",
]
