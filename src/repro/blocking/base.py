"""Block and block-collection primitives for clean-clean ER.

In clean-clean ER each block is bipartite: it holds the entities of KB1
and of KB2 that share the block's key.  Only cross-KB pairs are
candidate comparisons, so a block suggests ``|side1| * |side2|``
comparisons (the paper's ``|b1| * |b2|``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class Block:
    """A bipartite block: entities of each KB sharing one blocking key.

    Parameters
    ----------
    key:
        The blocking key (a token or a normalised name).
    side1 / side2:
        Entity ids from KB1 / KB2 indexed under ``key``.

    >>> b = Block("bray", [0, 3], [7])
    >>> b.comparisons
    2
    >>> b.is_singleton_pair
    False
    """

    __slots__ = ("key", "side1", "side2")

    def __init__(self, key: str, side1: Sequence[int], side2: Sequence[int]):
        self.key = key
        self.side1: tuple[int, ...] = tuple(side1)
        self.side2: tuple[int, ...] = tuple(side2)

    @property
    def comparisons(self) -> int:
        """Number of cross-KB candidate pairs this block suggests."""
        return len(self.side1) * len(self.side2)

    @property
    def cardinality(self) -> int:
        """Total entities indexed in the block (block assignments)."""
        return len(self.side1) + len(self.side2)

    @property
    def is_singleton_pair(self) -> bool:
        """True iff the block contains exactly one entity from each KB.

        Name blocks with this shape produce ``alpha = 1`` edges: the two
        entities share a name *and nobody else uses it* (section 3.2).
        """
        return len(self.side1) == 1 and len(self.side2) == 1

    def pairs(self) -> Iterator[tuple[int, int]]:
        """All cross-KB candidate pairs ``(eid1, eid2)`` of the block."""
        for eid1 in self.side1:
            for eid2 in self.side2:
                yield eid1, eid2

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        return (self.key, self.side1, self.side2) == (other.key, other.side1, other.side2)

    def __hash__(self) -> int:
        return hash((self.key, self.side1, self.side2))

    def __repr__(self) -> str:
        return f"Block({self.key!r}, {len(self.side1)}x{len(self.side2)})"


class BlockCollection:
    """An ordered collection of blocks with aggregate statistics.

    Iteration order is deterministic (insertion order), which keeps the
    whole pipeline reproducible.
    """

    def __init__(self, blocks: Iterable[Block] = (), kind: str = "blocks"):
        self.kind = kind
        self._blocks: list[Block] = list(blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __getitem__(self, index: int) -> Block:
        return self._blocks[index]

    def add(self, block: Block) -> None:
        self._blocks.append(block)

    def total_comparisons(self) -> int:
        """Sum of per-block comparisons -- the paper's ``||B||``.

        Pairs co-occurring in several blocks are counted once per block,
        exactly as Table 2 counts them.
        """
        return sum(block.comparisons for block in self._blocks)

    def total_assignments(self) -> int:
        """Sum of block cardinalities (entity-to-block assignments)."""
        return sum(block.cardinality for block in self._blocks)

    def distinct_pairs(self) -> set[tuple[int, int]]:
        """Deduplicated candidate pairs across all blocks.

        Materialises the pair set -- fine after purging, unbounded
        before it; callers that only need counts should prefer
        :meth:`total_comparisons`.
        """
        pairs: set[tuple[int, int]] = set()
        for block in self._blocks:
            pairs.update(block.pairs())
        return pairs

    def filter(self, predicate) -> "BlockCollection":
        """New collection with only the blocks satisfying ``predicate``."""
        return BlockCollection((b for b in self._blocks if predicate(b)), kind=self.kind)

    def __repr__(self) -> str:
        return f"BlockCollection({self.kind!r}, {len(self._blocks)} blocks)"
