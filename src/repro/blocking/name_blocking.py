"""Name blocking (section 3.1): one block per shared entity name.

Entity names are the literal values of each KB's top-k most important
attributes (discovered from statistics, no schema alignment -- see
:class:`repro.kb.statistics.KBStatistics`).  A block is created for
every normalised name value used in both KBs.  Blocks containing exactly
one entity per KB ("they, and only they, have the same name") later
yield ``alpha = 1`` edges and drive matching rule R1.
"""

from __future__ import annotations

import re
from collections import defaultdict

from repro.blocking.base import Block, BlockCollection
from repro.kb.statistics import KBStatistics

_WHITESPACE = re.compile(r"\s+")


def normalize_name(name: str) -> str:
    """Case-fold and collapse whitespace so near-identical names block together.

    >>> normalize_name("  J.  Lake ")
    'j. lake'
    """
    return _WHITESPACE.sub(" ", name.strip().lower())


def name_blocks(stats1: KBStatistics, stats2: KBStatistics) -> BlockCollection:
    """Build the name block collection ``B_N`` for a clean-clean pair.

    ``stats1``/``stats2`` determine which attributes act as names in each
    KB.  Empty names (whitespace-only values) are ignored.  Blocks are
    emitted in sorted name order for determinism.
    """
    index1: dict[str, list[int]] = defaultdict(list)
    index2: dict[str, list[int]] = defaultdict(list)
    for index, stats in ((index1, stats1), (index2, stats2)):
        for eid in range(len(stats.kb)):
            seen: set[str] = set()
            for raw in stats.names(eid):
                name = normalize_name(raw)
                if name and name not in seen:
                    seen.add(name)
                    index[name].append(eid)
    shared = sorted(set(index1) & set(index2))
    collection = BlockCollection(kind="name")
    for name in shared:
        collection.add(Block(name, index1[name], index2[name]))
    return collection
