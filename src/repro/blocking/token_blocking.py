"""Token blocking (section 3.1): one block per shared token.

Token blocking is the parameter-free, schema-agnostic workhorse of the
composite scheme: every token appearing in literal values of *both* KBs
defines a block containing every entity (from either KB) whose values
contain it.  Block sizes equal the token's Entity Frequencies, so
``valueSim`` can later be read off the blocks without re-tokenising
(``beta`` accumulation in Algorithm 1, lines 10-18).
"""

from __future__ import annotations

from repro.blocking.base import Block, BlockCollection
from repro.kb.knowledge_base import KnowledgeBase


def token_blocks(kb1: KnowledgeBase, kb2: KnowledgeBase) -> BlockCollection:
    """Build the token block collection ``B_T`` for a clean-clean pair.

    Only tokens present in both KBs produce blocks: a block whose
    entities all come from one KB suggests no cross-KB comparison and
    carries no matching evidence.

    The result is deterministic: blocks are emitted in sorted token
    order and each side preserves ascending entity ids (the KB token
    index is built in entity order).
    """
    index1 = kb1.token_index
    index2 = kb2.token_index
    shared = sorted(set(index1) & set(index2))
    collection = BlockCollection(kind="token")
    for token in shared:
        collection.add(Block(token, index1[token], index2[token]))
    return collection
