"""Sorted Neighborhood blocking (Hernandez & Stolfo, SIGMOD 1995).

One of the schema-based blocking baselines the paper's section 5
discusses: entities are ordered by a blocking key and a fixed-size
window slides over the order; entities inside a window are candidate
matches.  Included here as a comparison point for the blocking
ablation -- the paper's argument is that such key-based methods need a
meaningful schema-level key, which the Web of Data cannot supply, and
that their blocks contain entities with *similar* (not identical) keys,
so valueSim cannot be derived from them.

The default key is schema-agnostic (the entity's longest literal
value, usually its most name-like one), which is exactly the kind of
blunt surrogate one is forced into without a schema.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.blocking.base import Block, BlockCollection
from repro.kb.knowledge_base import KnowledgeBase

KeyFunction = Callable[[KnowledgeBase, int], str]

_WHITESPACE = re.compile(r"\s+")


def default_key(kb: KnowledgeBase, eid: int) -> str:
    """Schema-agnostic surrogate key: the longest literal value.

    Real Sorted Neighborhood deployments use a domain key (zip code +
    surname prefix...); without a schema, the longest value -- usually
    the most name-like one -- is the customary stand-in.
    """
    values = [
        _WHITESPACE.sub(" ", value.strip().lower())
        for value in kb.literal_values(eid)
    ]
    values = [value for value in values if value]
    if not values:
        return ""
    return max(values, key=lambda value: (len(value), value))


def sorted_neighborhood_blocks(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    window: int = 10,
    key: KeyFunction = default_key,
) -> BlockCollection:
    """Candidate blocks from a window sliding over the sorted key order.

    Both KBs' entities are sorted together by key; each window position
    yields one block containing the window's entities (split by KB).
    Windows that contain entities of only one KB suggest no cross-KB
    comparison and are dropped.

    Parameters
    ----------
    window:
        Window size ``w``; each entity is compared with its ``w - 1``
        successors in the sorted order.
    key:
        Blocking-key function; defaults to the schema-agnostic token
        prefix.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    ordered: list[tuple[str, int, int]] = []
    for eid in range(len(kb1)):
        ordered.append((key(kb1, eid), 0, eid))
    for eid in range(len(kb2)):
        ordered.append((key(kb2, eid), 1, eid))
    ordered.sort()

    collection = BlockCollection(kind="sorted-neighborhood")
    for start in range(0, max(0, len(ordered) - window + 1)):
        slice_ = ordered[start : start + window]
        side1 = [eid for _, side, eid in slice_ if side == 0]
        side2 = [eid for _, side, eid in slice_ if side == 1]
        if side1 and side2:
            collection.add(Block(f"w{start}", sorted(side1), sorted(side2)))
    return collection
