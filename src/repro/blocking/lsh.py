"""MinHash LSH blocking (the section-5 baseline family, e.g. [24]).

Entities are hashed ``bands x rows`` times with MinHash signatures over
their token sets; two entities land in the same bucket (block) when one
of their bands agrees completely.  The probability of co-occurring is a
sigmoid in the pairs' Jaccard similarity, with threshold
``(1/bands)^(1/rows)`` -- the tuning burden the paper criticises, and
the reason LSH misses nearly similar matches (their Jaccard is low by
construction on heterogeneous KBs).

Hashing is deterministic (seeded polynomial hashes over stable token
digests), so results are reproducible across processes.
"""

from __future__ import annotations

import random
import zlib

from repro.blocking.base import Block, BlockCollection
from repro.kb.knowledge_base import KnowledgeBase

_MERSENNE = (1 << 61) - 1


class MinHasher:
    """Seeded family of ``count`` MinHash functions over token sets."""

    def __init__(self, count: int, seed: int = 17):
        rng = random.Random(seed)
        self._parameters = [
            (rng.randrange(1, _MERSENNE), rng.randrange(0, _MERSENNE))
            for _ in range(count)
        ]

    def signature(self, tokens: frozenset[str]) -> tuple[int, ...]:
        """MinHash signature of a token set (empty sets hash to a sentinel)."""
        if not tokens:
            return tuple(_MERSENNE for _ in self._parameters)
        digests = [zlib.crc32(token.encode("utf-8")) for token in tokens]
        return tuple(
            min((a * digest + b) % _MERSENNE for digest in digests)
            for a, b in self._parameters
        )


def lsh_threshold(bands: int, rows: int) -> float:
    """The Jaccard similarity at which co-occurrence probability is ~0.5.

    >>> 0.2 < lsh_threshold(20, 5) < 0.7
    True
    """
    return (1.0 / bands) ** (1.0 / rows)


def lsh_blocks(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    bands: int = 20,
    rows: int = 5,
    seed: int = 17,
) -> BlockCollection:
    """Candidate blocks from banded MinHash bucketing.

    Each (band, bucket) with entities from both KBs becomes a block.
    """
    if bands < 1 or rows < 1:
        raise ValueError(f"bands and rows must be >= 1, got ({bands}, {rows})")
    hasher = MinHasher(bands * rows, seed=seed)
    buckets: dict[tuple[int, tuple[int, ...]], tuple[list[int], list[int]]] = {}
    for side, kb in ((0, kb1), (1, kb2)):
        for eid in range(len(kb)):
            signature = hasher.signature(kb.tokens(eid))
            for band in range(bands):
                chunk = signature[band * rows : (band + 1) * rows]
                sides = buckets.setdefault((band, chunk), ([], []))
                sides[side].append(eid)

    collection = BlockCollection(kind="lsh")
    for (band, _), (side1, side2) in sorted(buckets.items(), key=lambda i: i[0]):
        if side1 and side2:
            collection.add(Block(f"band{band}", side1, side2))
    return collection
