"""Ensemble matching: the paper's future-work alternative to rule order.

Section 7: "we will investigate how to create an ensemble of matching
rules".  Algorithm 2 applies R1-R3 in a fixed precedence with early
claiming; the ensemble instead lets every rule *vote* on every candidate
pair and combines the votes into one confidence score, clustered by
Unique Mapping:

* **name vote** -- 1 when the pair shares an exclusive name (R1's
  evidence);
* **value vote** -- the pair's normalised rank in each endpoint's value
  candidate list, averaged over both directions (R2/R3's beta
  evidence, made scale-free);
* **neighbor vote** -- the same for the neighbor candidate lists (R3's
  gamma evidence);
* **reciprocity** -- non-reciprocal pairs are discounted
  multiplicatively rather than dropped outright (R4 softened).

The combination is a weighted sum; with the default weights the
ensemble behaves like MinoanER on clear-cut pairs but can recover
matches the fixed precedence loses (e.g. a pair that is second-best by
value *and* second-best by neighbors, beaten in each single ranking by
two different wrong candidates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clustering.unique_mapping import unique_mapping_clustering
from repro.core.rank_aggregation import normalized_rank_scores
from repro.graph.blocking_graph import DisjunctiveBlockingGraph


@dataclass(frozen=True)
class EnsembleConfig:
    """Vote weights and acceptance threshold of the ensemble.

    The default weights make an exclusive shared name decisive on its
    own (weight 2 vs. a maximum of 1 per ranking vote), mirroring R1's
    precedence, while value and neighbor votes carry equal weight,
    mirroring a balanced theta.
    """

    name_weight: float = 2.0
    value_weight: float = 1.0
    neighbor_weight: float = 1.0
    reciprocity_discount: float = 0.5
    threshold: float = 0.4

    def __post_init__(self) -> None:
        for label in ("name_weight", "value_weight", "neighbor_weight"):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} must be >= 0")
        if not 0.0 <= self.reciprocity_discount <= 1.0:
            raise ValueError(
                f"reciprocity_discount must be in [0, 1], got {self.reciprocity_discount}"
            )


@dataclass
class EnsembleResult:
    """Matches with their combined confidences."""

    matches: set[tuple[int, int]]
    confidences: dict[tuple[int, int], float] = field(default_factory=dict)


class EnsembleMatcher:
    """Vote-combining matcher over the pruned disjunctive blocking graph."""

    def __init__(self, config: EnsembleConfig | None = None):
        self.config = config or EnsembleConfig()

    def score_pairs(self, graph: DisjunctiveBlockingGraph) -> dict[tuple[int, int], float]:
        """Combined confidence of every pair connected in the graph."""
        config = self.config
        votes: dict[tuple[int, int], float] = {}

        def add(pair: tuple[int, int], amount: float) -> None:
            votes[pair] = votes.get(pair, 0.0) + amount

        # Name votes.
        for eid1 in range(graph.n1):
            eid2 = graph.name_match(1, eid1)
            if eid2 is not None:
                add((eid1, eid2), config.name_weight)

        # Ranking votes, both directions, each direction worth half.
        for side, size in ((1, graph.n1), (2, graph.n2)):
            for eid in range(size):
                value_ranks = normalized_rank_scores(graph.value_candidates(side, eid))
                for other, rank in value_ranks.items():
                    pair = (eid, other) if side == 1 else (other, eid)
                    add(pair, 0.5 * config.value_weight * rank)
                neighbor_ranks = normalized_rank_scores(
                    graph.neighbor_candidates(side, eid)
                )
                for other, rank in neighbor_ranks.items():
                    pair = (eid, other) if side == 1 else (other, eid)
                    add(pair, 0.5 * config.neighbor_weight * rank)

        # Reciprocity discount.
        if config.reciprocity_discount < 1.0:
            for pair in votes:
                if not graph.is_reciprocal(*pair):
                    votes[pair] *= config.reciprocity_discount
        return votes

    def match(self, graph: DisjunctiveBlockingGraph) -> EnsembleResult:
        """Score all pairs, then Unique Mapping Clustering above threshold."""
        votes = self.score_pairs(graph)
        scored = [(eid1, eid2, score) for (eid1, eid2), score in votes.items()]
        matches = unique_mapping_clustering(scored, threshold=self.config.threshold)
        return EnsembleResult(
            matches=matches,
            confidences={pair: votes[pair] for pair in matches},
        )
