"""The four matching rules of Algorithm 2.

Each rule is a pure function over the pruned disjunctive blocking graph
plus the already-collected matches.  Rules return the pairs they add
(R1-R3) or the pairs they keep (R4); the matcher composes them in the
fixed order R1 -> R2 -> R3 -> R4 (Definition 4.1:
``M = (R1 or R2 or R3) and R4``).
"""

from __future__ import annotations

from repro.core.rank_aggregation import top_aggregate_candidate
from repro.graph.blocking_graph import DisjunctiveBlockingGraph

Match = tuple[int, int]
"""A matched pair ``(KB1 entity id, KB2 entity id)``."""


def name_rule(graph: DisjunctiveBlockingGraph) -> list[tuple[Match, float]]:
    """R1: match every ``alpha = 1`` edge (exclusive shared name).

    Applied to all descriptions regardless of value or neighbor
    similarity.  Returns ``(pair, score)`` with a constant score of
    infinity -- name evidence outranks everything in later conflict
    resolution.
    """
    matches: list[tuple[Match, float]] = []
    for eid1 in range(graph.n1):
        eid2 = graph.name_match(1, eid1)
        if eid2 is not None:
            matches.append(((eid1, eid2), float("inf")))
    return matches


def value_rule(
    graph: DisjunctiveBlockingGraph,
    matched_1: set[int],
    matched_2: set[int],
    threshold: float = 1.0,
) -> list[tuple[Match, float]]:
    """R2: match an entity to its top value candidate when ``beta`` is high.

    Iterates the *smaller* KB side for efficiency (fewer checks, as in
    Algorithm 2 line 6), skipping entities already matched.  The top
    candidate by ``beta`` is accepted iff ``beta >= threshold`` (the
    paper fixes the threshold at 1: several shared infrequent tokens).
    """
    matches: list[tuple[Match, float]] = []
    if graph.n1 <= graph.n2:
        side, matched = 1, matched_1
    else:
        side, matched = 2, matched_2
    size = graph.n1 if side == 1 else graph.n2
    for eid in range(size):
        if eid in matched:
            continue
        candidates = graph.value_candidates(side, eid)
        if not candidates:
            continue
        partner, beta = candidates[0]
        if beta >= threshold:
            pair = (eid, partner) if side == 1 else (partner, eid)
            matches.append((pair, beta))
    return matches


def rank_aggregation_rule(
    graph: DisjunctiveBlockingGraph,
    matched_1: set[int],
    matched_2: set[int],
    theta: float,
    use_neighbor_evidence: bool = True,
) -> list[tuple[Match, float]]:
    """R3: match remaining entities to their best rank-aggregated candidate.

    For every still-unmatched node (both sides, side 1 first, ascending
    ids -- deterministic), the value-candidate and neighbor-candidate
    rankings are fused with weight ``theta`` (see
    :mod:`repro.core.rank_aggregation`) and the top candidate is taken:
    "there is no better candidate for e_i than e_j".

    Matches are applied greedily in iteration order: once a node is
    matched (as source or as chosen candidate) it is skipped, mirroring
    Algorithm 2's in-place update of ``M``.
    """
    matches: list[tuple[Match, float]] = []
    claimed_1 = set(matched_1)
    claimed_2 = set(matched_2)
    for side, size in ((1, graph.n1), (2, graph.n2)):
        claimed_own = claimed_1 if side == 1 else claimed_2
        claimed_other = claimed_2 if side == 1 else claimed_1
        for eid in range(size):
            if eid in claimed_own:
                continue
            value_candidates = graph.value_candidates(side, eid)
            neighbor_candidates = (
                graph.neighbor_candidates(side, eid) if use_neighbor_evidence else ()
            )
            best = top_aggregate_candidate(value_candidates, neighbor_candidates, theta)
            if best is None:
                continue
            partner, score = best
            pair = (eid, partner) if side == 1 else (partner, eid)
            matches.append((pair, score))
            claimed_own.add(eid)
            claimed_other.add(partner)
    return matches


def reciprocity_rule(
    graph: DisjunctiveBlockingGraph,
    matches: list[tuple[Match, float]],
) -> list[tuple[Match, float]]:
    """R4: keep only matches whose edge survives pruning in *both* directions.

    "Two entities are unlikely to match when one of them does not even
    consider the other to be a candidate."  Purely a filter: it never
    adds matches.
    """
    return [
        (pair, score)
        for pair, score in matches
        if graph.is_reciprocal(pair[0], pair[1])
    ]
