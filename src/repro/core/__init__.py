"""MinoanER core: configuration, matching rules R1-R4, the pipeline facade.

This is the paper's primary contribution: a non-iterative matching
process over the pruned disjunctive blocking graph, expressed as four
generic, schema-agnostic rules (section 4):

* **R1** name matching -- exclusive shared name (``alpha = 1``);
* **R2** value matching -- top value candidate with ``beta >= 1``;
* **R3** rank aggregation -- threshold-free combination of value and
  neighbor candidate rankings, weighted by ``theta``;
* **R4** reciprocity -- keep a match only if both directions kept the
  edge after pruning.

``M = (R1 or R2 or R3) and R4`` (Definition 4.1).

Beyond the paper's clean-clean evaluation setting, the generalisations
it claims in section 2 are implemented too:
:class:`~repro.core.dirty.DirtyMinoanER` deduplicates a single dirty
KB, and :class:`~repro.core.multi.MultiKBResolver` resolves more than
two clean KBs into cross-KB clusters.
"""

from repro.core.config import MinoanERConfig
from repro.core.dirty import DirtyMinoanER, DirtyResolutionResult
from repro.core.ensemble import EnsembleConfig, EnsembleMatcher
from repro.core.explain import MatchExplanation, explain_pair
from repro.core.matcher import MatchingResult, NonIterativeMatcher
from repro.core.multi import MultiKBResolver, MultiResolutionResult
from repro.core.pipeline import MinoanER, ResolutionResult
from repro.core.rank_aggregation import aggregate_rankings, top_aggregate_candidate

__all__ = [
    "DirtyMinoanER",
    "DirtyResolutionResult",
    "EnsembleConfig",
    "EnsembleMatcher",
    "MatchExplanation",
    "explain_pair",
    "MinoanER",
    "MinoanERConfig",
    "MatchingResult",
    "MultiKBResolver",
    "MultiResolutionResult",
    "NonIterativeMatcher",
    "ResolutionResult",
    "aggregate_rankings",
    "top_aggregate_candidate",
]
