"""Threshold-free rank aggregation for rule R3 (Algorithm 2, lines 10-23).

Instead of combining value and neighbor similarities into one aggregate
*score* (which would need tuned weights on incomparable scales), R3
combines candidate *rankings*: in a list of size ``L`` the best
candidate receives ``L/L``, the second ``(L-1)/L``, the last ``1/L``.
Each candidate's aggregate is ``theta * value_rank_score +
(1 - theta) * neighbor_rank_score``.
"""

from __future__ import annotations

from repro.graph.blocking_graph import CandidateList


def normalized_rank_scores(candidates: CandidateList) -> dict[int, float]:
    """Map each candidate to its normalised rank score.

    ``candidates`` must already be score-descending (as stored in the
    blocking graph).  With ``L`` candidates, position ``p`` (0-based)
    scores ``(L - p) / L``.

    >>> normalized_rank_scores(((7, 3.0), (4, 1.0)))
    {7: 1.0, 4: 0.5}
    """
    size = len(candidates)
    if size == 0:
        return {}
    return {
        candidate: (size - position) / size
        for position, (candidate, _) in enumerate(candidates)
    }


def aggregate_rankings(
    value_candidates: CandidateList,
    neighbor_candidates: CandidateList,
    theta: float,
) -> dict[int, float]:
    """Weighted sum of normalised ranks from the two candidate lists.

    The value list contributes with weight ``theta``, the neighbor list
    with ``1 - theta`` (Algorithm 2, lines 16 and 21).
    """
    aggregate: dict[int, float] = {}
    for candidate, score in normalized_rank_scores(value_candidates).items():
        aggregate[candidate] = aggregate.get(candidate, 0.0) + theta * score
    for candidate, score in normalized_rank_scores(neighbor_candidates).items():
        aggregate[candidate] = aggregate.get(candidate, 0.0) + (1.0 - theta) * score
    return aggregate


def top_aggregate_candidate(
    value_candidates: CandidateList,
    neighbor_candidates: CandidateList,
    theta: float,
) -> tuple[int, float] | None:
    """The best candidate by aggregate rank score, or ``None`` if no
    candidate exists.  Ties break on ascending candidate id.

    >>> top_aggregate_candidate(((1, 2.0),), ((2, 9.0),), 0.6)
    (1, 0.6)
    """
    aggregate = aggregate_rankings(value_candidates, neighbor_candidates, theta)
    if not aggregate:
        return None
    candidate = min(aggregate, key=lambda c: (-aggregate[c], c))
    return candidate, aggregate[candidate]
