"""Multi-KB ER: resolving more than two clean KBs.

Section 2 / Definition 3.3: with ``k`` clean KBs the disjunctive
blocking graph is k-partite -- "the only information needed to match
multiple KBs is to which KB every description belongs".  This module
resolves every KB pair with the standard pipeline and then closes the
pairwise matches transitively into cross-KB entity clusters.

Because each KB is clean, a cluster should contain at most one entity
per KB; pairwise UMC already enforces that per pair, and conflicting
transitive merges (two entities of the same KB in one cluster) are
reported rather than silently merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.core.config import MinoanERConfig
from repro.core.pipeline import MinoanER, ResolutionResult
from repro.kb.knowledge_base import KnowledgeBase

Entity = tuple[int, int]
"""A cross-KB entity handle: ``(kb index, entity id)``."""


@dataclass
class MultiResolutionResult:
    """Clusters of co-referent descriptions across several KBs."""

    kbs: list[KnowledgeBase]
    pairwise: dict[tuple[int, int], ResolutionResult]
    clusters: list[tuple[Entity, ...]]
    conflicts: list[tuple[Entity, ...]] = field(default_factory=list)

    def cluster_uris(self) -> list[tuple[str, ...]]:
        return [
            tuple(self.kbs[kb_index].uri_of(eid) for kb_index, eid in cluster)
            for cluster in self.clusters
        ]

    def matches_between(self, left: int, right: int) -> set[tuple[int, int]]:
        """Pairwise matches between KB ``left`` and KB ``right``."""
        if left > right:
            return {(b, a) for a, b in self.matches_between(right, left)}
        return self.pairwise[(left, right)].matches


class MultiKBResolver:
    """Resolve ``k >= 2`` clean KBs into cross-KB clusters.

    Examples
    --------
    >>> # resolver = MultiKBResolver()
    >>> # result = resolver.resolve([kb_a, kb_b, kb_c])
    >>> # result.cluster_uris()
    """

    def __init__(self, config: MinoanERConfig | None = None):
        self.config = config or MinoanERConfig()

    def resolve(self, kbs: list[KnowledgeBase]) -> MultiResolutionResult:
        """Run the clean-clean pipeline on every pair, then cluster."""
        if len(kbs) < 2:
            raise ValueError(f"need at least 2 KBs, got {len(kbs)}")
        pipeline = MinoanER(self.config)
        pairwise: dict[tuple[int, int], ResolutionResult] = {}
        for left, right in combinations(range(len(kbs)), 2):
            pairwise[(left, right)] = pipeline.resolve(kbs[left], kbs[right])

        clusters, conflicts = self._close_transitively(kbs, pairwise)
        return MultiResolutionResult(
            kbs=list(kbs), pairwise=pairwise, clusters=clusters, conflicts=conflicts
        )

    @staticmethod
    def _close_transitively(
        kbs: list[KnowledgeBase],
        pairwise: dict[tuple[int, int], ResolutionResult],
    ) -> tuple[list[tuple[Entity, ...]], list[tuple[Entity, ...]]]:
        parent: dict[Entity, Entity] = {}

        def find(node: Entity) -> Entity:
            root = node
            while parent.get(root, root) != root:
                root = parent[root]
            while parent.get(node, node) != node:
                parent[node], node = root, parent[node]
            return root

        def union(a: Entity, b: Entity) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent.setdefault(root_a, root_a)
                parent[root_b] = root_a

        for (left, right), result in pairwise.items():
            for eid1, eid2 in result.matches:
                union((left, eid1), (right, eid2))

        members: dict[Entity, list[Entity]] = {}
        for node in list(parent):
            members.setdefault(find(node), []).append(node)
        for root in members:
            if root not in members[root]:
                members[root].append(root)

        clusters: list[tuple[Entity, ...]] = []
        conflicts: list[tuple[Entity, ...]] = []
        for group in members.values():
            cluster = tuple(sorted(set(group)))
            if len(cluster) < 2:
                continue
            kb_indexes = [kb_index for kb_index, _ in cluster]
            if len(kb_indexes) != len(set(kb_indexes)):
                # Two entities of one (clean) KB ended up together:
                # transitive evidence disagrees; surface, don't merge.
                conflicts.append(cluster)
            else:
                clusters.append(cluster)
        return sorted(clusters), sorted(conflicts)
