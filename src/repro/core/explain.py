"""Match explanations: why did (or didn't) two entities match?

ER decisions are audited in practice; MinoanER's evidence is
conveniently decomposable, so every decision can be explained exactly:

* which rule fired (or why none did),
* the shared name, if any, and whether it was exclusive,
* the shared tokens with their Entity-Frequency weights (the terms of
  Definition 2.1's sum),
* the neighbor pairs whose value similarity flowed into ``gamma``
  (the terms of Definition 2.5's sum, restricted to retained edges),
* both directions' reciprocity status.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.name_blocking import normalize_name
from repro.core.pipeline import ResolutionResult
from repro.kb.statistics import KBStatistics
from repro.similarity.value import token_pair_weight, value_similarity


@dataclass
class MatchExplanation:
    """A structured account of the evidence between one entity pair."""

    uri1: str
    uri2: str
    matched: bool
    rule: str | None
    shared_names: tuple[str, ...]
    exclusive_name: bool
    beta: float
    shared_tokens: tuple[tuple[str, float], ...]  # token -> weight, desc
    gamma: float
    neighbor_contributions: tuple[tuple[str, str, float], ...]
    reciprocal: bool

    def render(self) -> str:
        """Human-readable multi-line explanation."""
        lines = [
            f"{self.uri1}  <->  {self.uri2}: "
            + (f"MATCH by {self.rule}" if self.matched else "no match")
        ]
        if self.shared_names:
            exclusivity = "exclusively " if self.exclusive_name else ""
            lines.append(
                f"  name: {exclusivity}shared {', '.join(repr(n) for n in self.shared_names)}"
            )
        if self.shared_tokens:
            rendered = ", ".join(
                f"{token} ({weight:.2f})" for token, weight in self.shared_tokens[:8]
            )
            suffix = " ..." if len(self.shared_tokens) > 8 else ""
            lines.append(f"  value similarity {self.beta:.2f}: {rendered}{suffix}")
        else:
            lines.append("  no shared tokens")
        if self.neighbor_contributions:
            lines.append(f"  neighbor similarity {self.gamma:.2f} via:")
            for uri_a, uri_b, weight in self.neighbor_contributions[:5]:
                lines.append(f"    {uri_a} ~ {uri_b} ({weight:.2f})")
        lines.append(f"  reciprocal candidates: {'yes' if self.reciprocal else 'no'}")
        return "\n".join(lines)


def explain_pair(
    result: ResolutionResult,
    eid1: int,
    eid2: int,
    stats1: KBStatistics | None = None,
    stats2: KBStatistics | None = None,
) -> MatchExplanation:
    """Explain the evidence between KB1 entity ``eid1`` and KB2 ``eid2``.

    ``stats1``/``stats2`` (for the neighbor breakdown) are rebuilt from
    the result's KBs when not supplied -- pass the pipeline's statistics
    to avoid recomputation on large KBs.
    """
    kb1, kb2 = result.kb1, result.kb2
    if stats1 is None:
        stats1 = KBStatistics(kb1)
    if stats2 is None:
        stats2 = KBStatistics(kb2)
    graph = result.graph

    # Names.
    names1 = {normalize_name(raw) for raw in stats1.names(eid1)} - {""}
    names2 = {normalize_name(raw) for raw in stats2.names(eid2)} - {""}
    shared_names = tuple(sorted(names1 & names2))
    exclusive = graph.name_match(1, eid1) == eid2

    # Token evidence (full Definition 2.1 breakdown, not the purged
    # approximation the graph stores).
    shared_tokens = sorted(
        (
            (token, token_pair_weight(kb1.entity_frequency(token), kb2.entity_frequency(token)))
            for token in kb1.tokens(eid1) & kb2.tokens(eid2)
        ),
        key=lambda item: (-item[1], item[0]),
    )
    beta = graph.beta(1, eid1, eid2)

    # Neighbor evidence: value similarity of top-neighbor pairs.
    contributions = []
    for neighbor1 in stats1.top_neighbors(eid1):
        for neighbor2 in stats2.top_neighbors(eid2):
            weight = value_similarity(kb1, kb2, neighbor1, neighbor2)
            if weight > 0.0:
                contributions.append(
                    (kb1.uri_of(neighbor1), kb2.uri_of(neighbor2), weight)
                )
    contributions.sort(key=lambda item: (-item[2], item[0], item[1]))

    pair = (eid1, eid2)
    return MatchExplanation(
        uri1=kb1.uri_of(eid1),
        uri2=kb2.uri_of(eid2),
        matched=pair in result.matches,
        rule=result.matching.rule_of.get(pair),
        shared_names=shared_names,
        exclusive_name=exclusive,
        beta=beta,
        shared_tokens=tuple(shared_tokens),
        gamma=graph.gamma(1, eid1, eid2),
        neighbor_contributions=tuple(contributions),
        reciprocal=graph.is_reciprocal(eid1, eid2),
    )
