"""The non-iterative matching process (Algorithm 2).

Four rules applied in a fixed order -- no data-driven iteration, no
convergence loop.  ``M = (R1 or R2 or R3) and R4`` (Definition 4.1),
optionally followed by Unique Mapping Clustering (section 5) to enforce
the clean-clean 1-1 constraint when several rules proposed conflicting
partners for the same entity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clustering.unique_mapping import unique_mapping_clustering
from repro.core.config import MinoanERConfig
from repro.core.rules import (
    Match,
    name_rule,
    rank_aggregation_rule,
    reciprocity_rule,
    value_rule,
)
from repro.graph.blocking_graph import DisjunctiveBlockingGraph

_RULE_PRIORITY = {"R1": 0, "R2": 1, "R3": 2}


@dataclass
class MatchingResult:
    """Outcome of the matching process.

    Attributes
    ----------
    matches:
        Final ``(eid1, eid2)`` match pairs.
    rule_of:
        Which rule produced each final match ("R1", "R2" or "R3").
    scores:
        The score the producing rule assigned (``inf`` for R1, ``beta``
        for R2, the aggregate rank score for R3).
    proposed:
        All pairs proposed by R1-R3 before reciprocity filtering and
        conflict resolution, with their rule labels.
    removed_by_reciprocity:
        Proposed pairs discarded by R4.
    """

    matches: set[Match]
    rule_of: dict[Match, str]
    scores: dict[Match, float]
    proposed: list[tuple[Match, str]] = field(default_factory=list)
    removed_by_reciprocity: set[Match] = field(default_factory=set)

    def matches_by_rule(self, rule: str) -> set[Match]:
        """Final matches attributed to one rule."""
        return {pair for pair, r in self.rule_of.items() if r == rule}


class NonIterativeMatcher:
    """Runs rules R1-R4 over a pruned disjunctive blocking graph.

    The rule set is controlled by the config's ``use_*`` toggles, which
    back the Table 4 ablations (each rule alone, no reciprocity, no
    neighbor evidence).

    >>> # matcher = NonIterativeMatcher(MinoanERConfig())
    >>> # result = matcher.match(graph)
    """

    def __init__(self, config: MinoanERConfig | None = None):
        self.config = config or MinoanERConfig()

    def match(self, graph: DisjunctiveBlockingGraph) -> MatchingResult:
        """Apply the enabled rules in order and assemble the match set."""
        config = self.config
        collected: list[tuple[Match, float, str]] = []
        matched_1: set[int] = set()
        matched_2: set[int] = set()

        def absorb(pairs: list[tuple[Match, float]], rule: str) -> None:
            for pair, score in pairs:
                collected.append((pair, score, rule))
                matched_1.add(pair[0])
                matched_2.add(pair[1])

        if config.use_name_rule:
            absorb(name_rule(graph), "R1")
        if config.use_value_rule:
            absorb(
                value_rule(graph, matched_1, matched_2, config.value_threshold),
                "R2",
            )
        if config.use_rank_aggregation:
            absorb(
                rank_aggregation_rule(
                    graph,
                    matched_1,
                    matched_2,
                    config.theta,
                    use_neighbor_evidence=config.use_neighbor_evidence,
                ),
                "R3",
            )

        proposed = [(pair, rule) for pair, _, rule in collected]
        surviving = collected
        removed: set[Match] = set()
        if config.use_reciprocity:
            kept = reciprocity_rule(graph, [(pair, score) for pair, score, _ in collected])
            kept_pairs = {pair for pair, _ in kept}
            removed = {pair for pair, _, _ in collected if pair not in kept_pairs}
            surviving = [item for item in collected if item[0] in kept_pairs]

        if config.enforce_unique_mapping:
            surviving = self._resolve_conflicts(surviving)

        matches = {pair for pair, _, _ in surviving}
        rule_of = {pair: rule for pair, _, rule in surviving}
        scores = {pair: score for pair, score, _ in surviving}
        return MatchingResult(
            matches=matches,
            rule_of=rule_of,
            scores=scores,
            proposed=proposed,
            removed_by_reciprocity=removed,
        )

    @staticmethod
    def _resolve_conflicts(
        collected: list[tuple[Match, float, str]],
    ) -> list[tuple[Match, float, str]]:
        """Unique Mapping Clustering over rule-scored pairs.

        Ordering: rule priority first (R1 > R2 > R3), then score
        descending, then pair id -- each entity keeps its single best
        match.
        """
        ordered = sorted(
            collected,
            key=lambda item: (_RULE_PRIORITY[item[2]], -item[1], item[0]),
        )
        # unique_mapping_clustering expects plain scored pairs; feed it a
        # rank-derived score preserving the ordering above.
        total = len(ordered)
        scored = [
            (pair[0], pair[1], float(total - position))
            for position, (pair, _, _) in enumerate(ordered)
        ]
        kept_pairs = unique_mapping_clustering(scored)
        return [item for item in ordered if item[0] in kept_pairs]
