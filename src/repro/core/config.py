"""Configuration of the MinoanER pipeline.

The paper's sensitivity analysis (Figure 5) varies four parameters and
recommends the global default ``(k, K, N, theta) = (2, 15, 3, 0.6)``,
which is also the default here.  All remaining knobs either reproduce a
fixed design decision of the paper (e.g. ``value_threshold = 1`` in R2)
or expose an ablation used in its evaluation (rule toggles, purging).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping


@dataclass(frozen=True)
class MinoanERConfig:
    """All knobs of the MinoanER pipeline.

    Parameters
    ----------
    name_attributes_k:
        ``k``: globally most important literal attributes per KB whose
        values act as entity names (section 2.2).
    candidates_k:
        ``K``: edges kept per node per evidence type when pruning the
        blocking graph (section 3.3).
    relations_n:
        ``N``: most important relations per entity defining its top
        neighbors (section 2.2).
    theta:
        Trade-off between value-based and neighbor-based rankings in
        rule R3; the beta list is weighted ``theta`` and the gamma list
        ``1 - theta`` (section 4).
    value_threshold:
        R2 matches the top value candidate when ``beta`` reaches this
        threshold; the paper fixes it to 1 ("many common and infrequent
        tokens").
    purge_blocks / purging_budget_ratio / max_block_comparisons:
        Block Purging of oversized token blocks (section 3.3): retained
        token blocks may suggest at most ``purging_budget_ratio`` of the
        brute-force ``|E1|*|E2|`` comparisons (paper regime: ~1%%).
    use_name_rule / use_value_rule / use_rank_aggregation / use_reciprocity:
        Rule toggles for the Table 4 ablations.
    use_neighbor_evidence:
        When False, gamma weights are not computed and R3 ranks by value
        evidence alone ("contribution of neighbors" ablation, Table 4).
    enforce_unique_mapping:
        Apply Unique Mapping Clustering to the final match set, keeping
        the best-scored pair per entity (section 5 notes MinoanER
        employs it; rule order gives R1 > R2 > R3 priority).
    dynamic_pruning / pruning_gap_ratio:
        Replace the fixed top-K candidate retention with the adaptive
        per-node cut of the paper's future work (section 7): each node's
        list is truncated at the first large weight gap in its local
        similarity distribution.
    tokenizer_min_length / stopwords:
        Tokenisation options (defaults follow the paper: keep all
        alphanumeric tokens, no stopword list).
    kernel_backend:
        Implementation of the blocking-graph hot path (see
        :mod:`repro.kernels`): ``"dict"`` is the reference
        dict-of-dicts code, ``"python"`` and ``"numpy"`` are the
        array-backed sparse kernels, and ``"auto"`` (the default) picks
        ``numpy`` when importable and ``python`` otherwise.  All
        backends produce bit-identical graphs; this is purely a
        performance knob.
    serving_cache_size:
        Capacity of the :class:`repro.serving.cache.LRUCache` holding
        single-query decisions, keyed by entity content fingerprint
        (0 disables caching).
    serving_candidate_cap:
        Per-query cap on the candidate set considered by the serving
        engine: after ``beta`` accumulation only the cap highest-scored
        candidates survive.  ``None`` (the default) keeps every touched
        candidate, which is required for exact batch/serve equivalence;
        setting a cap trades recall for bounded query latency.
    serving_batch_size:
        Default micro-batch size of the ``serve`` CLI subcommand.  Size
        1 answers queries independently (cacheable); larger batches are
        resolved together, which lets related queries contribute
        query-side context (Entity Frequencies, neighbor evidence).
    index_mmap:
        Load :class:`repro.serving.ResolutionIndex` files by
        memory-mapping their columnar sections instead of materialising
        them (``docs/serving.md``).  Zero-copy loads are O(1) in index
        size and share read-only pages across worker processes; decisions
        are bit-identical either way.  Requires numpy and a version-2
        index file (the ``serve --mmap`` flag overrides this knob).
    failure_mode / retry_max_attempts / retry_base_delay_s:
        Stage-failure behaviour of the pipelines (see
        ``docs/resilience.md``): ``fail_fast`` aborts on the first
        failure (the historical behaviour), ``retry`` re-runs failed
        work up to ``retry_max_attempts`` total attempts with
        exponential backoff starting at ``retry_base_delay_s``, and
        ``degrade`` additionally skips exhausted stage partitions,
        producing a partial result whose holes are enumerated in
        ``ResolutionResult.degraded``.
    serving_deadline_ms:
        Per-query time budget of the serving engine.  ``None`` (the
        default) serves without deadlines; with a budget, a query that
        exceeds it mid-pipeline receives a *degraded* name-evidence-only
        answer flagged ``degraded=true`` instead of blocking the
        stream.
    breaker_threshold / breaker_reset_s:
        Circuit breaker guarding the numpy kernel backend in the
        serving engine: after ``breaker_threshold`` consecutive kernel
        failures queries fall back to the pure-python kernels
        (bit-identical, slower) for ``breaker_reset_s`` seconds before
        a half-open probe retries numpy.
    serving_shards / serving_replicas / serving_hedge_ms:
        Sharded serving tier (``docs/sharding.md``).  ``serving_shards``
        = 0 (the default) serves from one in-process engine; N >= 1
        routes queries through a :class:`repro.sharding.ShardRouter`
        over N shard worker processes (files written by
        ``repro index --shards N``), ``serving_replicas`` per shard.
        ``serving_hedge_ms`` fixes the delay before a backup (hedged)
        request fires at a sibling replica; ``None`` adapts it to the
        shard's observed p95 latency.  Decisions are bit-identical to
        unsharded serving at any shard/replica count.
    serving_max_pending / serving_quota_qps / serving_quota_burst:
        Admission control of the serving engine
        (``docs/resilience.md``).  ``serving_max_pending`` bounds the
        summed cost of queries inside the engine at once;
        ``serving_quota_qps`` rate-limits each traffic source through a
        token bucket of ``serving_quota_burst`` capacity (default
        ``max(1, 2 * qps)``).  Both default off; rejections surface as
        explicit load-shed error records, never silent drops.
    retry_budget_ratio:
        Finagle-style retry budget of the sharded router in
        ``failure_mode="retry"``: retries may add at most this fraction
        on top of real traffic once the initial reserve drains, which
        stops retry amplification when a shard is down hard.  ``None``
        disables the budget (retries bounded only by
        ``retry_max_attempts``).
    compaction_max_delta / compaction_max_tombstone_ratio:
        Background-compaction triggers of the live serving tier
        (``docs/live_index.md``): compact when the delta overlay holds
        at least ``compaction_max_delta`` edits, or when tombstones
        exceed ``compaction_max_tombstone_ratio`` of the id space.
        Both default ``None`` (compaction stays operator-driven).
    provenance_sample_rate:
        Fraction of serving queries that carry a full
        :class:`repro.obs.ProvenanceRecord` (fired rule, evidence type,
        candidate-set size, top scores) on the wire.  0.0 (the default)
        disables provenance; sampling is deterministic (systematic over
        the query sequence), so replayed request streams sample the
        same queries.  Every query gets a ``trace_id`` regardless.
    observability:
        When True (the default) the instrumented components record
        spans and metrics into the ambient
        :func:`repro.obs.current_recorder` -- a no-op unless a real
        recorder is installed (e.g. by the ``--trace`` CLI flag or
        :func:`repro.obs.use_recorder`).  When False they pin the no-op
        recorder, guaranteeing zero tracing work even inside an active
        trace; phase timings (``ResolutionResult.timings``) are derived
        from span objects and stay correct either way.
    """

    name_attributes_k: int = 2
    candidates_k: int = 15
    relations_n: int = 3
    theta: float = 0.6
    value_threshold: float = 1.0
    purge_blocks: bool = True
    purging_budget_ratio: float = 0.01
    max_block_comparisons: int | None = None
    use_name_rule: bool = True
    use_value_rule: bool = True
    use_rank_aggregation: bool = True
    use_reciprocity: bool = True
    use_neighbor_evidence: bool = True
    enforce_unique_mapping: bool = True
    dynamic_pruning: bool = False
    pruning_gap_ratio: float = 0.2
    tokenizer_min_length: int = 1
    stopwords: tuple[str, ...] = field(default=())
    kernel_backend: str = "auto"
    serving_cache_size: int = 1024
    serving_candidate_cap: int | None = None
    serving_batch_size: int = 1
    index_mmap: bool = False
    provenance_sample_rate: float = 0.0
    observability: bool = True
    failure_mode: str = "fail_fast"
    retry_max_attempts: int = 3
    retry_base_delay_s: float = 0.01
    serving_deadline_ms: float | None = None
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0
    serving_shards: int = 0
    serving_replicas: int = 1
    serving_hedge_ms: float | None = None
    serving_max_pending: int | None = None
    serving_quota_qps: float | None = None
    serving_quota_burst: float | None = None
    retry_budget_ratio: float | None = 0.2
    compaction_max_delta: int | None = None
    compaction_max_tombstone_ratio: float | None = None

    def __post_init__(self) -> None:
        if self.name_attributes_k < 0:
            raise ValueError(f"name_attributes_k must be >= 0, got {self.name_attributes_k}")
        if self.candidates_k < 1:
            raise ValueError(f"candidates_k must be >= 1, got {self.candidates_k}")
        if self.relations_n < 0:
            raise ValueError(f"relations_n must be >= 0, got {self.relations_n}")
        if not 0.0 < self.theta < 1.0:
            raise ValueError(f"theta must be in (0, 1), got {self.theta}")
        if self.value_threshold < 0.0:
            raise ValueError(f"value_threshold must be >= 0, got {self.value_threshold}")
        if self.purging_budget_ratio <= 0.0:
            raise ValueError(
                f"purging_budget_ratio must be > 0, got {self.purging_budget_ratio}"
            )
        if not 0.0 < self.pruning_gap_ratio < 1.0:
            raise ValueError(
                f"pruning_gap_ratio must be in (0, 1), got {self.pruning_gap_ratio}"
            )
        from repro.kernels.dispatch import KERNEL_BACKENDS

        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {self.kernel_backend!r}"
            )
        if self.serving_cache_size < 0:
            raise ValueError(
                f"serving_cache_size must be >= 0, got {self.serving_cache_size}"
            )
        if self.serving_candidate_cap is not None and self.serving_candidate_cap < 1:
            raise ValueError(
                f"serving_candidate_cap must be >= 1 or None, "
                f"got {self.serving_candidate_cap}"
            )
        if self.serving_batch_size < 1:
            raise ValueError(
                f"serving_batch_size must be >= 1, got {self.serving_batch_size}"
            )
        if not 0.0 <= self.provenance_sample_rate <= 1.0:
            raise ValueError(
                f"provenance_sample_rate must be in [0, 1], "
                f"got {self.provenance_sample_rate}"
            )
        from repro.resilience.policy import FAILURE_MODES

        if self.failure_mode not in FAILURE_MODES:
            raise ValueError(
                f"failure_mode must be one of {FAILURE_MODES}, "
                f"got {self.failure_mode!r}"
            )
        if self.retry_max_attempts < 1:
            raise ValueError(
                f"retry_max_attempts must be >= 1, got {self.retry_max_attempts}"
            )
        if self.retry_base_delay_s < 0:
            raise ValueError(
                f"retry_base_delay_s must be >= 0, got {self.retry_base_delay_s}"
            )
        if self.serving_deadline_ms is not None and self.serving_deadline_ms <= 0:
            raise ValueError(
                f"serving_deadline_ms must be > 0 or None, "
                f"got {self.serving_deadline_ms}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset_s < 0:
            raise ValueError(
                f"breaker_reset_s must be >= 0, got {self.breaker_reset_s}"
            )
        if self.serving_shards < 0:
            raise ValueError(
                f"serving_shards must be >= 0, got {self.serving_shards}"
            )
        if self.serving_replicas < 1:
            raise ValueError(
                f"serving_replicas must be >= 1, got {self.serving_replicas}"
            )
        if self.serving_hedge_ms is not None and self.serving_hedge_ms < 0:
            raise ValueError(
                f"serving_hedge_ms must be >= 0 or None, "
                f"got {self.serving_hedge_ms}"
            )
        if self.serving_max_pending is not None and self.serving_max_pending < 1:
            raise ValueError(
                f"serving_max_pending must be >= 1 or None, "
                f"got {self.serving_max_pending}"
            )
        if self.serving_quota_qps is not None and self.serving_quota_qps <= 0:
            raise ValueError(
                f"serving_quota_qps must be > 0 or None, "
                f"got {self.serving_quota_qps}"
            )
        if self.serving_quota_burst is not None and self.serving_quota_burst <= 0:
            raise ValueError(
                f"serving_quota_burst must be > 0 or None, "
                f"got {self.serving_quota_burst}"
            )
        if self.retry_budget_ratio is not None and self.retry_budget_ratio < 0:
            raise ValueError(
                f"retry_budget_ratio must be >= 0 or None, "
                f"got {self.retry_budget_ratio}"
            )
        if self.compaction_max_delta is not None and self.compaction_max_delta < 1:
            raise ValueError(
                f"compaction_max_delta must be >= 1 or None, "
                f"got {self.compaction_max_delta}"
            )
        if self.compaction_max_tombstone_ratio is not None and not (
            0.0 < self.compaction_max_tombstone_ratio <= 1.0
        ):
            raise ValueError(
                f"compaction_max_tombstone_ratio must be in (0, 1] or None, "
                f"got {self.compaction_max_tombstone_ratio}"
            )

    def with_options(self, **changes: Any) -> "MinoanERConfig":
        """A copy with the given fields replaced (validation re-runs).

        >>> MinoanERConfig().with_options(theta=0.5).theta
        0.5
        """
        return replace(self, **changes)


PAPER_DEFAULT = MinoanERConfig()
"""The paper's suggested global configuration (k, K, N, theta) = (2, 15, 3, 0.6)."""


def config_to_dict(config: MinoanERConfig) -> dict[str, Any]:
    """JSON-serialisable dict of all config fields.

    Inverse of :func:`config_from_dict`; used by the columnar index
    header (``repro.serving.format``) so a loaded index reconstructs an
    equal :class:`MinoanERConfig` without pickling it.
    """
    out: dict[str, Any] = {}
    for spec in fields(config):
        value = getattr(config, spec.name)
        if isinstance(value, tuple):
            value = list(value)
        out[spec.name] = value
    return out


def config_from_dict(data: Mapping[str, Any]) -> MinoanERConfig:
    """Rebuild a :class:`MinoanERConfig` from :func:`config_to_dict` output.

    Unknown keys are ignored (an index written by a build with extra
    knobs still loads), missing keys take defaults, and JSON's
    list/tuple erasure is undone so the round-trip compares equal.
    """
    known = {spec.name for spec in fields(MinoanERConfig)}
    kwargs = {key: value for key, value in data.items() if key in known}
    if isinstance(kwargs.get("stopwords"), list):
        kwargs["stopwords"] = tuple(kwargs["stopwords"])
    return MinoanERConfig(**kwargs)
