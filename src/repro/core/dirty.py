"""Dirty ER: deduplicating a single KB with MinoanER's machinery.

Section 2 of the paper: "the proposed techniques can be easily
generalized to ... a single dirty KB, i.e., a KB that contains
duplicates", and Definition 3.3 notes the disjunctive blocking graph
"covers dirty ER as well" -- the graph simply stops being bipartite.

This module makes that generalization concrete:

* token and name blocks are built within the one KB; a block of size
  ``n`` suggests ``n * (n - 1) / 2`` intra-KB comparisons;
* ``beta`` accumulates per unordered pair with weight
  ``1 / log2(EF(t)^2 + 1)`` -- the Definition 2.1 weight with both
  Entity Frequencies drawn from the same KB;
* ``gamma`` propagates retained ``beta`` edges through top in-neighbors
  exactly as in the clean-clean case;
* rules R1-R4 run on the symmetric graph (an edge is reciprocal when
  both endpoints retained it), and the accepted pairs are closed
  transitively into duplicate clusters.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from repro.blocking.name_blocking import normalize_name
from repro.core.config import MinoanERConfig
from repro.core.rank_aggregation import top_aggregate_candidate
from repro.graph.pruning import top_k_candidates
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics

Pair = tuple[int, int]


def _ordered(eid1: int, eid2: int) -> Pair:
    return (eid1, eid2) if eid1 < eid2 else (eid2, eid1)


@dataclass
class DirtyResolutionResult:
    """Duplicate pairs and clusters found within one KB."""

    kb: KnowledgeBase
    matches: set[Pair]
    rule_of: dict[Pair, str]
    clusters: list[tuple[int, ...]] = field(default_factory=list)

    def uri_matches(self) -> set[tuple[str, str]]:
        return {
            (self.kb.uri_of(eid1), self.kb.uri_of(eid2))
            for eid1, eid2 in self.matches
        }

    def cluster_uris(self) -> list[tuple[str, ...]]:
        return [tuple(self.kb.uri_of(eid) for eid in cluster) for cluster in self.clusters]


class DirtyMinoanER:
    """Deduplicate one KB: the non-bipartite variant of the pipeline.

    Parameters mirror :class:`repro.core.pipeline.MinoanER`; the same
    configuration object is used (``value_threshold``, ``theta``,
    ``candidates_k`` etc. keep their meaning).

    Examples
    --------
    >>> from repro.kb.entity import EntityDescription
    >>> from repro.kb.knowledge_base import KnowledgeBase
    >>> kb = KnowledgeBase([
    ...     EntityDescription("a", [("label", "fat duck bray")]),
    ...     EntityDescription("b", [("label", "the fat duck bray")]),
    ...     EntityDescription("c", [("label", "unrelated diner")]),
    ... ])
    >>> result = DirtyMinoanER().resolve(kb)
    >>> result.uri_matches()
    {('a', 'b')}
    """

    def __init__(self, config: MinoanERConfig | None = None):
        self.config = config or MinoanERConfig()

    # ------------------------------------------------------------------
    def resolve(self, kb: KnowledgeBase) -> DirtyResolutionResult:
        """Find duplicate pairs within ``kb`` and cluster them."""
        config = self.config
        stats = KBStatistics(kb, config.name_attributes_k, config.relations_n)

        name_pairs = self._exclusive_name_pairs(stats)
        beta_rows = self._accumulate_beta(kb)
        value_candidates = [
            top_k_candidates(row, config.candidates_k) for row in beta_rows
        ]
        neighbor_candidates = self._neighbor_candidates(stats, value_candidates)

        matches, rule_of = self._match(
            kb, name_pairs, value_candidates, neighbor_candidates
        )
        clusters = _connected_components(matches, len(kb))
        return DirtyResolutionResult(
            kb=kb, matches=matches, rule_of=rule_of, clusters=clusters
        )

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    def _exclusive_name_pairs(self, stats: KBStatistics) -> set[Pair]:
        """Pairs of entities that, and only they, share a name (R1)."""
        by_name: dict[str, list[int]] = defaultdict(list)
        for eid in range(len(stats.kb)):
            seen: set[str] = set()
            for raw in stats.names(eid):
                name = normalize_name(raw)
                if name and name not in seen:
                    seen.add(name)
                    by_name[name].append(eid)
        return {
            _ordered(eids[0], eids[1])
            for eids in by_name.values()
            if len(eids) == 2
        }

    def _accumulate_beta(self, kb: KnowledgeBase) -> list[dict[int, float]]:
        """Intra-KB valueSim from token blocks, with budget purging."""
        config = self.config
        index = kb.token_index
        # Per-token "blocks": comparisons = n * (n - 1) / 2.
        levels: list[tuple[int, list[int]]] = []
        for token, eids in index.items():
            if len(eids) >= 2:
                levels.append((len(eids) * (len(eids) - 1) // 2, eids))
        levels.sort(key=lambda item: item[0])
        cartesian = len(kb) * max(0, len(kb) - 1) // 2
        budget = max(config.purging_budget_ratio * cartesian, 1000.0)
        rows: list[dict[int, float]] = [dict() for _ in range(len(kb))]
        cumulative = 0
        for comparisons, eids in levels:
            cumulative += comparisons
            if config.purge_blocks and cumulative > budget and comparisons > levels[0][0]:
                break
            frequency = len(eids)
            weight = 1.0 / math.log2(frequency * frequency + 1.0)
            for position, eid1 in enumerate(eids):
                for eid2 in eids[position + 1 :]:
                    rows[eid1][eid2] = rows[eid1].get(eid2, 0.0) + weight
                    rows[eid2][eid1] = rows[eid2].get(eid1, 0.0) + weight
        return rows

    def _neighbor_candidates(
        self,
        stats: KBStatistics,
        value_candidates: list[tuple],
    ) -> list[tuple]:
        """gamma propagation through top in-neighbors (symmetric)."""
        retained: dict[Pair, float] = {}
        for eid, candidates in enumerate(value_candidates):
            for other, weight in candidates:
                retained[_ordered(eid, other)] = weight
        gamma_rows: list[dict[int, float]] = [dict() for _ in range(len(stats.kb))]
        for (eid1, eid2), weight in retained.items():
            sources1 = stats.top_in_neighbors(eid1)
            sources2 = stats.top_in_neighbors(eid2)
            for source1 in sources1:
                for source2 in sources2:
                    if source1 == source2:
                        continue
                    gamma_rows[source1][source2] = (
                        gamma_rows[source1].get(source2, 0.0) + weight
                    )
                    gamma_rows[source2][source1] = (
                        gamma_rows[source2].get(source1, 0.0) + weight
                    )
        return [top_k_candidates(row, self.config.candidates_k) for row in gamma_rows]

    # ------------------------------------------------------------------
    # Matching (Algorithm 2 on the symmetric graph)
    # ------------------------------------------------------------------
    def _match(
        self,
        kb: KnowledgeBase,
        name_pairs: set[Pair],
        value_candidates: list[tuple],
        neighbor_candidates: list[tuple],
    ) -> tuple[set[Pair], dict[Pair, str]]:
        config = self.config
        collected: list[tuple[Pair, float, str]] = []
        matched: set[int] = set()

        if config.use_name_rule:
            for pair in sorted(name_pairs):
                collected.append((pair, float("inf"), "R1"))
                matched.update(pair)

        if config.use_value_rule:
            for eid in range(len(kb)):
                if eid in matched or not value_candidates[eid]:
                    continue
                partner, beta = value_candidates[eid][0]
                if beta >= config.value_threshold:
                    collected.append((_ordered(eid, partner), beta, "R2"))
                    matched.update((eid, partner))

        if config.use_rank_aggregation:
            # Dirty ER lacks the clean-clean guarantee that every entity
            # has at most one duplicate, so R3 is applied in its strict
            # form: a pair matches only when each endpoint is the
            # *other's* top aggregate candidate (mutual best), not
            # merely reciprocally connected.
            proposals: dict[int, tuple[int, float]] = {}
            for eid in range(len(kb)):
                if eid in matched:
                    continue
                neighbors = (
                    neighbor_candidates[eid] if config.use_neighbor_evidence else ()
                )
                best = top_aggregate_candidate(
                    value_candidates[eid], neighbors, config.theta
                )
                if best is not None:
                    proposals[eid] = best
            for eid, (partner, score) in sorted(proposals.items()):
                if eid in matched or partner in matched:
                    continue
                reverse = proposals.get(partner)
                if reverse is not None and reverse[0] == eid:
                    collected.append((_ordered(eid, partner), score, "R3"))
                    matched.update((eid, partner))

        if config.use_reciprocity:
            out_sets = [
                {c for c, _ in value_candidates[eid]}
                | {c for c, _ in neighbor_candidates[eid]}
                for eid in range(len(kb))
            ]
            for pair in name_pairs:
                out_sets[pair[0]].add(pair[1])
                out_sets[pair[1]].add(pair[0])
            collected = [
                item
                for item in collected
                if item[0][1] in out_sets[item[0][0]]
                and item[0][0] in out_sets[item[0][1]]
            ]

        # Deduplicate (a pair may be proposed from both endpoints).
        best_by_pair: dict[Pair, tuple[float, str]] = {}
        priority = {"R1": 0, "R2": 1, "R3": 2}
        for pair, score, rule in collected:
            current = best_by_pair.get(pair)
            if current is None or (priority[rule], -score) < (
                priority[current[1]],
                -current[0],
            ):
                best_by_pair[pair] = (score, rule)
        matches = set(best_by_pair)
        rule_of = {pair: rule for pair, (_, rule) in best_by_pair.items()}
        return matches, rule_of


def _connected_components(pairs: set[Pair], size: int) -> list[tuple[int, ...]]:
    """Transitive closure of duplicate pairs into clusters (size >= 2)."""
    parent = list(range(size))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for eid1, eid2 in pairs:
        root1, root2 = find(eid1), find(eid2)
        if root1 != root2:
            parent[root2] = root1

    clusters: dict[int, list[int]] = defaultdict(list)
    for eid in range(size):
        clusters[find(eid)].append(eid)
    return sorted(
        tuple(members) for members in clusters.values() if len(members) >= 2
    )
