"""End-to-end MinoanER pipeline: statistics -> blocking -> graph -> matching.

:class:`MinoanER` is the public facade.  It wires the substrates in the
order of the paper's architecture (Figure 4) -- serially; the
stage-parallel variant mirroring the Spark implementation lives in
:mod:`repro.parallel.pipeline` and produces identical matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.base import BlockCollection
from repro.blocking.name_blocking import name_blocks
from repro.blocking.purging import purge_blocks
from repro.blocking.token_blocking import token_blocks
from repro.core.config import MinoanERConfig
from repro.core.matcher import MatchingResult, NonIterativeMatcher
from repro.evaluation.metrics import MatchingReport, evaluate_matches
from repro.graph.blocking_graph import DisjunctiveBlockingGraph
from repro.graph.construction import build_blocking_graph
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.obs import NULL_RECORDER, Recorder, current_recorder, phase_span
from repro.resilience.faults import inject
from repro.resilience.policy import RetryPolicy


TIMING_PHASES = ("statistics", "blocking", "graph", "matching", "total")
"""The documented keys of :attr:`ResolutionResult.timings`, in pipeline order."""


@dataclass
class ResolutionResult:
    """Everything produced by one :meth:`MinoanER.resolve` run.

    ``matches`` are id pairs; :meth:`uri_matches` translates them to URI
    pairs for downstream consumers; ``timings`` holds per-phase wall
    times in seconds.  Since the observability layer landed, ``timings``
    is a *derived view*: the pipeline times each phase as a
    :class:`repro.obs.Span` and copies the span durations here for
    backward compatibility (export the full trace with the ``--trace``
    CLI flag or :func:`repro.obs.use_recorder`).  All
    :data:`TIMING_PHASES` keys (``statistics``, ``blocking``,
    ``graph``, ``matching``, ``total``) are always present: a phase
    that was skipped (or a result assembled by hand, e.g. in tests or
    by a pipeline variant that fuses phases) reports 0.0 rather than
    omitting the key, so downstream consumers can index ``timings``
    without guarding.

    ``degraded`` is the graceful-degradation ledger: stage name to the
    partition indices that were skipped under ``failure_mode =
    "degrade"`` (see ``docs/resilience.md``).  An empty dict -- the
    normal case -- means the result is complete; a non-empty dict means
    the match set is *partial* and names exactly what was dropped, so
    downstream consumers can decide whether a partial answer is
    acceptable instead of silently trusting it.
    """

    kb1: KnowledgeBase
    kb2: KnowledgeBase
    matching: MatchingResult
    graph: DisjunctiveBlockingGraph
    name_block_collection: BlockCollection
    token_block_collection: BlockCollection
    timings: dict[str, float] = field(default_factory=dict)
    degraded: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for phase in TIMING_PHASES:
            self.timings.setdefault(phase, 0.0)

    @property
    def is_degraded(self) -> bool:
        """True iff any stage partition was skipped to produce this result."""
        return bool(self.degraded)

    @property
    def matches(self) -> set[tuple[int, int]]:
        """Matched ``(KB1 id, KB2 id)`` pairs."""
        return self.matching.matches

    def uri_matches(self) -> set[tuple[str, str]]:
        """Matched ``(KB1 URI, KB2 URI)`` pairs."""
        return {
            (self.kb1.uri_of(eid1), self.kb2.uri_of(eid2))
            for eid1, eid2 in self.matching.matches
        }

    def evaluate(
        self, ground_truth: set[tuple[int, int]], partial_gold: bool = True
    ) -> MatchingReport:
        """Precision/recall/F1 against ``(KB1 id, KB2 id)`` ground truth.

        ``partial_gold`` follows the benchmark protocol for incomplete
        gold standards (see :func:`repro.evaluation.metrics.evaluate_matches`).
        """
        return evaluate_matches(self.matching.matches, ground_truth, partial_gold)

    def evaluate_uris(
        self, ground_truth: set[tuple[str, str]], partial_gold: bool = True
    ) -> MatchingReport:
        """Precision/recall/F1 against URI-pair ground truth."""
        return evaluate_matches(self.uri_matches(), ground_truth, partial_gold)


class MinoanER:
    """Schema-agnostic, non-iterative entity resolution over two clean KBs.

    Parameters
    ----------
    config:
        Pipeline configuration; defaults to the paper's recommended
        global configuration ``(k, K, N, theta) = (2, 15, 3, 0.6)``.
    recorder:
        Observability sink for the per-phase spans.  ``None`` (the
        default) resolves the ambient :func:`repro.obs.current_recorder`
        at each run -- a no-op unless a trace is active -- and
        ``config.observability = False`` pins the no-op recorder.

    Examples
    --------
    >>> from repro.kb.entity import EntityDescription
    >>> from repro.kb.knowledge_base import KnowledgeBase
    >>> kb1 = KnowledgeBase([EntityDescription("a", [("label", "fat duck bray")])], "K1")
    >>> kb2 = KnowledgeBase([EntityDescription("b", [("name", "fat duck bray")])], "K2")
    >>> result = MinoanER().resolve(kb1, kb2)
    >>> result.uri_matches()
    {('a', 'b')}
    """

    def __init__(
        self,
        config: MinoanERConfig | None = None,
        recorder: Recorder | None = None,
    ):
        self.config = config or MinoanERConfig()
        self._recorder = recorder

    @property
    def recorder(self) -> Recorder:
        """The span/metric sink of the next run (never None)."""
        if self._recorder is not None:
            return self._recorder
        if not self.config.observability:
            return NULL_RECORDER
        return current_recorder()

    def build_statistics(self, kb: KnowledgeBase) -> KBStatistics:
        """Per-KB statistics with this pipeline's ``k`` and ``N``."""
        return KBStatistics(
            kb,
            top_k_name_attributes=self.config.name_attributes_k,
            top_n_relations=self.config.relations_n,
        )

    def build_blocks(
        self,
        stats1: KBStatistics,
        stats2: KBStatistics,
    ) -> tuple[BlockCollection, BlockCollection]:
        """Name blocks and (purged) token blocks for the pair."""
        config = self.config
        names = name_blocks(stats1, stats2)
        tokens = token_blocks(stats1.kb, stats2.kb)
        if config.purge_blocks:
            tokens = purge_blocks(
                tokens,
                cartesian=len(stats1.kb) * len(stats2.kb),
                budget_ratio=config.purging_budget_ratio,
                max_comparisons=config.max_block_comparisons,
            )
        return names, tokens

    def phase_retry_policy(self) -> RetryPolicy | None:
        """The per-phase retry policy implied by ``config.failure_mode``.

        ``None`` for ``fail_fast``.  The serial pipeline has no
        partitions to skip, so ``degrade`` behaves like ``retry`` here:
        a phase that keeps failing propagates after the attempt budget
        (partition-level degradation is the parallel pipeline's job).
        """
        if self.config.failure_mode == "fail_fast":
            return None
        return RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            base_delay_s=self.config.retry_base_delay_s,
        )

    def resolve(self, kb1: KnowledgeBase, kb2: KnowledgeBase) -> ResolutionResult:
        """Run the full pipeline and return matches plus all intermediates.

        Each Algorithm 1/2 phase is timed as a span (``statistics``,
        ``blocking``, ``graph``, ``matching``, nested under ``resolve``)
        on :attr:`recorder`; ``ResolutionResult.timings`` is derived
        from those spans.  Every phase is an injection site
        (``stage:statistics``, ``stage:token_blocking``,
        ``stage:graph``, ``stage:matching``) and is retried per
        :meth:`phase_retry_policy` when ``config.failure_mode`` asks
        for it.
        """
        recorder = self.recorder
        policy = self.phase_retry_policy()

        def guarded(site, thunk):
            def body():
                inject(site)
                return thunk()

            if policy is None:
                return body()
            return policy.call(
                body, on_retry=lambda attempt, error: recorder.count("retry.attempts")
            )

        with phase_span(recorder, "resolve", n1=len(kb1), n2=len(kb2)) as root:
            with phase_span(recorder, "statistics") as span_statistics:
                stats1, stats2 = guarded(
                    "stage:statistics",
                    lambda: (self.build_statistics(kb1), self.build_statistics(kb2)),
                )

            with phase_span(recorder, "blocking") as span_blocking:
                names, tokens = guarded(
                    "stage:token_blocking", lambda: self.build_blocks(stats1, stats2)
                )

            with phase_span(recorder, "graph") as span_graph:
                graph = guarded(
                    "stage:graph",
                    lambda: build_blocking_graph(
                        stats1,
                        stats2,
                        names,
                        tokens,
                        k=self.config.candidates_k,
                        dynamic_pruning=self.config.dynamic_pruning,
                        pruning_gap_ratio=self.config.pruning_gap_ratio,
                        backend=self.config.kernel_backend,
                    ),
                )

            with phase_span(recorder, "matching") as span_matching:
                matching = guarded(
                    "stage:matching",
                    lambda: NonIterativeMatcher(self.config).match(graph),
                )

        timings = {
            "statistics": span_statistics.seconds,
            "blocking": span_blocking.seconds,
            "graph": span_graph.seconds,
            "matching": span_matching.seconds,
            "total": root.seconds,
        }
        return ResolutionResult(
            kb1=kb1,
            kb2=kb2,
            matching=matching,
            graph=graph,
            name_block_collection=names,
            token_block_collection=tokens,
            timings=timings,
        )
