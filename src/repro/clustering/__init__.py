"""Clustering of scored candidate pairs into 1-1 matches."""

from repro.clustering.unique_mapping import unique_mapping_clustering

__all__ = ["unique_mapping_clustering"]
