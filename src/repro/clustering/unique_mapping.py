"""Unique Mapping Clustering (section 5).

The clustering step shared by SiGMa, LINDA, RiMOM and MinoanER: place
all scored pairs in a priority queue in decreasing similarity; pop
greedily; a popped pair becomes a match iff neither of its entities has
already been matched; stop when the similarity drops below a threshold.
For clean-clean ER this enforces the 1-1 mapping constraint.
"""

from __future__ import annotations

import heapq
from typing import Iterable


def unique_mapping_clustering(
    scored_pairs: Iterable[tuple[int, int, float]],
    threshold: float = 0.0,
) -> set[tuple[int, int]]:
    """Greedy 1-1 matching of ``(eid1, eid2, score)`` candidates.

    Pairs with ``score <= threshold`` are discarded.  Ties are broken by
    ascending ``(eid1, eid2)`` so results are deterministic.

    The queue is a lazy heap rather than a full sort: pairs are popped
    in ``(-score, eid1, eid2)`` order only until every distinct entity
    on one side has been matched, at which point no remaining pair can
    be accepted and the loop stops.  When a few high-scoring pairs
    saturate one KB's entities, most of the queue is never ordered.

    >>> sorted(unique_mapping_clustering([(0, 0, 0.9), (0, 1, 0.8), (1, 1, 0.7)]))
    [(0, 0), (1, 1)]
    """
    heap: list[tuple[float, int, int]] = []
    distinct_1: set[int] = set()
    distinct_2: set[int] = set()
    for eid1, eid2, score in scored_pairs:
        if score > threshold:
            heap.append((-score, eid1, eid2))
            distinct_1.add(eid1)
            distinct_2.add(eid2)
    heapq.heapify(heap)
    remaining = min(len(distinct_1), len(distinct_2))
    matched_1: set[int] = set()
    matched_2: set[int] = set()
    matches: set[tuple[int, int]] = set()
    while heap and remaining:
        _, eid1, eid2 = heapq.heappop(heap)
        if eid1 in matched_1 or eid2 in matched_2:
            continue
        matched_1.add(eid1)
        matched_2.add(eid2)
        matches.add((eid1, eid2))
        remaining -= 1
    return matches
