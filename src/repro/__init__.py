"""MinoanER reproduction: schema-agnostic, non-iterative, parallel Web-entity resolution.

This package reproduces the system described in

    Efthymiou, Papadakis, Stefanidis, Christophides.
    "MinoanER: Schema-Agnostic, Non-Iterative, Massively Parallel
    Resolution of Web Entities". EDBT 2019.

The top-level namespace re-exports the pieces most users need:

* :class:`~repro.kb.entity.EntityDescription` and
  :class:`~repro.kb.knowledge_base.KnowledgeBase` -- the data model.
* :class:`~repro.core.config.MinoanERConfig` and
  :class:`~repro.core.pipeline.MinoanER` -- the end-to-end resolver.
* :func:`~repro.datasets.load_profile` -- the four benchmark KB-pair
  profiles used throughout the paper's evaluation.

Quickstart::

    from repro import MinoanER, MinoanERConfig
    from repro.datasets import load_profile

    pair = load_profile("restaurant")
    matcher = MinoanER(MinoanERConfig())
    result = matcher.resolve(pair.kb1, pair.kb2)
    print(result.evaluate(pair.ground_truth))
"""

from repro.core.config import MinoanERConfig
from repro.core.dirty import DirtyMinoanER
from repro.core.multi import MultiKBResolver
from repro.core.pipeline import MinoanER, ResolutionResult
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase

__version__ = "1.0.0"

__all__ = [
    "DirtyMinoanER",
    "EntityDescription",
    "KnowledgeBase",
    "MinoanER",
    "MinoanERConfig",
    "MultiKBResolver",
    "ResolutionResult",
    "__version__",
]
