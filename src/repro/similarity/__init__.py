"""Similarity metrics: the paper's valueSim/neighborNSim plus classic measures.

``value`` and ``neighbor`` implement Definitions 2.1 and 2.5 -- the
schema-agnostic, *unnormalised* metrics at the heart of MinoanER.
``measures`` and ``weighting`` provide the normalised token-vector
similarities (Cosine, Jaccard, Generalized Jaccard, SiGMa) and TF /
TF-IDF weighting schemes used by the fine-tuned BSL baseline
(section 6, "Baselines").
"""

from repro.similarity.measures import (
    cosine,
    generalized_jaccard,
    jaccard,
    sigma_similarity,
)
from repro.similarity.neighbor import neighbor_similarity
from repro.similarity.value import normalized_value_similarity, value_similarity
from repro.similarity.weighting import tf_idf_profiles, tf_profiles

__all__ = [
    "cosine",
    "generalized_jaccard",
    "jaccard",
    "neighbor_similarity",
    "normalized_value_similarity",
    "sigma_similarity",
    "tf_idf_profiles",
    "tf_profiles",
    "value_similarity",
]
