"""Token-vector weighting schemes (TF, TF-IDF) for the BSL baseline.

The paper's baseline BSL represents every description by its token
n-grams and weights them by TF or TF-IDF before applying a normalised
similarity measure (section 6, "Baselines").  A *profile* here is a
``dict[str, float]`` sparse vector per entity.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.tokenizer import tokenize


def ngrams(tokens: Sequence[str], n: int) -> list[str]:
    """Token n-grams of a token sequence, joined by spaces.

    >>> ngrams(["fat", "duck", "bray"], 2)
    ['fat duck', 'duck bray']
    >>> ngrams(["fat"], 2)
    []
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return list(tokens)
    return [" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def entity_ngram_counts(kb: KnowledgeBase, eid: int, n: int) -> Counter[str]:
    """Raw n-gram term counts for one entity (per-value, so n-grams never
    span two literal values)."""
    counts: Counter[str] = Counter()
    for value in kb.literal_values(eid):
        counts.update(ngrams(tokenize(value), n))
    return counts


def tf_profiles(kb: KnowledgeBase, n: int = 1) -> list[dict[str, float]]:
    """L2-normalised term-frequency vectors for every entity of ``kb``."""
    profiles: list[dict[str, float]] = []
    for eid in range(len(kb)):
        counts = entity_ngram_counts(kb, eid, n)
        profiles.append(_l2_normalise(dict(counts)))
    return profiles


def tf_idf_profiles(kb: KnowledgeBase, n: int = 1) -> list[dict[str, float]]:
    """L2-normalised TF-IDF vectors for every entity of ``kb``.

    IDF uses the smoothed form ``log(1 + |E| / df(t))`` over this KB's
    own documents, mirroring standard IR practice.
    """
    per_entity: list[Counter[str]] = [entity_ngram_counts(kb, eid, n) for eid in range(len(kb))]
    document_frequency: Counter[str] = Counter()
    for counts in per_entity:
        document_frequency.update(counts.keys())
    total = max(len(kb), 1)
    profiles: list[dict[str, float]] = []
    for counts in per_entity:
        vector = {
            term: tf * math.log(1.0 + total / document_frequency[term])
            for term, tf in counts.items()
        }
        profiles.append(_l2_normalise(vector))
    return profiles


def _l2_normalise(vector: dict[str, float]) -> dict[str, float]:
    norm = math.sqrt(sum(weight * weight for weight in vector.values()))
    if norm == 0.0:
        return {}
    return {term: weight / norm for term, weight in vector.items()}
