"""Normalised similarity measures over sparse token-weight vectors.

These are the four measures the paper's BSL baseline grid-searches over
(section 6, "Baselines"): Cosine, Jaccard, Generalized Jaccard and the
SiGMa weighted-overlap similarity.  All operate on ``dict[str, float]``
sparse vectors (see :mod:`repro.similarity.weighting`) and return values
in ``[0, 1]``.
"""

from __future__ import annotations


def cosine(vector1: dict[str, float], vector2: dict[str, float]) -> float:
    """Cosine similarity.  Inputs from :mod:`weighting` are already
    L2-normalised, so this reduces to a sparse dot product, but the
    implementation renormalises defensively for raw vectors.

    >>> cosine({"a": 1.0}, {"a": 1.0})
    1.0
    >>> cosine({"a": 1.0}, {"b": 1.0})
    0.0
    """
    if not vector1 or not vector2:
        return 0.0
    if len(vector2) < len(vector1):
        vector1, vector2 = vector2, vector1
    dot = sum(weight * vector2.get(term, 0.0) for term, weight in vector1.items())
    norm1 = sum(w * w for w in vector1.values()) ** 0.5
    norm2 = sum(w * w for w in vector2.values()) ** 0.5
    if norm1 == 0.0 or norm2 == 0.0:
        return 0.0
    return min(1.0, dot / (norm1 * norm2))


def jaccard(vector1: dict[str, float], vector2: dict[str, float]) -> float:
    """Set Jaccard over the vectors' terms (weights ignored).

    >>> jaccard({"a": 1, "b": 1}, {"b": 1, "c": 1})
    0.3333333333333333
    """
    if not vector1 or not vector2:
        return 0.0
    terms1, terms2 = set(vector1), set(vector2)
    intersection = len(terms1 & terms2)
    if intersection == 0:
        return 0.0
    return intersection / len(terms1 | terms2)


def generalized_jaccard(vector1: dict[str, float], vector2: dict[str, float]) -> float:
    """Weighted (generalized) Jaccard: ``sum min(w1, w2) / sum max(w1, w2)``.

    >>> generalized_jaccard({"a": 2.0}, {"a": 1.0})
    0.5
    """
    if not vector1 or not vector2:
        return 0.0
    terms = set(vector1) | set(vector2)
    numerator = 0.0
    denominator = 0.0
    for term in terms:
        w1 = vector1.get(term, 0.0)
        w2 = vector2.get(term, 0.0)
        numerator += min(w1, w2)
        denominator += max(w1, w2)
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


def sigma_similarity(vector1: dict[str, float], vector2: dict[str, float]) -> float:
    """SiGMa's weighted token-overlap similarity.

    Following Lacoste-Julien et al. (KDD 2013), the string similarity is
    the weight mass of the shared terms relative to the total weight
    mass of both descriptions:
    ``sum_{t in shared} (w1(t) + w2(t)) / (sum w1 + sum w2)``.
    The paper applies it to TF-IDF weights only.

    >>> sigma_similarity({"a": 1.0}, {"a": 1.0})
    1.0
    """
    if not vector1 or not vector2:
        return 0.0
    total = sum(vector1.values()) + sum(vector2.values())
    if total == 0.0:
        return 0.0
    if len(vector2) < len(vector1):
        vector1, vector2 = vector2, vector1
    shared = sum(
        weight + vector2[term] for term, weight in vector1.items() if term in vector2
    )
    return min(1.0, shared / total)


MEASURES = {
    "cosine": cosine,
    "jaccard": jaccard,
    "generalized_jaccard": generalized_jaccard,
    "sigma": sigma_similarity,
}
"""Registry used by the BSL grid search (name -> callable)."""
