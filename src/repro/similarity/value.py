"""Value similarity (Definition 2.1): frequency-weighted common tokens.

``valueSim(e_i, e_j) = sum over shared tokens t of
1 / log2(EF_E1(t) * EF_E2(t) + 1)``

where ``EF_E(t)`` is the Entity Frequency of token ``t`` in KB ``E`` --
the number of descriptions whose values contain ``t``.  The metric is
*unnormalised* (range ``[0, +inf)``): the count of shared tokens is
itself matching evidence, so it is not divided away.  A token shared by
nobody else contributes its maximum of 1.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.kb.knowledge_base import KnowledgeBase


def token_pair_weight(ef1: int, ef2: int) -> float:
    """Contribution of one shared token given its EF in each KB.

    >>> token_pair_weight(1, 1)
    1.0
    """
    if ef1 < 1 or ef2 < 1:
        raise ValueError(f"entity frequencies must be >= 1, got ({ef1}, {ef2})")
    return 1.0 / math.log2(ef1 * ef2 + 1.0)


def value_similarity(kb1: KnowledgeBase, kb2: KnowledgeBase, eid1: int, eid2: int) -> float:
    """``valueSim`` between entity ``eid1`` of ``kb1`` and ``eid2`` of ``kb2``.

    This is the reference (pairwise) implementation; the blocking graph
    derives the same quantity from token-block sizes without pairwise
    loops (section 3.1: "token blocking allows for deriving valueSim
    from the size of blocks shared by two descriptions").
    """
    tokens1 = kb1.tokens(eid1)
    tokens2 = kb2.tokens(eid2)
    if len(tokens2) < len(tokens1):
        tokens1, tokens2 = tokens2, tokens1
    score = 0.0
    for token in tokens1:
        if token in tokens2:
            score += token_pair_weight(kb1.entity_frequency(token), kb2.entity_frequency(token))
    return score


def value_similarity_of_token_sets(
    tokens1: Iterable[str],
    tokens2: Iterable[str],
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
) -> float:
    """``valueSim`` over explicit token sets (used by tests and baselines)."""
    set1 = frozenset(tokens1)
    set2 = frozenset(tokens2)
    score = 0.0
    for token in set1 & set2:
        ef1 = kb1.entity_frequency(token)
        ef2 = kb2.entity_frequency(token)
        if ef1 and ef2:
            score += token_pair_weight(ef1, ef2)
    return score


def max_value_similarity(kb1: KnowledgeBase, kb2: KnowledgeBase, eid1: int) -> tuple[int, float]:
    """Best ``valueSim`` partner of ``eid1`` in ``kb2`` by brute force.

    Quadratic; intended for tests and tiny examples, not for pipelines.
    Returns ``(-1, 0.0)`` when ``kb2`` is empty or nothing overlaps.
    """
    best_id, best_score = -1, 0.0
    for eid2 in range(len(kb2)):
        score = value_similarity(kb1, kb2, eid1, eid2)
        if score > best_score:
            best_id, best_score = eid2, score
    return best_id, best_score


def normalized_value_similarity(kb1: KnowledgeBase, kb2: KnowledgeBase, eid1: int, eid2: int) -> float:
    """Weighted-Jaccard form of valueSim, in [0, 1].

    Used only for *reporting* (the Figure 2 scatter plots a normalised
    horizontal axis -- "weighted Jaccard"); the matcher always works
    with the raw metric.  Shared tokens carry their valueSim weight
    ``1/log2(EF1 * EF2 + 1)``; tokens present in only one KB weigh
    ``1/log2(EF^2 + 1)`` against their own KB's frequency.  The score is
    shared weight over union weight, so a pair with many unshared
    tokens scores low even when its shared tokens are rare.
    """
    tokens1 = kb1.tokens(eid1)
    tokens2 = kb2.tokens(eid2)
    if not tokens1 or not tokens2:
        return 0.0
    shared_weight = 0.0
    union_weight = 0.0
    for token in tokens1:
        ef1 = kb1.entity_frequency(token)
        if token in tokens2:
            weight = token_pair_weight(ef1, kb2.entity_frequency(token))
            shared_weight += weight
        else:
            weight = token_pair_weight(ef1, ef1)
        union_weight += weight
    for token in tokens2:
        if token not in tokens1:
            ef2 = kb2.entity_frequency(token)
            union_weight += token_pair_weight(ef2, ef2)
    if union_weight <= 0.0:
        return 0.0
    return min(1.0, shared_weight / union_weight)
