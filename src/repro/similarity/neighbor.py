"""Neighbor similarity (Definition 2.5): value similarity of top neighbors.

``neighborNSim(e_i, e_j)`` sums ``valueSim`` over *all pairs* of the two
entities' top-N neighbors -- the neighbors reached through each entity's
N most important relations.  No relation alignment is assumed: because
the mapping between relations of the two KBs is unknown, every
cross-product pair of top neighbors contributes (Example 2.6).
"""

from __future__ import annotations

from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.similarity.value import value_similarity


def neighbor_similarity(
    stats1: KBStatistics,
    stats2: KBStatistics,
    eid1: int,
    eid2: int,
) -> float:
    """Reference (pairwise) ``neighborNSim`` between two entities.

    ``stats1``/``stats2`` carry the per-KB top-N neighbor sets; ``N`` is
    whatever those statistics were built with.  The blocking graph
    computes the same quantity by propagating beta weights through
    top in-neighbors (Algorithm 1, lines 20-27) instead of calling this
    quadratic form.

    >>> # neighbors with no token overlap contribute nothing
    """
    kb1: KnowledgeBase = stats1.kb
    kb2: KnowledgeBase = stats2.kb
    total = 0.0
    for neighbor1 in stats1.top_neighbors(eid1):
        for neighbor2 in stats2.top_neighbors(eid2):
            total += value_similarity(kb1, kb2, neighbor1, neighbor2)
    return total


def max_neighbor_value_similarity(
    stats1: KBStatistics,
    stats2: KBStatistics,
    eid1: int,
    eid2: int,
    normalized: bool = False,
) -> float:
    """Maximum ``valueSim`` over pairs of top neighbors.

    This is the vertical axis of the paper's Figure 2 ("the maximum
    value similarity of their neighbors").  With ``normalized=True`` the
    per-pair similarity is normalised exactly as the figure's axes are.
    """
    from repro.similarity.value import normalized_value_similarity

    kb1, kb2 = stats1.kb, stats2.kb
    best = 0.0
    for neighbor1 in stats1.top_neighbors(eid1):
        for neighbor2 in stats2.top_neighbors(eid2):
            if normalized:
                score = normalized_value_similarity(kb1, kb2, neighbor1, neighbor2)
            else:
                score = value_similarity(kb1, kb2, neighbor1, neighbor2)
            best = max(best, score)
    return best
