"""The disjunctive blocking graph: construction, weighting, pruning.

Section 3.2-3.3 of the paper.  Nodes are entity descriptions; an edge
between two cross-KB entities means at least one co-occurrence condition
holds, and carries the label ``(alpha, beta, gamma)``:

* ``alpha = 1`` -- the pair exclusively shares a name (singleton name block);
* ``beta``  -- value similarity (Definition 2.1), derived from token blocks;
* ``gamma`` -- neighbor similarity (Definition 2.5), derived by
  propagating ``beta`` through top in-neighbors.

After weighting, each node keeps its top-K edges by ``beta`` and its
top-K edges by ``gamma`` -- undirected edges become *directed* and the
matcher later exploits reciprocity (rule R4).
"""

from repro.graph.blocking_graph import DisjunctiveBlockingGraph
from repro.graph.construction import build_blocking_graph
from repro.graph.pruning import top_k_candidates

__all__ = [
    "DisjunctiveBlockingGraph",
    "build_blocking_graph",
    "top_k_candidates",
]
