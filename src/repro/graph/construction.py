"""Disjunctive blocking graph construction (Algorithm 1).

Three evidence passes, each independent until the final assembly:

1. **Name evidence** -- every name block containing exactly one entity
   per KB yields an ``alpha = 1`` edge (lines 5-9).
2. **Value evidence** -- ``beta`` weights accumulate over token blocks:
   each block ``b`` contributes ``1 / log2(|b1|*|b2| + 1)`` to every
   cross pair it contains, which reconstructs ``valueSim`` because
   ``|b1| = EF_1(t)`` and ``|b2| = EF_2(t)`` (lines 10-19).  Each node
   then keeps its top-K candidates by ``beta``.
3. **Neighbor evidence** -- every *retained* ``beta`` edge ``(i, j)``
   adds its weight to ``gamma`` of every pair of the entities' top
   in-neighbors (lines 20-27), after which each node keeps its top-K
   candidates by ``gamma`` (lines 28-33).

The returned graph is directed: each side's candidate lists were pruned
independently.
"""

from __future__ import annotations

import math

from repro.blocking.base import BlockCollection
from repro.graph.blocking_graph import CandidateList, DisjunctiveBlockingGraph
from repro.graph.pruning import adaptive_candidates, top_k_candidates
from repro.kb.statistics import KBStatistics


def name_evidence(blocks: BlockCollection) -> tuple[dict[int, int], dict[int, int]]:
    """``alpha = 1`` edges from singleton-pair name blocks.

    Returns forward (KB1 id -> KB2 id) and reverse mappings.  If an
    entity occurs in several singleton name blocks with different
    partners (it has several exclusive names), the first block in
    collection order wins, keeping the result deterministic.
    """
    forward: dict[int, int] = {}
    reverse: dict[int, int] = {}
    for block in blocks:
        if block.is_singleton_pair:
            eid1, eid2 = block.side1[0], block.side2[0]
            if eid1 not in forward and eid2 not in reverse:
                forward[eid1] = eid2
                reverse[eid2] = eid1
    return forward, reverse


def accumulate_beta(blocks: BlockCollection, n1: int) -> list[dict[int, float]]:
    """Accumulate ``beta`` (valueSim) for every co-occurring pair.

    Returns, per KB1 entity, a dict ``KB2 id -> beta``.  Cost is exactly
    the number of comparisons suggested by ``blocks`` (``||B_T||``),
    which Block Purging has already bounded.
    """
    beta: list[dict[int, float]] = [dict() for _ in range(n1)]
    for block in blocks:
        weight = 1.0 / math.log2(block.comparisons + 1.0)
        for eid1 in block.side1:
            row = beta[eid1]
            for eid2 in block.side2:
                row[eid2] = row.get(eid2, 0.0) + weight
    return beta


def transpose_beta(beta_rows: list[dict[int, float]], n2: int) -> list[dict[int, float]]:
    """Per-KB2-entity view of the same ``beta`` weights."""
    columns: list[dict[int, float]] = [dict() for _ in range(n2)]
    for eid1, row in enumerate(beta_rows):
        for eid2, weight in row.items():
            columns[eid2][eid1] = weight
    return columns


def value_evidence(
    blocks: BlockCollection,
    n1: int,
    n2: int,
    k: int,
    select=top_k_candidates,
) -> tuple[list[CandidateList], list[CandidateList]]:
    """Top-K value candidates per node on both sides (lines 10-19)."""
    beta_rows = accumulate_beta(blocks, n1)
    beta_columns = transpose_beta(beta_rows, n2)
    side1 = [select(row, k) for row in beta_rows]
    side2 = [select(column, k) for column in beta_columns]
    return side1, side2


def retained_beta_edges(
    value_candidates_1: list[CandidateList],
    value_candidates_2: list[CandidateList],
) -> dict[tuple[int, int], float]:
    """Undirected union of the directed top-K ``beta`` edges.

    ``beta`` is symmetric, so an edge kept by either endpoint carries
    the same weight; the union avoids counting a pair twice during
    ``gamma`` propagation (each neighbor pair contributes once, as in
    Example 3.4).
    """
    edges: dict[tuple[int, int], float] = {}
    for eid1, candidates in enumerate(value_candidates_1):
        for eid2, weight in candidates:
            edges[(eid1, eid2)] = weight
    for eid2, candidates in enumerate(value_candidates_2):
        for eid1, weight in candidates:
            edges[(eid1, eid2)] = weight
    return edges


def neighbor_evidence(
    beta_edges: dict[tuple[int, int], float],
    stats1: KBStatistics,
    stats2: KBStatistics,
    k: int,
    select=top_k_candidates,
) -> tuple[list[CandidateList], list[CandidateList]]:
    """Top-K neighbor candidates per node (lines 20-33).

    Every retained ``beta`` edge ``(i, j)`` is evidence for every pair
    ``(in_i, in_j)`` of their top in-neighbors: ``gamma[in_i][in_j] +=
    beta[i][j]``.  Summed over all retained edges this reconstructs
    ``neighborNSim`` restricted to value-similar neighbor pairs.
    """
    n1, n2 = len(stats1.kb), len(stats2.kb)
    gamma_rows: list[dict[int, float]] = [dict() for _ in range(n1)]
    for (eid1, eid2), weight in beta_edges.items():
        in1 = stats1.top_in_neighbors(eid1)
        if not in1:
            continue
        in2 = stats2.top_in_neighbors(eid2)
        if not in2:
            continue
        for source in in1:
            row = gamma_rows[source]
            for target in in2:
                row[target] = row.get(target, 0.0) + weight
    gamma_columns: list[dict[int, float]] = [dict() for _ in range(n2)]
    for source, row in enumerate(gamma_rows):
        for target, weight in row.items():
            gamma_columns[target][source] = weight
    side1 = [select(row, k) for row in gamma_rows]
    side2 = [select(column, k) for column in gamma_columns]
    return side1, side2


def _kernel_evidence(
    stats1: KBStatistics,
    stats2: KBStatistics,
    token_blocks: BlockCollection,
    k: int,
    dynamic_pruning: bool,
    pruning_gap_ratio: float,
    backend: str,
):
    """Value + neighbor evidence via the array kernel layer.

    Bit-identical to the dict reference path (see
    :mod:`repro.kernels`); only the data layout and wall-clock differ.
    """
    from repro.graph.pruning import DEFAULT_ADAPTIVE_MINIMUM
    from repro.kernels import InternedBlocks, get_backend, retained_edge_arrays

    impl = get_backend(backend)
    n1, n2 = len(stats1.kb), len(stats2.kb)
    cut = (pruning_gap_ratio, DEFAULT_ADAPTIVE_MINIMUM) if dynamic_pruning else None
    interned = InternedBlocks.from_blocks(token_blocks, n1, n2)
    value_1, value_2 = impl.value_topk(interned, k, cut)
    edges = retained_edge_arrays(value_1, value_2)
    neighbor_1, neighbor_2 = impl.gamma_topk(
        edges, stats1.in_neighbor_csr(), stats2.in_neighbor_csr(), k, cut
    )
    return value_1, value_2, neighbor_1, neighbor_2


def build_blocking_graph(
    stats1: KBStatistics,
    stats2: KBStatistics,
    name_blocks: BlockCollection,
    token_blocks: BlockCollection,
    k: int = 15,
    dynamic_pruning: bool = False,
    pruning_gap_ratio: float = 0.2,
    backend: str = "dict",
) -> DisjunctiveBlockingGraph:
    """Run Algorithm 1: weight and prune the disjunctive blocking graph.

    Parameters
    ----------
    stats1, stats2:
        Per-KB statistics (they carry the KBs, the top-N relation
        configuration and the in-neighbor maps).
    name_blocks, token_blocks:
        Output of :func:`repro.blocking.name_blocking.name_blocks` and
        (purged) :func:`repro.blocking.token_blocking.token_blocks`.
    k:
        ``K``: candidates kept per node per evidence type (paper
        default 15).
    dynamic_pruning / pruning_gap_ratio:
        Use the adaptive per-node candidate cut instead of a fixed
        top-K (the paper's future-work idea; see
        :func:`repro.graph.pruning.adaptive_candidates`).
    backend:
        Hot-path implementation: ``"dict"`` (this module's reference
        code), ``"python"`` / ``"numpy"`` (the array kernels of
        :mod:`repro.kernels`), or ``"auto"``.  Every backend returns a
        bit-identical graph.
    """
    n1, n2 = len(stats1.kb), len(stats2.kb)
    names_1, names_2 = name_evidence(name_blocks)
    if backend != "dict":
        value_1, value_2, neighbor_1, neighbor_2 = _kernel_evidence(
            stats1, stats2, token_blocks, k, dynamic_pruning, pruning_gap_ratio, backend
        )
    else:
        if dynamic_pruning:
            def select(scores, limit):
                return adaptive_candidates(scores, limit, gap_ratio=pruning_gap_ratio)
        else:
            select = top_k_candidates
        value_1, value_2 = value_evidence(token_blocks, n1, n2, k, select=select)
        beta_edges = retained_beta_edges(value_1, value_2)
        neighbor_1, neighbor_2 = neighbor_evidence(
            beta_edges, stats1, stats2, k, select=select
        )
    return DisjunctiveBlockingGraph(
        n1=n1,
        n2=n2,
        name_matches_1=names_1,
        name_matches_2=names_2,
        value_candidates_1=value_1,
        value_candidates_2=value_2,
        neighbor_candidates_1=neighbor_1,
        neighbor_candidates_2=neighbor_2,
    )
