"""The pruned, directed disjunctive blocking graph (Definition 3.3).

The graph is stored as per-node candidate lists -- precisely the
"partial information ... corresponding lists of candidates based on
names, values, or neighbors" that each Spark worker holds in the paper's
implementation (section 4.1).  For every entity of KB1 (side 1) we keep:

* its exclusive name match (``alpha = 1`` edge), if any,
* its top-K value candidates in KB2 with ``beta`` weights, and
* its top-K neighbor candidates in KB2 with ``gamma`` weights,

and symmetrically for KB2.  A *directed* edge ``v -> w`` exists iff
``w`` appears in any of ``v``'s three candidate sets.
"""

from __future__ import annotations

from typing import Iterator, Sequence

CandidateList = tuple[tuple[int, float], ...]
"""Score-descending ``(candidate id, weight)`` pairs."""


class DisjunctiveBlockingGraph:
    """Pruned blocking graph over a clean-clean KB pair.

    Side 1 nodes are KB1 entity ids ``0..n1-1``; side 2 nodes are KB2
    entity ids ``0..n2-1``.  All candidate ids are from the *other*
    side.  Instances are produced by
    :func:`repro.graph.construction.build_blocking_graph`; constructing
    one by hand is supported for tests.
    """

    def __init__(
        self,
        n1: int,
        n2: int,
        name_matches_1: dict[int, int],
        name_matches_2: dict[int, int],
        value_candidates_1: Sequence[CandidateList],
        value_candidates_2: Sequence[CandidateList],
        neighbor_candidates_1: Sequence[CandidateList],
        neighbor_candidates_2: Sequence[CandidateList],
    ):
        if len(value_candidates_1) != n1 or len(neighbor_candidates_1) != n1:
            raise ValueError("side-1 candidate lists must cover all n1 entities")
        if len(value_candidates_2) != n2 or len(neighbor_candidates_2) != n2:
            raise ValueError("side-2 candidate lists must cover all n2 entities")
        self.n1 = n1
        self.n2 = n2
        self._name_matches = (name_matches_1, name_matches_2)
        self._value_candidates = (list(value_candidates_1), list(value_candidates_2))
        self._neighbor_candidates = (list(neighbor_candidates_1), list(neighbor_candidates_2))
        self._out_sets: tuple[list[frozenset[int]] | None, list[frozenset[int]] | None] = (None, None)

    # ------------------------------------------------------------------
    # Accessors (side is 1 or 2; eid is an id on that side)
    # ------------------------------------------------------------------
    def _check_side(self, side: int) -> int:
        if side not in (1, 2):
            raise ValueError(f"side must be 1 or 2, got {side}")
        return side - 1

    def name_match(self, side: int, eid: int) -> int | None:
        """Exclusive name partner of ``eid`` (``alpha=1`` edge), or None."""
        return self._name_matches[self._check_side(side)].get(eid)

    def value_candidates(self, side: int, eid: int) -> CandidateList:
        """Top-K value candidates of ``eid``, beta-descending."""
        return self._value_candidates[self._check_side(side)][eid]

    def neighbor_candidates(self, side: int, eid: int) -> CandidateList:
        """Top-K neighbor candidates of ``eid``, gamma-descending."""
        return self._neighbor_candidates[self._check_side(side)][eid]

    def beta(self, side: int, eid: int, other: int) -> float:
        """``beta`` weight of the directed edge ``eid -> other`` (0 if absent)."""
        for candidate, score in self.value_candidates(side, eid):
            if candidate == other:
                return score
        return 0.0

    def gamma(self, side: int, eid: int, other: int) -> float:
        """``gamma`` weight of the directed edge ``eid -> other`` (0 if absent)."""
        for candidate, score in self.neighbor_candidates(side, eid):
            if candidate == other:
                return score
        return 0.0

    # ------------------------------------------------------------------
    # Directed-edge existence (used by reciprocity rule R4)
    # ------------------------------------------------------------------
    def _out_set(self, side: int, eid: int) -> frozenset[int]:
        index = self._check_side(side)
        cache = self._out_sets[index]
        if cache is None:
            n = self.n1 if side == 1 else self.n2
            cache = []
            for node in range(n):
                targets: set[int] = set()
                name_partner = self._name_matches[index].get(node)
                if name_partner is not None:
                    targets.add(name_partner)
                targets.update(c for c, _ in self._value_candidates[index][node])
                targets.update(c for c, _ in self._neighbor_candidates[index][node])
                cache.append(frozenset(targets))
            if side == 1:
                self._out_sets = (cache, self._out_sets[1])
            else:
                self._out_sets = (self._out_sets[0], cache)
        return cache[eid]

    def has_directed_edge(self, side: int, eid: int, other: int) -> bool:
        """True iff ``other`` is in any candidate set of ``eid``."""
        return other in self._out_set(side, eid)

    def is_reciprocal(self, eid1: int, eid2: int) -> bool:
        """True iff both directed edges between the pair exist (rule R4)."""
        return self.has_directed_edge(1, eid1, eid2) and self.has_directed_edge(2, eid2, eid1)

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    def directed_edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield every directed edge as ``(side, source, target)``."""
        for side, n in ((1, self.n1), (2, self.n2)):
            for eid in range(n):
                for target in sorted(self._out_set(side, eid)):
                    yield side, eid, target

    def edge_count(self) -> int:
        """Number of directed edges after pruning."""
        total = 0
        for side, n in ((1, self.n1), (2, self.n2)):
            for eid in range(n):
                total += len(self._out_set(side, eid))
        return total

    def undirected_pairs(self) -> set[tuple[int, int]]:
        """All ``(eid1, eid2)`` pairs connected in either direction."""
        pairs: set[tuple[int, int]] = set()
        for eid in range(self.n1):
            pairs.update((eid, target) for target in self._out_set(1, eid))
        for eid in range(self.n2):
            pairs.update((source, eid) for source in self._out_set(2, eid))
        return pairs

    def identical(self, other: "DisjunctiveBlockingGraph") -> bool:
        """True iff both graphs hold exactly the same candidate data.

        Stronger than semantic graph equality: candidate *order* and
        bit-level float weights must agree.  This is the check used to
        assert kernel backends reproduce the dict reference exactly.
        """
        return (
            self.n1 == other.n1
            and self.n2 == other.n2
            and self._name_matches == other._name_matches
            and all(
                tuple(mine) == tuple(theirs)
                for side in (0, 1)
                for mine, theirs in zip(
                    self._value_candidates[side], other._value_candidates[side]
                )
            )
            and all(
                tuple(mine) == tuple(theirs)
                for side in (0, 1)
                for mine, theirs in zip(
                    self._neighbor_candidates[side], other._neighbor_candidates[side]
                )
            )
        )

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` for analysis/visualisation.

        Nodes are ``("E1", eid)`` / ``("E2", eid)``; each directed edge
        carries ``alpha``, ``beta`` and ``gamma`` attributes (zero when
        that evidence type did not retain the edge).  Requires networkx
        (an optional dependency); raises ImportError otherwise.
        """
        import networkx

        graph = networkx.DiGraph()
        graph.add_nodes_from(("E1", eid) for eid in range(self.n1))
        graph.add_nodes_from(("E2", eid) for eid in range(self.n2))
        for side, n in ((1, self.n1), (2, self.n2)):
            source_label, target_label = ("E1", "E2") if side == 1 else ("E2", "E1")
            for eid in range(n):
                for target in self._out_set(side, eid):
                    pair = (eid, target) if side == 1 else (target, eid)
                    graph.add_edge(
                        (source_label, eid),
                        (target_label, target),
                        alpha=1.0 if self._name_matches[side - 1].get(eid) == target else 0.0,
                        beta=self.beta(side, eid, target),
                        gamma=self.gamma(side, eid, target),
                    )
        return graph

    def __repr__(self) -> str:
        return (
            f"DisjunctiveBlockingGraph(n1={self.n1}, n2={self.n2}, "
            f"directed_edges={self.edge_count()})"
        )
