"""Top-K candidate pruning for the blocking graph.

Section 3.3: "we keep for each node the K edges with the highest beta
and the K edges with the highest gamma weights, while pruning edges with
trivial weights".  Pruning turns the undirected weighted graph into a
directed one -- node ``v_i`` may keep an edge to ``v_j`` that ``v_j``
does not keep back, which is exactly the asymmetry rule R4 exploits.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping

DEFAULT_ADAPTIVE_MINIMUM = 3
"""Default floor of candidates kept by the adaptive gap cut."""


def _rank_key(item: tuple[int, float]) -> tuple[float, int]:
    return (-item[1], item[0])


def top_k_candidates(scores: Mapping[int, float], k: int) -> tuple[tuple[int, float], ...]:
    """The ``k`` highest-scoring candidates, score-descending.

    Zero and negative scores are trivial weights and never retained.
    Ties break on ascending candidate id so results are deterministic.

    >>> top_k_candidates({3: 1.0, 1: 2.0, 2: 1.0, 9: 0.0}, 2)
    ((1, 2.0), (2, 1.0))
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    positive = [(candidate, score) for candidate, score in scores.items() if score > 0.0]
    best = heapq.nsmallest(k, positive, key=_rank_key)
    return tuple(best)


def top_k_pairs(pairs: Iterable[tuple[int, float]], k: int) -> tuple[tuple[int, float], ...]:
    """:func:`top_k_candidates` over already-materialised ``(id, score)``
    pairs with strictly positive scores.

    This is the bounded-heap selection used by the array kernels
    (``heapq.nsmallest`` keeps at most ``k`` items in memory); the
    ranking key is shared with :func:`top_k_candidates` so both paths
    break ties identically.

    >>> top_k_pairs([(3, 1.0), (1, 2.0), (2, 1.0)], 2)
    ((1, 2.0), (2, 1.0))
    """
    return tuple(heapq.nsmallest(k, pairs, key=_rank_key))


def adaptive_cut(
    ranked: tuple[tuple[int, float], ...],
    gap_ratio: float = 0.2,
    minimum: int = DEFAULT_ADAPTIVE_MINIMUM,
) -> tuple[tuple[int, float], ...]:
    """Cut an already-ranked candidate list at the first weight *gap*.

    Shared tail of :func:`adaptive_candidates`: the list is truncated at
    the first position whose weight drops below ``gap_ratio`` of the
    running mean of the weights kept so far, keeping at least
    ``minimum`` candidates.
    """
    if not 0.0 < gap_ratio < 1.0:
        raise ValueError(f"gap_ratio must be in (0, 1), got {gap_ratio}")
    if minimum < 1:
        raise ValueError(f"minimum must be >= 1, got {minimum}")
    if len(ranked) <= minimum:
        return ranked
    kept_weight = 0.0
    for position, (_, weight) in enumerate(ranked):
        if position >= minimum and weight < gap_ratio * (kept_weight / position):
            return ranked[:position]
        kept_weight += weight
    return ranked


def adaptive_candidates(
    scores: Mapping[int, float],
    k: int,
    gap_ratio: float = 0.2,
    minimum: int = 3,
) -> tuple[tuple[int, float], ...]:
    """Dynamic per-node pruning (the paper's stated future work).

    Section 7: "how to set the parameters of pruning candidate pairs
    dynamically, based on the local similarity distributions of each
    node's candidates."  This policy starts from the node's top-``k``
    list and cuts it at the first *gap*: a position where the weight
    drops below ``gap_ratio`` of the running mean of the weights kept
    so far.  Nodes with one dominant candidate keep a short list
    (cheaper, more precise reciprocity); nodes with a flat distribution
    keep the full ``k`` (no evidence to cut on).  At least ``minimum``
    candidates are kept when available, so rank aggregation always has
    ranks to fuse.

    >>> adaptive_candidates({1: 10.0, 2: 9.5, 3: 0.1, 4: 0.05}, 4, minimum=2)
    ((1, 10.0), (2, 9.5))
    """
    return adaptive_cut(top_k_candidates(scores, k), gap_ratio, minimum)
