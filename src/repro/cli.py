"""Command-line interface: resolve, dedupe, generate, experiment, index, serve.

Usage::

    python -m repro resolve kb1.nt kb2.nt -o matches.tsv
    python -m repro dedupe kb.nt -o duplicates.tsv
    python -m repro generate restaurant --out-dir data/ --scale 0.5
    python -m repro experiment table3 --profiles restaurant bbc_dbpedia
    python -m repro index kb2.nt -o kb2.idx
    python -m repro index --migrate legacy.idx
    python -m repro index kb2.nt -o kb2.idx --shards 3
    python -m repro serve kb2.idx --mmap < queries.jsonl > answers.jsonl
    python -m repro serve kb2.idx --shards 3 --replicas 2 < q.jsonl

``resolve``, ``dedupe`` and ``index`` accept N-Triples (``.nt``) or
``subject<TAB>predicate<TAB>object`` TSV files.  ``generate``
materialises a synthetic benchmark profile to disk; ``experiment``
regenerates one of the paper's tables or figures and prints it.
``index`` freezes a target KB into a query-time resolution index
(``--migrate`` rewrites an existing file -- e.g. a legacy pickle index
-- in the current columnar format), and ``serve`` answers JSONL queries
against it (``--mmap`` serves off zero-copy memory-mapped sections; see
``docs/serving.md`` for the wire and on-disk formats).

``resolve``, ``index`` and ``serve`` accept ``--trace FILE``
(``--trace-format json|logfmt``): one :class:`repro.obs.Recorder` is
installed for the whole command and its spans/counters/histograms --
pipeline phases, parallel stages (including worker-side spans merged
across process boundaries), kernel dispatches, serving latency and
cache metrics -- are exported to ``FILE`` when the command ends; the
path ``-`` writes the trace to stderr (see ``docs/observability.md``).
``serve`` additionally accepts ``--metrics-port PORT`` (a live
Prometheus text-format endpoint on ``/metrics``) and
``--provenance [RATE]`` (sampled per-decision audit records on the
wire).

The same three commands accept ``--chaos SPEC`` (``--chaos-seed N``):
a deterministic fault-injection plan (see
:func:`repro.resilience.faults.parse_chaos` and
``docs/resilience.md``) installed for the whole command, e.g.
``--chaos 'stage:*=error*2'``.  ``resolve`` pairs it with
``--failure-mode retry|degrade`` (plus ``--retry-attempts``) and can
run the stage-parallel pipeline (``--stages thread|process``,
``--workers N``); ``serve`` pairs it with ``--deadline-ms`` and emits
per-line JSONL error records instead of aborting the stream.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core.config import MinoanERConfig
from repro.core.dirty import DirtyMinoanER
from repro.core.pipeline import MinoanER
from repro.datasets.profiles import load_profile, profile_names, scaled_profile
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.rdf import load_ground_truth_tsv, load_ntriples, load_tsv, save_ntriples

EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "figure2",
    "figure5",
    "figure6",
)


def _load_kb(path: str, name: str) -> KnowledgeBase:
    if path.endswith((".tsv", ".txt")):
        return load_tsv(path, name=name)
    return load_ntriples(path, name=name)


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    defaults = MinoanERConfig()
    parser.add_argument(
        "--name-attributes", type=int, default=defaults.name_attributes_k,
        metavar="K", help="global name attributes per KB (paper's k, default %(default)s)",
    )
    parser.add_argument(
        "--candidates", type=int, default=defaults.candidates_k,
        metavar="K", help="candidates kept per node per evidence (paper's K, default %(default)s)",
    )
    parser.add_argument(
        "--relations", type=int, default=defaults.relations_n,
        metavar="N", help="important relations per entity (paper's N, default %(default)s)",
    )
    parser.add_argument(
        "--theta", type=float, default=defaults.theta,
        help="value-vs-neighbor ranking trade-off in R3 (default %(default)s)",
    )
    parser.add_argument(
        "--no-reciprocity", action="store_true", help="disable rule R4"
    )
    parser.add_argument(
        "--no-neighbors", action="store_true", help="disable neighbor evidence in R3"
    )


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.obs.export import TRACE_FORMATS

    parser.add_argument(
        "--trace", metavar="FILE",
        help="record an observability trace (spans + metrics) and write it here",
    )
    parser.add_argument(
        "--trace-format", choices=TRACE_FORMATS, default="json",
        help="trace file format (default %(default)s)",
    )


def _add_chaos_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chaos", metavar="SPEC",
        help="deterministic fault-injection plan, e.g. 'stage:*=error*2,"
        "serve:match=delay:0.05' (see docs/resilience.md)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed of the chaos plan's probability draws (default %(default)s)",
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.parallel.context import BACKENDS
    from repro.resilience.policy import FAILURE_MODES

    defaults = MinoanERConfig()
    parser.add_argument(
        "--failure-mode", choices=FAILURE_MODES, default=defaults.failure_mode,
        help="on stage failure: abort, retry, or retry-then-skip "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--retry-attempts", type=int, default=defaults.retry_max_attempts,
        metavar="N", help="total attempts per failed unit of work "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--stages", choices=BACKENDS, default="serial",
        help="run the stage-parallel pipeline on this backend "
        "(default: the serial pipeline)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker pool size of the stage-parallel pipeline "
        "(default %(default)s)",
    )


def _config_from(args: argparse.Namespace) -> MinoanERConfig:
    defaults = MinoanERConfig()
    return MinoanERConfig(
        name_attributes_k=args.name_attributes,
        candidates_k=args.candidates,
        relations_n=args.relations,
        theta=args.theta,
        use_reciprocity=not args.no_reciprocity,
        use_neighbor_evidence=not args.no_neighbors,
        failure_mode=getattr(args, "failure_mode", defaults.failure_mode),
        retry_max_attempts=getattr(
            args, "retry_attempts", defaults.retry_max_attempts
        ),
    )


def _write_pairs(pairs: Sequence[tuple[str, str]], destination: str | None) -> None:
    lines = [f"{uri1}\t{uri2}" for uri1, uri2 in sorted(pairs)]
    if destination:
        Path(destination).write_text("\n".join(lines) + "\n", encoding="utf-8")
    else:
        for line in lines:
            print(line)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def command_resolve(args: argparse.Namespace) -> int:
    kb1 = _load_kb(args.kb1, "KB1")
    kb2 = _load_kb(args.kb2, "KB2")
    config = _config_from(args)
    if args.stages == "serial" and args.workers == 1:
        result = MinoanER(config).resolve(kb1, kb2)
    else:
        from repro.parallel.context import ParallelContext
        from repro.parallel.pipeline import ParallelMinoanER
        from repro.resilience.policy import RetryPolicy

        policy = None
        if config.failure_mode != "fail_fast":
            policy = RetryPolicy(
                max_attempts=config.retry_max_attempts,
                base_delay_s=config.retry_base_delay_s,
            )
        with ParallelContext(
            num_workers=args.workers,
            backend=args.stages,
            failure_mode=config.failure_mode,
            retry_policy=policy,
        ) as context:
            result = ParallelMinoanER(config, context).resolve(kb1, kb2)
    _write_pairs(sorted(result.uri_matches()), args.output)
    print(
        f"# {len(result.matches)} matches from |E1|={len(kb1)}, |E2|={len(kb2)} "
        f"in {result.timings['total']:.2f}s",
        file=sys.stderr,
    )
    if result.is_degraded:
        holes = "; ".join(
            f"{stage} partitions {list(parts)}"
            for stage, parts in sorted(result.degraded.items())
        )
        print(f"# DEGRADED: partial result, skipped {holes}", file=sys.stderr)
    if args.ground_truth:
        gold = load_ground_truth_tsv(args.ground_truth)
        report = result.evaluate_uris(gold)
        print(f"# quality vs {args.ground_truth}: {report}", file=sys.stderr)
    return 0


def command_dedupe(args: argparse.Namespace) -> int:
    kb = _load_kb(args.kb, "KB")
    result = DirtyMinoanER(_config_from(args)).resolve(kb)
    _write_pairs(sorted(result.uri_matches()), args.output)
    print(
        f"# {len(result.matches)} duplicate pairs in {len(result.clusters)} clusters "
        f"among {len(kb)} entities",
        file=sys.stderr,
    )
    return 0


def command_generate(args: argparse.Namespace) -> int:
    if args.scale == 1.0:
        pair = load_profile(args.profile, seed=args.seed)
    else:
        pair = scaled_profile(args.profile, args.scale, seed=args.seed)
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    save_ntriples(pair.kb1, out / "kb1.nt")
    save_ntriples(pair.kb2, out / "kb2.nt")
    with (out / "ground_truth.tsv").open("w", encoding="utf-8") as handle:
        for uri1, uri2 in sorted(pair.uri_ground_truth):
            handle.write(f"{uri1}\t{uri2}\n")
    print(
        f"wrote {out}/kb1.nt ({len(pair.kb1)} entities), "
        f"{out}/kb2.nt ({len(pair.kb2)} entities), "
        f"{out}/ground_truth.tsv ({len(pair.ground_truth)} matches)"
    )
    return 0


def command_experiment(args: argparse.Namespace) -> int:
    from repro.evaluation import experiments, reporting

    pairs = [load_profile(name) for name in args.profiles]
    if args.experiment == "table1":
        print(reporting.format_dataset_statistics(
            [experiments.dataset_statistics(pair) for pair in pairs]))
    elif args.experiment == "table2":
        print(reporting.format_block_statistics(
            [experiments.block_statistics(pair) for pair in pairs]))
    elif args.experiment == "table3":
        print(reporting.format_comparison(
            [experiments.comparison(pair) for pair in pairs]))
    elif args.experiment == "table4":
        print(reporting.format_rule_ablation(
            [experiments.rule_ablation(pair) for pair in pairs]))
    elif args.experiment == "figure2":
        print(reporting.format_similarity_distribution(
            [experiments.similarity_distribution(pair, sample=300) for pair in pairs]))
    elif args.experiment == "figure5":
        results = [
            experiments.sensitivity(pair, parameter)
            for parameter in experiments.SENSITIVITY_GRID
            for pair in pairs
        ]
        print(reporting.format_sensitivity(results))
    elif args.experiment == "figure6":
        print(reporting.format_scalability(
            [experiments.scalability(pair) for pair in pairs]))
    return 0


def command_index(args: argparse.Namespace) -> int:
    import warnings

    from repro.serving import ResolutionIndex
    from repro.serving.format import MAGIC
    from repro.serving.index import FORMAT_VERSION

    if args.migrate:
        source = args.kb
        destination = args.output or source
        with warnings.catch_warnings():
            # Migration is the documented answer to the legacy-format
            # deprecation; warning about it here would be circular.
            warnings.simplefilter("ignore", DeprecationWarning)
            index = ResolutionIndex.load(source)
        loaded_version = index.load_info["format_version"]
        index.save(destination)
        print(
            f"# migrated {source} (format v{loaded_version}) -> "
            f"{destination} (format v{FORMAT_VERSION})",
            file=sys.stderr,
        )
        return 0
    if args.compact:
        import os

        from repro.serving.live import LiveIndex, UpsertLedger

        source = args.kb
        destination = Path(args.output or source)
        live = LiveIndex(ResolutionIndex.load(source))
        events = 0
        if args.ledger:
            for op, value in UpsertLedger(args.ledger).replay():
                live.apply(op, value)
                events += 1
        index = live.compact()
        # Temp file + atomic rename: a serving process mmapping the old
        # file keeps its pages until it reloads (docs/live_index.md).
        tmp = destination.with_name(destination.name + ".tmp")
        index.save(tmp)
        os.replace(tmp, destination)
        print(
            f"# compacted {source} + {events} ledger event(s) -> "
            f"{destination}",
            file=sys.stderr,
        )
        args.output = str(destination)
    elif not args.output:
        print(
            "error: -o/--output is required unless --migrate or --compact",
            file=sys.stderr,
        )
        return 2
    else:
        # The input may be a KB to freeze, or an already-built index
        # file to (re-)shard: sniff the container magic rather than
        # guessing from the extension.
        with open(args.kb, "rb") as handle:
            is_index = handle.read(len(MAGIC)) == MAGIC
        if is_index:
            index = ResolutionIndex.load(args.kb)
            if args.kb != args.output:
                index.save(args.output)
        else:
            kb2 = _load_kb(args.kb, "KB2")
            index = ResolutionIndex.build(kb2, _config_from(args))
            index.save(args.output)
    summary = index.describe()
    print(
        f"# indexed {summary['entities']} entities "
        f"({summary['tokens']} tokens, {summary['names']} names) -> {args.output}",
        file=sys.stderr,
    )
    if args.shards:
        from repro.sharding import ShardPlanner

        paths = ShardPlanner(args.shards).write(index, args.output)
        sizes = sum(path.stat().st_size for path in paths)
        print(
            f"# sharded into {len(paths)} files "
            f"({paths[0].name} .. {paths[-1].name}, {sizes} bytes total)",
            file=sys.stderr,
        )
    return 0


def command_serve(args: argparse.Namespace) -> int:
    import json

    from repro.resilience.admission import LoadShedError
    from repro.serving import MatchEngine, RequestError, ResolutionIndex
    from repro.serving.io import ControlRequest, iter_requests, write_decisions
    from repro.serving.live import LedgerError, LiveEngine, UpsertLedger

    mmap = args.mmap if args.mmap is not None else MinoanERConfig().index_mmap
    index = ResolutionIndex.load(args.index, mmap=mmap)
    load_info = index.load_info or {}
    overrides: dict = dict(
        serving_cache_size=args.cache_size,
        serving_candidate_cap=args.candidate_cap,
        serving_batch_size=args.batch_size,
        serving_deadline_ms=args.deadline_ms,
        serving_shards=args.shards,
        serving_replicas=args.replicas,
        serving_hedge_ms=args.hedge_ms,
        failure_mode=args.failure_mode,
        serving_max_pending=args.max_pending,
        serving_quota_qps=args.quota_qps,
        serving_quota_burst=args.quota_burst,
        compaction_max_delta=args.auto_compact_delta,
        compaction_max_tombstone_ratio=args.auto_compact_tombstones,
        index_mmap=bool(load_info.get("mmap", False)),
    )
    if args.provenance is not None:
        overrides["provenance_sample_rate"] = args.provenance
    config = index.config.with_options(**overrides)

    def emit_error(
        message: str,
        *,
        line: int | None = None,
        query: str | None = None,
        shard: int | None = None,
        shed: str | None = None,
        ledger: str | None = None,
    ) -> None:
        record: dict = {"error": message}
        if shed is not None:
            record["shed"] = True
            record["reason"] = shed
        if ledger is not None:
            record["ledger"] = ledger
        if line is not None:
            record["line"] = line
        if query is not None:
            record["query"] = query
        if shard is not None:
            record["shard"] = shard
        sys.stdout.write(json.dumps(record) + "\n")
        sys.stdout.flush()

    if config.serving_shards:
        from repro.sharding import LiveShardRouter

        engine: MatchEngine = LiveShardRouter.spawn(
            args.index,
            config.serving_shards,
            replicas=config.serving_replicas,
            mmap=mmap,
            config=config,
            on_shard_error=lambda shard, error: emit_error(str(error), shard=shard),
            index=index,
            supervise=args.supervise,
        )
    else:
        engine = LiveEngine(index, config)
        if args.supervise:
            print(
                "# --supervise has no effect without --shards (nothing to "
                "supervise in-process)",
                file=sys.stderr,
            )
    # Control records (in-band upserts/compaction/swaps) default their
    # file operations to the index the server was started on.
    engine.index_path = Path(args.index)
    if args.ledger:
        try:
            replayed = engine.attach_ledger(
                UpsertLedger(args.ledger), recover=args.ledger_recover
            )
        except (LedgerError, OSError) as error:
            # One structured record, a clean shutdown and a nonzero exit:
            # a corrupt or unreadable ledger must never half-start a
            # server (or spray a traceback a driver cannot parse).
            engine.recorder.count("serving.ledger_errors")
            emit_error(f"ledger unusable: {error}", ledger=str(args.ledger))
            close = getattr(engine, "close", None)
            if close is not None:
                close()
            return 1
        if replayed:
            print(
                f"# ledger {args.ledger}: replayed {replayed} event(s), "
                f"generation {engine.generation}",
                file=sys.stderr,
            )
        recovered = engine.ledger.recovered if engine.ledger is not None else None
        if recovered:
            print(
                f"# ledger {args.ledger}: truncated torn tail at line "
                f"{recovered['line']} ({recovered['dropped_bytes']} byte(s); "
                f"{recovered['reason']})",
                file=sys.stderr,
            )
    compactor = None
    if (
        config.compaction_max_delta is not None
        or config.compaction_max_tombstone_ratio is not None
    ):
        from repro.serving.compaction import CompactionScheduler

        compactor = CompactionScheduler(
            engine,
            max_delta=config.compaction_max_delta,
            max_tombstone_ratio=config.compaction_max_tombstone_ratio,
        ).start()
    # index.load may have run before the engine's recorder existed (it
    # records on the ambient recorder); re-surface how the index entered
    # memory as index.* gauges on the recorder the /metrics endpoint and
    # --stats actually read.
    for key, value in load_info.items():
        engine.recorder.gauge(f"index.{key}", int(value))
    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs.prometheus import MetricsServer

        # The engine's recorder is always a real Recorder (ambient when
        # --trace installed one, private otherwise), so the endpoint has
        # live serving.* metrics either way.
        metrics_server = MetricsServer(engine.recorder, port=args.metrics_port)
    # The provenance line prints after the metrics server binds, so
    # --metrics-port 0 reports the actually-bound ephemeral port.
    provenance = (
        f"format v{load_info.get('format_version')}, "
        f"{load_info.get('file_bytes')} bytes, "
        f"{'memory-mapped' if load_info.get('mmap') else 'eager'} load"
    )
    if config.serving_shards:
        provenance += (
            f", {config.serving_shards} shards x "
            f"{config.serving_replicas} replicas"
        )
    if metrics_server is not None:
        provenance += f", metrics port {metrics_server.port}"
    print(f"# index {args.index}: {provenance}", file=sys.stderr)
    if metrics_server is not None:
        print(
            f"# metrics at http://{metrics_server.host}:{metrics_server.port}/metrics",
            file=sys.stderr,
        )

    def answer_batch(batch: list) -> None:
        # Batched queries are admitted as one request of cost len(batch)
        # under the default source: per-source quotas are exact only at
        # --batch-size 1, where each query carries its own envelope.
        entities = [request.entity for request in batch]
        try:
            decisions = engine.match_batch(entities)
        except LoadShedError as error:
            engine.recorder.count("serving.shed", len(batch))
            for request in batch:
                emit_error(
                    str(error),
                    query=request.entity.uri,
                    line=request.line,
                    shed=error.reason,
                )
            return
        except Exception as error:
            engine.recorder.count("serving.query_errors", len(batch))
            for request in batch:
                emit_error(str(error), query=request.entity.uri)
            return
        write_decisions(decisions, sys.stdout)

    def handle_control(item: ControlRequest) -> None:
        """Apply one in-band control record and acknowledge it in-line.

        Acks are JSONL like every other response, carrying the op, its
        outcome and the index generation it produced, so a driver can
        assert 'everything after this line reflects the edit'.
        """
        ack: dict = {"control": item.op}
        try:
            if item.op == "upsert":
                engine.upsert(item.entity)
                ack["uri"] = item.entity.uri
            elif item.op == "delete":
                ack["uri"] = item.uri
                ack["removed"] = engine.delete(item.uri)
            elif item.op == "compact":
                fresh = engine.compact(item.path)
                ack["entities"] = fresh.n2
            else:  # reload
                engine.reload(item.path)
        except Exception as error:
            engine.recorder.count("serving.control_errors")
            emit_error(str(error), line=item.line)
            return
        ack["ok"] = True
        ack["generation"] = engine.generation
        sys.stdout.write(json.dumps(ack) + "\n")
        sys.stdout.flush()

    stream = open(args.input, "r", encoding="utf-8") if args.input else sys.stdin
    try:
        # One bad line (or one failing query) gets one JSONL error
        # record; the stream keeps going.
        batch: list = []
        for item in iter_requests(stream, recorder=engine.recorder, envelopes=True):
            if isinstance(item, RequestError):
                emit_error(item.error, line=item.line)
                continue
            if isinstance(item, ControlRequest):
                # Queries already read precede the edit in stream order;
                # answer them against the pre-edit index first.
                if batch:
                    answer_batch(batch)
                    batch = []
                handle_control(item)
                continue
            if config.serving_batch_size == 1:
                try:
                    decision = engine.match(item.entity, source=item.source)
                except LoadShedError as error:
                    engine.recorder.count("serving.shed")
                    emit_error(
                        str(error),
                        query=item.entity.uri,
                        line=item.line,
                        shed=error.reason,
                    )
                    continue
                except Exception as error:
                    engine.recorder.count("serving.query_errors")
                    emit_error(str(error), query=item.entity.uri)
                    continue
                write_decisions([decision], sys.stdout)
            else:
                batch.append(item)
                if len(batch) >= config.serving_batch_size:
                    answer_batch(batch)
                    batch = []
        if batch:
            answer_batch(batch)
    finally:
        if stream is not sys.stdin:
            stream.close()
        # Scheduler first: a compaction racing engine shutdown would
        # fold into a closing index.
        if compactor is not None:
            compactor.close()
        close = getattr(engine, "close", None)
        if close is not None:
            close()
        if metrics_server is not None:
            metrics_server.close()
    if args.stats:
        print(f"# {json.dumps(engine.stats())}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MinoanER: schema-agnostic, non-iterative Web-entity resolution",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    resolve = subparsers.add_parser(
        "resolve", help="match two clean KBs (N-Triples or TSV files)"
    )
    resolve.add_argument("kb1")
    resolve.add_argument("kb2")
    resolve.add_argument("-o", "--output", help="write matches TSV here (default stdout)")
    resolve.add_argument("--ground-truth", help="URI-pair TSV to score against")
    _add_config_arguments(resolve)
    _add_resilience_arguments(resolve)
    _add_trace_arguments(resolve)
    _add_chaos_arguments(resolve)
    resolve.set_defaults(handler=command_resolve)

    dedupe = subparsers.add_parser("dedupe", help="deduplicate a single dirty KB")
    dedupe.add_argument("kb")
    dedupe.add_argument("-o", "--output", help="write duplicate pairs TSV here")
    _add_config_arguments(dedupe)
    dedupe.set_defaults(handler=command_dedupe)

    generate = subparsers.add_parser(
        "generate", help="materialise a synthetic benchmark profile"
    )
    generate.add_argument("profile", choices=profile_names())
    generate.add_argument("--out-dir", default=".", help="destination directory")
    generate.add_argument("--scale", type=float, default=1.0, help="population scale factor")
    generate.add_argument("--seed", type=int, default=None, help="override the calibrated seed")
    generate.set_defaults(handler=command_generate)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument("experiment", choices=EXPERIMENTS)
    experiment.add_argument(
        "--profiles", nargs="+", default=profile_names(), choices=profile_names(),
        help="datasets to include (default: all four)",
    )
    experiment.set_defaults(handler=command_experiment)

    index = subparsers.add_parser(
        "index", help="freeze a target KB into a query-time resolution index"
    )
    index.add_argument(
        "kb", help="target KB file (N-Triples or TSV); with --migrate, an "
        "existing index file",
    )
    index.add_argument(
        "-o", "--output", help="index file to write (required unless "
        "--migrate, which defaults to rewriting in place)",
    )
    index.add_argument(
        "--migrate", action="store_true",
        help="rewrite an existing index (e.g. a legacy pickle file) in "
        "the current columnar format instead of building from a KB",
    )
    index.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="additionally split the index into N per-shard files "
        "(OUTPUT.shardI-of-N) for the sharded serving tier; each is a "
        "fully valid index the stock engine loads unchanged "
        "(see docs/sharding.md)",
    )
    index.add_argument(
        "--compact", action="store_true",
        help="fold a live-serving upsert ledger into an existing index "
        "file (KB names the index; default: rewrite in place via atomic "
        "rename) -- see docs/live_index.md",
    )
    index.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="with --compact: the JSONL upsert/delete ledger to fold in "
        "(default: none, a plain deterministic rewrite)",
    )
    _add_config_arguments(index)
    _add_trace_arguments(index)
    _add_chaos_arguments(index)
    index.set_defaults(handler=command_index)

    serving_defaults = MinoanERConfig()
    serve = subparsers.add_parser(
        "serve", help="answer JSONL queries against a resolution index"
    )
    serve.add_argument("index", help="index file written by 'repro index'")
    serve.add_argument(
        "-i", "--input", help="JSONL request file (default: stdin)"
    )
    serve.add_argument(
        "--mmap", action=argparse.BooleanOptionalAction, default=None,
        help="memory-map the index's columnar sections instead of "
        "materialising them: O(1) load, pages shared across processes, "
        "bit-identical decisions (requires numpy and a format-v2 index; "
        "default: the config's index_mmap knob, normally off)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=serving_defaults.serving_batch_size,
        help="queries resolved together; >1 lets related queries share "
        "context (default %(default)s)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=serving_defaults.serving_cache_size,
        help="LRU result-cache capacity, 0 disables (default %(default)s)",
    )
    serve.add_argument(
        "--candidate-cap", type=int, default=serving_defaults.serving_candidate_cap,
        help="per-query candidate cap (default: unlimited, exact)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=serving_defaults.serving_deadline_ms,
        metavar="MS", help="per-lookup time budget; on expiry the query gets a "
        "degraded name-evidence-only answer (default: no deadline)",
    )
    serve.add_argument(
        "--stats", action="store_true",
        help="print engine counters as JSON to stderr when done",
    )
    serve.add_argument(
        "--provenance", type=float, nargs="?", const=1.0, default=None,
        metavar="RATE", help="attach per-decision provenance records to this "
        "fraction of responses (bare flag: every response; default: the "
        "index config's rate, normally off)",
    )
    from repro.resilience.policy import FAILURE_MODES

    serve.add_argument(
        "--shards", type=int, default=serving_defaults.serving_shards,
        metavar="N", help="serve through N shard worker processes over the "
        "files written by 'repro index --shards N' (bit-identical to "
        "unsharded serving; default: single-process)",
    )
    serve.add_argument(
        "--replicas", type=int, default=serving_defaults.serving_replicas,
        metavar="R", help="worker replicas per shard; >1 enables hedged "
        "requests (default %(default)s)",
    )
    serve.add_argument(
        "--hedge-ms", type=float, default=serving_defaults.serving_hedge_ms,
        metavar="MS", help="fixed delay before a backup request fires at a "
        "sibling replica (default: adaptive p95 of the shard's latency)",
    )
    serve.add_argument(
        "--failure-mode", choices=FAILURE_MODES, default=serving_defaults.failure_mode,
        help="when a whole shard is unreachable: abort the query, retry "
        "the scatter, or degrade to the surviving shards' evidence "
        "(default %(default)s)",
    )
    serve.add_argument(
        "--supervise", action="store_true",
        help="with --shards: run a replica supervisor that restarts "
        "crashed shard workers with seeded exponential backoff and "
        "replays them to the live generation before readmitting them "
        "to the rotation (see docs/resilience.md)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="admission control: shed queries (one explicit JSONL "
        "record each, never a silent drop) while N request costs are "
        "already in flight (default: unbounded)",
    )
    serve.add_argument(
        "--quota-qps", type=float, default=None, metavar="QPS",
        help="per-source token-bucket quota; requests carrying a "
        "'source' field are shed once that source exceeds QPS "
        "sustained (default: no quotas)",
    )
    serve.add_argument(
        "--quota-burst", type=float, default=None, metavar="N",
        help="token-bucket burst capacity for --quota-qps "
        "(default: 2x the rate)",
    )
    serve.add_argument(
        "--ledger", metavar="FILE", default=None,
        help="durable JSONL upsert/delete ledger: replayed over the "
        "index at startup, appended on every in-band control mutation, "
        "truncated by compaction (see docs/live_index.md)",
    )
    serve.add_argument(
        "--ledger-recover", action=argparse.BooleanOptionalAction, default=True,
        help="truncate a torn final ledger record (a crashed writer's "
        "partial append) behind an fsync'd audit marker and keep "
        "serving; --no-ledger-recover makes any damage fatal "
        "(default: recover)",
    )
    serve.add_argument(
        "--auto-compact-delta", type=int, default=None, metavar="N",
        help="background-compact once the delta overlay holds N edits "
        "(default: manual compaction only)",
    )
    serve.add_argument(
        "--auto-compact-tombstones", type=float, default=None, metavar="R",
        help="background-compact once deleted entities exceed fraction "
        "R of the id space (default: manual compaction only)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus text-format metrics on "
        "http://127.0.0.1:PORT/metrics for the lifetime of the command "
        "(0 picks a free port; default: no endpoint)",
    )
    _add_trace_arguments(serve)
    _add_chaos_arguments(serve)
    serve.set_defaults(handler=command_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    chaos_spec = getattr(args, "chaos", None)
    if not trace_path and not chaos_spec:
        return args.handler(args)

    from contextlib import ExitStack

    recorder = None
    plan = None
    with ExitStack() as stack:
        if trace_path:
            # Installed before the chaos plan so every fired fault is
            # counted (faults.injected.<site>) in the exported trace.
            from repro.obs import Recorder, use_recorder

            recorder = Recorder()
            stack.enter_context(use_recorder(recorder))
        if chaos_spec:
            from repro.resilience import parse_chaos, use_faults

            plan = parse_chaos(chaos_spec, seed=args.chaos_seed)
            stack.enter_context(use_faults(plan))
        code = args.handler(args)
    if plan is not None:
        fired = ", ".join(
            f"{site}x{count}" for site, count in sorted(plan.fired().items())
        )
        print(
            f"# chaos: {plan.total_fired()} fault(s) fired"
            + (f" ({fired})" if fired else ""),
            file=sys.stderr,
        )
    if recorder is not None:
        from repro.obs import write_trace

        write_trace(recorder, trace_path, format=args.trace_format)
        destination = "stderr" if trace_path == "-" else trace_path
        print(f"# trace written to {destination}", file=sys.stderr)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
