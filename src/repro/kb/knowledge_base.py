"""Knowledge base container: entities, relations, neighbors, token index.

A :class:`KnowledgeBase` owns a list of
:class:`~repro.kb.entity.EntityDescription` objects and derives the
structure the rest of the system needs:

* which attribute-value pairs are **relations** (value is the URI of
  another description in the same KB -- paper section 2) and which are
  **literals**,
* the per-entity **token set** (Definition 2.1's ``tokens(e)``),
* the **Entity Frequency** inverted index ``token -> entity ids``
  (Definition 2.1's ``EF``), which is also exactly the input to token
  blocking (section 3.1).

Entities are addressed internally by dense integer ids (their position
in :attr:`entities`), which keeps the blocking graph and the matcher
allocation-friendly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.kb.entity import EntityDescription
from repro.kb.tokenizer import Tokenizer


class KnowledgeBase:
    """A duplicate-free (clean) collection of entity descriptions.

    Parameters
    ----------
    entities:
        The descriptions.  URIs must be unique (clean-clean ER assumes
        each KB is duplicate-free).
    name:
        Human-readable KB label used in reports.
    tokenizer:
        Tokenizer for literal values; defaults to the schema-agnostic
        lower-case alphanumeric tokenizer of the paper.

    Examples
    --------
    >>> kb = KnowledgeBase([
    ...     EntityDescription("r1", [("hasChef", "c1"), ("label", "The Fat Duck")]),
    ...     EntityDescription("c1", [("label", "John Lake A")]),
    ... ], name="wikidata")
    >>> kb.relations(0)
    (('hasChef', 1),)
    >>> kb.neighbors(0)
    (1,)
    >>> sorted(kb.tokens(1))
    ['a', 'john', 'lake']
    >>> kb.entity_frequency('lake')
    1
    """

    def __init__(
        self,
        entities: Iterable[EntityDescription],
        name: str = "KB",
        tokenizer: Tokenizer | None = None,
    ):
        self.name = name
        self.tokenizer = tokenizer or Tokenizer()
        self.entities: list[EntityDescription] = list(entities)
        self._uri_to_id: dict[str, int] = {}
        for eid, entity in enumerate(self.entities):
            if entity.uri in self._uri_to_id:
                raise ValueError(f"duplicate URI in clean KB {name!r}: {entity.uri!r}")
            self._uri_to_id[entity.uri] = eid

        # Split each description into relation pairs (value resolves to a
        # local entity) and literal values, then build the token index.
        self._relation_pairs: list[tuple[tuple[str, int], ...]] = []
        self._literal_values: list[tuple[str, ...]] = []
        self._token_sets: list[frozenset[str]] = []
        self._token_index: dict[str, list[int]] = {}
        for eid, entity in enumerate(self.entities):
            relations: list[tuple[str, int]] = []
            literals: list[str] = []
            for attribute, value in entity.pairs:
                target = self._uri_to_id.get(value)
                if target is not None and target != eid:
                    relations.append((attribute, target))
                else:
                    literals.append(value)
            self._relation_pairs.append(tuple(relations))
            self._literal_values.append(tuple(literals))
            token_set = self.tokenizer.token_set(literals)
            self._token_sets.append(token_set)
            for token in token_set:
                self._token_index.setdefault(token, []).append(eid)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entities)

    def __iter__(self) -> Iterator[EntityDescription]:
        return iter(self.entities)

    def __getitem__(self, eid: int) -> EntityDescription:
        return self.entities[eid]

    def __contains__(self, uri: object) -> bool:
        return uri in self._uri_to_id

    def id_of(self, uri: str) -> int:
        """Dense integer id of the entity with ``uri`` (KeyError if absent)."""
        return self._uri_to_id[uri]

    def uri_of(self, eid: int) -> str:
        """URI of the entity with dense id ``eid``."""
        return self.entities[eid].uri

    # ------------------------------------------------------------------
    # Structure (paper section 2)
    # ------------------------------------------------------------------
    def relations(self, eid: int) -> tuple[tuple[str, int], ...]:
        """``(relation, neighbor id)`` pairs of entity ``eid``.

        Mirrors ``relations(e_i) = {p | (p, j) in e_i and e_j in E}``.
        """
        return self._relation_pairs[eid]

    def neighbors(self, eid: int) -> tuple[int, ...]:
        """Neighbor entity ids of ``eid`` (with repetitions collapsed)."""
        seen: dict[int, None] = {}
        for _, target in self._relation_pairs[eid]:
            seen[target] = None
        return tuple(seen)

    def literal_values(self, eid: int) -> tuple[str, ...]:
        """Literal (non-relation) values of entity ``eid``."""
        return self._literal_values[eid]

    def tokens(self, eid: int) -> frozenset[str]:
        """Distinct tokens in the literal values of entity ``eid``."""
        return self._token_sets[eid]

    # ------------------------------------------------------------------
    # Token index / Entity Frequency (Definition 2.1)
    # ------------------------------------------------------------------
    @property
    def token_index(self) -> dict[str, list[int]]:
        """Inverted index ``token -> sorted list of entity ids``."""
        return self._token_index

    def entity_frequency(self, token: str) -> int:
        """``EF(t)``: number of descriptions whose values contain ``token``."""
        return len(self._token_index.get(token, ()))

    # ------------------------------------------------------------------
    # Aggregate statistics used by Table 1
    # ------------------------------------------------------------------
    def triple_count(self) -> int:
        """Total number of attribute-value pairs across all entities."""
        return sum(len(entity) for entity in self.entities)

    def attribute_names(self) -> set[str]:
        """Distinct attribute names (literals and relations together)."""
        names: set[str] = set()
        for entity in self.entities:
            names.update(entity.attributes())
        return names

    def relation_names(self) -> set[str]:
        """Distinct attribute names that act as relations at least once."""
        names: set[str] = set()
        for pairs in self._relation_pairs:
            names.update(attribute for attribute, _ in pairs)
        return names

    def average_tokens_per_entity(self) -> float:
        """Mean number of distinct tokens per description (Table 1 row)."""
        if not self.entities:
            return 0.0
        return sum(len(ts) for ts in self._token_sets) / len(self.entities)

    def __repr__(self) -> str:
        return f"KnowledgeBase({self.name!r}, {len(self.entities)} entities)"


def subset(kb: KnowledgeBase, entity_ids: Sequence[int], name: str | None = None) -> KnowledgeBase:
    """A new KB with only ``entity_ids`` (relations to dropped entities become literals).

    Used by the BBCmusic-DBpedia-style experiments, which restrict the KB
    to ground-truth entities plus their immediate neighbors (section 6).
    """
    descriptions = [kb.entities[eid] for eid in entity_ids]
    return KnowledgeBase(descriptions, name=name or f"{kb.name}-subset", tokenizer=kb.tokenizer)
