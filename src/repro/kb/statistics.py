"""KB statistics: relation importance, name attributes, top neighbors.

Implements Definitions 2.2-2.4 of the paper plus the "Entity Names"
machinery of section 2.2 and the ``getTopInNeighbors`` procedure of
Algorithm 1:

* **support** of a relation ``p``: ``|instances(p)| / |E|^2`` -- how many
  entity pairs ``p`` connects, relative to all possible pairs;
* **discriminability**: ``|objects(p)| / |instances(p)|`` -- how many
  distinct targets ``p`` points to, relative to its usage;
* **importance**: harmonic mean of the two;
* **name attributes**: the global top-k *literal* attributes by
  importance, where support is ``|subjects(p)| / |E|`` (section 2.2);
  their values act as entity names;
* **top-N relations / neighbors** per entity: the entity's relations
  ranked by the KB-global importance order, and the neighbors reached
  through them;
* **top in-neighbors**: the reverse of top-N neighbors, used to
  propagate value similarity into neighbor similarity (Algorithm 1,
  lines 44-47).

All statistics are derived once per KB and cached on a
:class:`KBStatistics` instance; they require no schema knowledge and no
supervision.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Mapping

from repro.kb.knowledge_base import KnowledgeBase


def relation_support(kb: KnowledgeBase) -> dict[str, float]:
    """Support of every relation in ``kb`` (Definition 2.2).

    ``support(p) = |instances(p)| / |E|^2`` where ``instances(p)`` is the
    set of (subject, object) entity pairs connected by ``p``.
    """
    if len(kb) == 0:
        return {}
    instances: Counter[str] = Counter()
    for eid in range(len(kb)):
        seen_pairs: set[tuple[str, int]] = set()
        for attribute, target in kb.relations(eid):
            if (attribute, target) not in seen_pairs:
                seen_pairs.add((attribute, target))
                instances[attribute] += 1
    denominator = float(len(kb)) ** 2
    return {p: count / denominator for p, count in instances.items()}


def relation_discriminability(kb: KnowledgeBase) -> dict[str, float]:
    """Discriminability of every relation in ``kb`` (Definition 2.3).

    ``discriminability(p) = |objects(p)| / |instances(p)|``.
    """
    instances: Counter[str] = Counter()
    objects: dict[str, set[int]] = defaultdict(set)
    for eid in range(len(kb)):
        seen_pairs: set[tuple[str, int]] = set()
        for attribute, target in kb.relations(eid):
            if (attribute, target) not in seen_pairs:
                seen_pairs.add((attribute, target))
                instances[attribute] += 1
                objects[attribute].add(target)
    return {p: len(objects[p]) / instances[p] for p in instances}


def _harmonic_mean(a: float, b: float) -> float:
    if a + b == 0.0:
        return 0.0
    return 2.0 * a * b / (a + b)


def relation_importance(kb: KnowledgeBase) -> dict[str, float]:
    """Importance of every relation (Definition 2.4): harmonic mean of
    support and discriminability."""
    support = relation_support(kb)
    discriminability = relation_discriminability(kb)
    return {p: _harmonic_mean(support[p], discriminability[p]) for p in support}


def attribute_importance(kb: KnowledgeBase) -> dict[str, float]:
    """Importance of every *literal* attribute, for name discovery.

    Section 2.2 ("Entity Names"): support of an attribute is
    ``|subjects(p)| / |E|`` -- the fraction of entities carrying it --
    and discriminability is the fraction of its values that are
    distinct.  Attributes that are both widespread and near-unique-valued
    (e.g. ``rdfs:label``) score highest and act as entity names.
    """
    if len(kb) == 0:
        return {}
    subjects: dict[str, set[int]] = defaultdict(set)
    instances: Counter[str] = Counter()
    distinct_values: dict[str, set[str]] = defaultdict(set)
    relation_names = kb.relation_names()
    for eid, entity in enumerate(kb.entities):
        for attribute, value in entity.pairs:
            if attribute in relation_names:
                continue
            subjects[attribute].add(eid)
            instances[attribute] += 1
            distinct_values[attribute].add(value)
    importance: dict[str, float] = {}
    for attribute in instances:
        support = len(subjects[attribute]) / len(kb)
        discriminability = len(distinct_values[attribute]) / instances[attribute]
        importance[attribute] = _harmonic_mean(support, discriminability)
    return importance


class KBStatistics:
    """Cached per-KB statistics backing blocking and matching.

    Parameters
    ----------
    kb:
        The knowledge base to profile.
    top_k_name_attributes:
        ``k``: how many globally most-important literal attributes act
        as name attributes (paper default 2).
    top_n_relations:
        ``N``: how many locally most-important relations define an
        entity's top neighbors (paper default 3).
    """

    def __init__(self, kb: KnowledgeBase, top_k_name_attributes: int = 2, top_n_relations: int = 3):
        if top_k_name_attributes < 0:
            raise ValueError("top_k_name_attributes must be >= 0")
        if top_n_relations < 0:
            raise ValueError("top_n_relations must be >= 0")
        self.kb = kb
        self.k = top_k_name_attributes
        self.n = top_n_relations
        self.relation_importance: dict[str, float] = relation_importance(kb)
        self.attribute_importance: dict[str, float] = attribute_importance(kb)
        self.name_attributes: tuple[str, ...] = self._pick_name_attributes()
        self._top_neighbors: list[tuple[int, ...]] = self._compute_top_neighbors()
        self._top_in_neighbors: list[tuple[int, ...]] | None = None
        self._in_neighbor_csr = None

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------
    def _pick_name_attributes(self) -> tuple[str, ...]:
        ranked = sorted(
            self.attribute_importance.items(),
            key=lambda item: (-item[1], item[0]),
        )
        return tuple(attribute for attribute, _ in ranked[: self.k])

    def names(self, eid: int) -> tuple[str, ...]:
        """Name values of entity ``eid``: its literal values under the
        global top-k name attributes (function ``name(e_i)``)."""
        entity = self.kb.entities[eid]
        out: list[str] = []
        for attribute in self.name_attributes:
            out.extend(entity.values_of(attribute))
        return tuple(out)

    # ------------------------------------------------------------------
    # Top-N relations and neighbors (section 2.2, Algorithm 1 lines 36-43)
    # ------------------------------------------------------------------
    def top_relations(self, eid: int) -> tuple[str, ...]:
        """The entity's N relations with maximum KB-global importance."""
        local = {attribute for attribute, _ in self.kb.relations(eid)}
        ranked = sorted(local, key=lambda p: (-self.relation_importance.get(p, 0.0), p))
        return tuple(ranked[: self.n])

    def _compute_top_neighbors(self) -> list[tuple[int, ...]]:
        out: list[tuple[int, ...]] = []
        for eid in range(len(self.kb)):
            top = set(self.top_relations(eid))
            seen: dict[int, None] = {}
            for attribute, target in self.kb.relations(eid):
                if attribute in top:
                    seen[target] = None
            out.append(tuple(seen))
        return out

    def top_neighbors(self, eid: int) -> tuple[int, ...]:
        """``topNneighbors(e)``: neighbors linked via the top-N relations."""
        return self._top_neighbors[eid]

    def _ensure_top_in_neighbors(self) -> list[tuple[int, ...]]:
        if self._top_in_neighbors is None:
            reverse: list[list[int]] = [[] for _ in range(len(self.kb))]
            for source, targets in enumerate(self._top_neighbors):
                for target in targets:
                    reverse[target].append(source)
            self._top_in_neighbors = [tuple(sources) for sources in reverse]
        return self._top_in_neighbors

    def top_in_neighbors(self, eid: int) -> tuple[int, ...]:
        """Entities that have ``eid`` among their top-N neighbors.

        This is the reverse mapping computed by ``getTopInNeighbors``
        (Algorithm 1, lines 44-47): when a pair of entities has high
        value similarity, that evidence is propagated to the pairs of
        their *in*-neighbors.
        """
        return self._ensure_top_in_neighbors()[eid]

    def in_neighbor_csr(self):
        """The ``top_in_neighbors`` map as a flat CSR adjacency.

        Cached; row ``eid`` lists the same sources, in the same order,
        as :meth:`top_in_neighbors`.  This is the layout consumed by
        the array kernels (:mod:`repro.kernels`) for ``gamma``
        propagation.
        """
        if self._in_neighbor_csr is None:
            from repro.kernels.interning import CSRAdjacency

            self._in_neighbor_csr = CSRAdjacency.from_lists(self._ensure_top_in_neighbors())
        return self._in_neighbor_csr

    def __repr__(self) -> str:
        return (
            f"KBStatistics({self.kb.name!r}, k={self.k}, n={self.n}, "
            f"names={list(self.name_attributes)!r})"
        )


def describe(statistics: Mapping[str, float], top: int = 10) -> str:
    """Human-readable top entries of a statistics mapping (debug helper)."""
    ranked = sorted(statistics.items(), key=lambda item: (-item[1], item[0]))[:top]
    return "\n".join(f"{value:10.6f}  {key}" for key, value in ranked)
