"""Schema-agnostic tokenisation of literal values.

The paper treats every description as a bag of tokens -- "single words in
attribute values" (section 1) -- handling numbers and dates the same way
as strings (footnote 4).  Tokens are produced by lower-casing and
splitting on any non-alphanumeric character.
"""

from __future__ import annotations

import re
from typing import Iterable

_TOKEN_PATTERN = re.compile(r"[^\W_]+", re.UNICODE)


def tokenize(value: str, min_length: int = 1) -> list[str]:
    """Split one literal value into lower-case alphanumeric tokens.

    Unicode letters and digits are kept (Web KBs are multilingual);
    everything else -- punctuation, symbols, underscores -- separates
    tokens.

    >>> tokenize("The Fat Duck, Bray (1995)")
    ['the', 'fat', 'duck', 'bray', '1995']
    >>> tokenize("Müller-Straße 42")
    ['müller', 'straße', '42']
    >>> tokenize("A-1 diner", min_length=2)
    ['diner']
    """
    tokens = _TOKEN_PATTERN.findall(value.lower())
    if min_length > 1:
        tokens = [t for t in tokens if len(t) >= min_length]
    return tokens


class Tokenizer:
    """Configurable tokenizer shared by blocking and similarity code.

    Parameters
    ----------
    min_length:
        Drop tokens shorter than this many characters.
    stopwords:
        Tokens to discard (lower-case).  The paper relies on Entity
        Frequency weighting rather than a stopword list, so the default
        is empty; the option exists for users with domain knowledge.

    The tokenizer is deliberately stateless per value so the same
    instance can be shared across KBs and threads.
    """

    __slots__ = ("min_length", "stopwords")

    def __init__(self, min_length: int = 1, stopwords: Iterable[str] = ()):
        if min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {min_length}")
        self.min_length = min_length
        self.stopwords = frozenset(s.lower() for s in stopwords)

    def tokens(self, value: str) -> list[str]:
        """Tokens of a single literal value, in order of appearance."""
        tokens = tokenize(value, self.min_length)
        if self.stopwords:
            tokens = [t for t in tokens if t not in self.stopwords]
        return tokens

    def token_set(self, values: Iterable[str]) -> frozenset[str]:
        """Distinct tokens across several literal values.

        This is the ``tokens(e)`` set of Definition 2.1: the bag of
        words of a description collapsed to a set (each shared token
        contributes once to valueSim).
        """
        out: set[str] = set()
        for value in values:
            out.update(self.tokens(value))
        return frozenset(out)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tokenizer):
            return NotImplemented
        return (self.min_length, self.stopwords) == (other.min_length, other.stopwords)

    def __hash__(self) -> int:
        return hash((self.min_length, self.stopwords))

    def __repr__(self) -> str:
        return f"Tokenizer(min_length={self.min_length}, stopwords={len(self.stopwords)})"
