"""Entity descriptions: the atomic unit of a Web-of-Data knowledge base.

Following section 2 of the paper, an entity description is a
URI-identifiable set of attribute-value pairs.  Values are plain strings;
a value that happens to be the URI of another description *in the same
KB* makes the attribute a relation (this classification is performed by
:class:`repro.kb.knowledge_base.KnowledgeBase`, which knows the full URI
universe -- a description on its own cannot tell a literal from a
neighbor reference).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping


class EntityDescription:
    """A URI-identified set of attribute-value pairs.

    Attribute-value pairs are stored as an immutable tuple of
    ``(attribute, value)`` string pairs.  The same attribute may appear
    multiple times with different values (RDF-style multi-valued
    properties), so the representation is a *set of pairs*, not a
    mapping.

    Parameters
    ----------
    uri:
        Globally unique identifier of the description within its KB.
    pairs:
        Iterable of ``(attribute, value)`` pairs.  Duplicated pairs are
        collapsed; ordering is normalised so equal descriptions compare
        equal regardless of input order.

    Examples
    --------
    >>> e = EntityDescription("wd:Q1", [("label", "Bray"), ("inCountry", "wd:Q2")])
    >>> e.uri
    'wd:Q1'
    >>> sorted(e.attributes())
    ['inCountry', 'label']
    >>> e.values_of("label")
    ('Bray',)
    """

    __slots__ = ("uri", "pairs")

    def __init__(self, uri: str, pairs: Iterable[tuple[str, str]] = ()):
        if not isinstance(uri, str) or not uri:
            raise ValueError(f"entity URI must be a non-empty string, got {uri!r}")
        normalised = []
        seen: set[tuple[str, str]] = set()
        for attribute, value in pairs:
            pair = (str(attribute), str(value))
            if pair not in seen:
                seen.add(pair)
                normalised.append(pair)
        self.uri = uri
        self.pairs: tuple[tuple[str, str], ...] = tuple(sorted(normalised))

    @classmethod
    def from_mapping(cls, uri: str, mapping: Mapping[str, str | Iterable[str]]) -> "EntityDescription":
        """Build a description from ``{attribute: value | [values]}``.

        Convenience constructor for hand-written examples and tests.

        >>> e = EntityDescription.from_mapping("x", {"a": ["1", "2"], "b": "3"})
        >>> len(e)
        3
        """
        pairs: list[tuple[str, str]] = []
        for attribute, value in mapping.items():
            if isinstance(value, str):
                pairs.append((attribute, value))
            else:
                pairs.extend((attribute, v) for v in value)
        return cls(uri, pairs)

    def attributes(self) -> set[str]:
        """Distinct attribute names used by this description."""
        return {attribute for attribute, _ in self.pairs}

    def values(self) -> tuple[str, ...]:
        """All values (with repetitions across attributes)."""
        return tuple(value for _, value in self.pairs)

    def values_of(self, attribute: str) -> tuple[str, ...]:
        """Values of one attribute, in normalised order."""
        return tuple(value for a, value in self.pairs if a == attribute)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self.pairs)

    def __contains__(self, pair: object) -> bool:
        return pair in self.pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EntityDescription):
            return NotImplemented
        return self.uri == other.uri and self.pairs == other.pairs

    def __hash__(self) -> int:
        return hash((self.uri, self.pairs))

    def __repr__(self) -> str:
        return f"EntityDescription({self.uri!r}, {len(self.pairs)} pairs)"
