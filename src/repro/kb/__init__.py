"""Knowledge-base substrate: entity model, KB container, tokenizer, statistics, IO.

An *entity description* is a URI-identified set of attribute-value pairs
(paper section 2).  When a value is the URI of another description in the
same KB, the attribute is a *relation* and the value a *neighbor*; all
other values are literals that contribute tokens to the schema-agnostic
bag-of-words representation.
"""

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import (
    KBStatistics,
    attribute_importance,
    relation_discriminability,
    relation_importance,
    relation_support,
)
from repro.kb.tokenizer import Tokenizer, tokenize

__all__ = [
    "EntityDescription",
    "KnowledgeBase",
    "KBStatistics",
    "Tokenizer",
    "tokenize",
    "attribute_importance",
    "relation_discriminability",
    "relation_importance",
    "relation_support",
]
