"""Loading and saving KBs: N-Triples subset and a simple TSV format.

The paper's benchmarks ship as RDF dumps.  This module provides a
dependency-free reader for the N-Triples subset those dumps use
(``<s> <p> <o> .`` with IRIs and plain/typed/language-tagged literals)
plus a trivial ``subject<TAB>predicate<TAB>object`` format for quickly
assembling test fixtures.  Both produce
:class:`~repro.kb.knowledge_base.KnowledgeBase` objects.
"""

from __future__ import annotations

import re
from collections import defaultdict
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.tokenizer import Tokenizer


class RDFParseError(ValueError):
    """Raised when an N-Triples line cannot be parsed."""

    def __init__(self, line_number: int, line: str, reason: str):
        super().__init__(f"line {line_number}: {reason}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line
        self.reason = reason


_IRI = re.compile(r"<([^<>\s]*)>")
_LITERAL = re.compile(
    r'"((?:[^"\\]|\\.)*)"'  # quoted string with escapes
    r"(?:@[A-Za-z][A-Za-z0-9-]*|\^\^<[^<>\s]*>)?"  # optional lang tag / datatype
)
_BLANK = re.compile(r"_:([A-Za-z0-9]+)")

_ESCAPES = {
    "\\n": "\n",
    "\\t": "\t",
    "\\r": "\r",
    '\\"': '"',
    "\\\\": "\\",
}


def _unescape(raw: str) -> str:
    if "\\" not in raw:
        return raw
    out = raw
    for escaped, plain in _ESCAPES.items():
        out = out.replace(escaped, plain)
    return out


def parse_ntriples_line(line: str, line_number: int = 0) -> tuple[str, str, str] | None:
    """Parse one N-Triples line into ``(subject, predicate, object)``.

    Returns ``None`` for blank lines and comments.  The object keeps
    only the lexical form (language tags and datatypes are dropped,
    matching the paper's schema-agnostic treatment of values).

    >>> parse_ntriples_line('<a> <p> "Bray"@en .')
    ('a', 'p', 'Bray')
    >>> parse_ntriples_line('<a> <p> <b> .')
    ('a', 'p', 'b')
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    cursor = 0

    def take_term(allow_literal: bool) -> str:
        nonlocal cursor
        rest = stripped[cursor:]
        match = _IRI.match(rest)
        if match:
            cursor += match.end()
            return match.group(1)
        match = _BLANK.match(rest)
        if match:
            cursor += match.end()
            return "_:" + match.group(1)
        if allow_literal:
            match = _LITERAL.match(rest)
            if match:
                cursor += match.end()
                return _unescape(match.group(1))
        raise RDFParseError(line_number, line, "expected IRI, blank node or literal")

    subject = take_term(allow_literal=False)
    cursor += len(stripped[cursor:]) - len(stripped[cursor:].lstrip())
    predicate = take_term(allow_literal=False)
    cursor += len(stripped[cursor:]) - len(stripped[cursor:].lstrip())
    obj = take_term(allow_literal=True)
    tail = stripped[cursor:].strip()
    if tail != ".":
        raise RDFParseError(line_number, line, "expected terminating '.'")
    return subject, predicate, obj


def iter_ntriples(lines: Iterable[str]) -> Iterator[tuple[str, str, str]]:
    """Yield ``(s, p, o)`` triples from N-Triples lines, skipping blanks."""
    for line_number, line in enumerate(lines, start=1):
        triple = parse_ntriples_line(line, line_number)
        if triple is not None:
            yield triple


def kb_from_triples(
    triples: Iterable[tuple[str, str, str]],
    name: str = "KB",
    tokenizer: Tokenizer | None = None,
) -> KnowledgeBase:
    """Group ``(s, p, o)`` triples by subject into a KnowledgeBase.

    Every subject becomes an entity description; objects that equal some
    subject URI become relations automatically inside
    :class:`KnowledgeBase`.
    """
    grouped: dict[str, list[tuple[str, str]]] = defaultdict(list)
    for subject, predicate, obj in triples:
        grouped[subject].append((predicate, obj))
    entities = [EntityDescription(uri, pairs) for uri, pairs in grouped.items()]
    return KnowledgeBase(entities, name=name, tokenizer=tokenizer)


def load_ntriples(path: str | Path, name: str | None = None, tokenizer: Tokenizer | None = None) -> KnowledgeBase:
    """Load a KnowledgeBase from an N-Triples file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        kb = kb_from_triples(iter_ntriples(handle), name=name or path.stem, tokenizer=tokenizer)
    return kb


def save_ntriples(kb: KnowledgeBase, destination: str | Path | IO[str]) -> None:
    """Write a KnowledgeBase as N-Triples (relations as IRIs, rest as literals)."""

    def write(handle: IO[str]) -> None:
        for eid, entity in enumerate(kb.entities):
            relation_pairs = set(kb.relations(eid))
            for attribute, value in entity.pairs:
                target = kb._uri_to_id.get(value)
                if target is not None and (attribute, target) in relation_pairs:
                    rendered = f"<{value}>"
                else:
                    escaped = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
                    rendered = f'"{escaped}"'
                handle.write(f"<{entity.uri}> <{attribute}> {rendered} .\n")

    if isinstance(destination, (str, Path)):
        with Path(destination).open("w", encoding="utf-8") as handle:
            write(handle)
    else:
        write(destination)


def load_tsv(path: str | Path, name: str | None = None, tokenizer: Tokenizer | None = None) -> KnowledgeBase:
    """Load ``subject<TAB>predicate<TAB>object`` lines into a KnowledgeBase."""
    path = Path(path)

    def triples() -> Iterator[tuple[str, str, str]]:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.rstrip("\n")
                if not stripped or stripped.startswith("#"):
                    continue
                parts = stripped.split("\t")
                if len(parts) != 3:
                    raise RDFParseError(line_number, line, "expected 3 tab-separated fields")
                yield parts[0], parts[1], parts[2]

    return kb_from_triples(triples(), name=name or path.stem, tokenizer=tokenizer)


def load_ground_truth_tsv(path: str | Path) -> set[tuple[str, str]]:
    """Load ``uri1<TAB>uri2`` match pairs (one per line, '#' comments)."""
    pairs: set[tuple[str, str]] = set()
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split("\t")
            if len(parts) != 2:
                raise RDFParseError(line_number, line, "expected 2 tab-separated URIs")
            pairs.add((parts[0], parts[1]))
    return pairs
