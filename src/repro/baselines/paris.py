"""PARIS-like baseline: probabilistic matching via functionality (section 5).

Models PARIS (Suchanek et al., PVLDB 2011) at the instance level:

* **literal evidence** -- two entities sharing an *exact* literal value
  are likely the same, weighted by how identifying the value is (the
  inverse of its value frequency in each KB);
* **relation functionality** -- ``fun(r) = |subjects(r)| / |instances(r)|``
  and its inverse; a shared *matched* neighbor reached through highly
  inverse-functional, aligned relations is strong evidence;
* **iterative fixpoint** -- relation alignment probabilities are
  re-estimated from the current matches, and match probabilities from
  the current alignment, for a fixed number of rounds;
* final matches come from Unique Mapping Clustering over the
  probabilities.

Simplifications vs. the original (documented per the repo's DESIGN.md):
hard matches between rounds instead of soft marginals, and no
ontology/schema alignment output.  The behaviour the paper's evaluation
relies on is preserved: PARIS excels when KBs agree on exact literals
and structure (Restaurant, Rexa-DBLP, YAGO-IMDb regimes) and collapses
when values only overlap at the token level (BBCmusic-DBpedia).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.clustering.unique_mapping import unique_mapping_clustering
from repro.kb.knowledge_base import KnowledgeBase


@dataclass(frozen=True)
class ParisConfig:
    """Fixpoint and evidence parameters.

    ``iterations`` bounds the fixpoint rounds; ``threshold`` is the
    final acceptance probability; ``value_frequency_cap`` ignores
    literal values more frequent than this in either KB (stopword-like
    values carry no identity evidence); ``min_alignment`` prunes
    relation alignments with negligible support.
    """

    iterations: int = 3
    threshold: float = 0.35
    value_frequency_cap: int = 50
    min_alignment: float = 0.05


@dataclass
class ParisResult:
    """Matches plus the final probability table and learned alignments."""

    matches: set[tuple[int, int]]
    probabilities: dict[tuple[int, int], float]
    relation_alignment: dict[tuple[str, str], float]
    iterations: int


class ParisBaseline:
    """Iterative probabilistic matcher in the style of PARIS.

    Needs no external alignment: relation correspondences are learned
    from the data across iterations, exactly PARIS's selling point --
    and its weakness on KB pairs with little exact-value agreement.
    """

    def __init__(self, config: ParisConfig | None = None):
        self.config = config or ParisConfig()

    def run(self, kb1: KnowledgeBase, kb2: KnowledgeBase) -> ParisResult:
        """Run the fixpoint and return thresholded 1-1 matches."""
        config = self.config
        values1 = _value_index(kb1)
        values2 = _value_index(kb2)
        inverse_functionality2 = _inverse_functionality(kb2)

        literal_evidence = self._literal_probabilities(values1, values2)
        probabilities = dict(literal_evidence)
        matches = unique_mapping_clustering(
            [(e1, e2, p) for (e1, e2), p in probabilities.items()],
            threshold=config.threshold,
        )

        alignment: dict[tuple[str, str], float] = {}
        for _ in range(config.iterations):
            alignment = self._relation_alignment(kb1, kb2, matches)
            probabilities = self._propagate(
                kb1, kb2, literal_evidence, matches, alignment, inverse_functionality2
            )
            matches = unique_mapping_clustering(
                [(e1, e2, p) for (e1, e2), p in probabilities.items()],
                threshold=config.threshold,
            )

        return ParisResult(
            matches=matches,
            probabilities=probabilities,
            relation_alignment=alignment,
            iterations=config.iterations,
        )

    # ------------------------------------------------------------------
    def _literal_probabilities(
        self,
        values1: dict[str, list[int]],
        values2: dict[str, list[int]],
    ) -> dict[tuple[int, int], float]:
        """Initial match probabilities from exact shared literal values.

        Each shared value ``v`` contributes an identity probability of
        ``1 / (vf1(v) * vf2(v))`` (a unique shared value is conclusive);
        contributions combine noisy-or style.
        """
        cap = self.config.value_frequency_cap
        evidence: dict[tuple[int, int], float] = {}
        for value, eids1 in values1.items():
            eids2 = values2.get(value)
            if not eids2 or len(eids1) > cap or len(eids2) > cap:
                continue
            weight = 1.0 / (len(eids1) * len(eids2))
            for eid1 in eids1:
                for eid2 in eids2:
                    pair = (eid1, eid2)
                    previous = evidence.get(pair, 0.0)
                    evidence[pair] = 1.0 - (1.0 - previous) * (1.0 - weight)
        return evidence

    def _relation_alignment(
        self,
        kb1: KnowledgeBase,
        kb2: KnowledgeBase,
        matches: set[tuple[int, int]],
    ) -> dict[tuple[str, str], float]:
        """Estimate ``P(r2 | r1)`` from the current match set.

        For every KB1 edge ``(s, r1, o)`` with both endpoints matched,
        count how often the matched endpoints are connected by each
        ``r2`` in KB2.
        """
        match_of = dict(matches)
        co_occurrence: dict[tuple[str, str], int] = defaultdict(int)
        support: dict[str, int] = defaultdict(int)
        edges2: dict[tuple[int, int], set[str]] = defaultdict(set)
        for eid2 in range(len(kb2)):
            for relation2, target2 in kb2.relations(eid2):
                edges2[(eid2, target2)].add(relation2)
        for eid1 in range(len(kb1)):
            source2 = match_of.get(eid1)
            if source2 is None:
                continue
            for relation1, target1 in kb1.relations(eid1):
                target2 = match_of.get(target1)
                if target2 is None:
                    continue
                support[relation1] += 1
                for relation2 in edges2.get((source2, target2), ()):
                    co_occurrence[(relation1, relation2)] += 1
        alignment = {
            pair: count / support[pair[0]]
            for pair, count in co_occurrence.items()
            if support[pair[0]] > 0
        }
        return {
            pair: probability
            for pair, probability in alignment.items()
            if probability >= self.config.min_alignment
        }

    def _propagate(
        self,
        kb1: KnowledgeBase,
        kb2: KnowledgeBase,
        literal_evidence: dict[tuple[int, int], float],
        matches: set[tuple[int, int]],
        alignment: dict[tuple[str, str], float],
        inverse_functionality2: dict[str, float],
    ) -> dict[tuple[int, int], float]:
        """Combine literal evidence with one round of relational evidence.

        For each matched pair ``(n1, n2)`` and each incoming edge pair
        ``s1 -r1-> n1``, ``s2 -r2-> n2`` with aligned relations, the
        sources ``(s1, s2)`` gain evidence ``P(r2|r1) * ifun(r2)``,
        combined noisy-or with their literal evidence.
        """
        incoming1 = _incoming_edges(kb1)
        incoming2 = _incoming_edges(kb2)
        probabilities = dict(literal_evidence)
        for eid1, eid2 in matches:
            for relation1, source1 in incoming1.get(eid1, ()):
                for relation2, source2 in incoming2.get(eid2, ()):
                    strength = alignment.get((relation1, relation2), 0.0)
                    if strength == 0.0:
                        continue
                    weight = strength * inverse_functionality2.get(relation2, 0.0)
                    if weight <= 0.0:
                        continue
                    pair = (source1, source2)
                    previous = probabilities.get(pair, 0.0)
                    probabilities[pair] = 1.0 - (1.0 - previous) * (1.0 - weight)
        return probabilities


def _value_index(kb: KnowledgeBase) -> dict[str, list[int]]:
    """Exact literal value -> entity ids.

    Deliberately *strict* (no case folding or other normalisation):
    PARIS identifies literals by their exact lexical form, which is
    both its strength on well-curated KBs and its documented weakness
    on messy Web data whose literals differ in formatting (language
    tags, capitalisation) -- the BBCmusic-DBpedia regime.
    """
    index: dict[str, list[int]] = defaultdict(list)
    for eid in range(len(kb)):
        seen: set[str] = set()
        for value in kb.literal_values(eid):
            key = value.strip()
            if key and key not in seen:
                seen.add(key)
                index[key].append(eid)
    return index


def _inverse_functionality(kb: KnowledgeBase) -> dict[str, float]:
    """``ifun(r) = |objects(r)| / |instances(r)|`` per relation."""
    objects: dict[str, set[int]] = defaultdict(set)
    instances: dict[str, int] = defaultdict(int)
    for eid in range(len(kb)):
        seen: set[tuple[str, int]] = set()
        for relation, target in kb.relations(eid):
            if (relation, target) not in seen:
                seen.add((relation, target))
                instances[relation] += 1
                objects[relation].add(target)
    return {relation: len(objects[relation]) / instances[relation] for relation in instances}


def _incoming_edges(kb: KnowledgeBase) -> dict[int, list[tuple[str, int]]]:
    """Target id -> list of ``(relation, source id)``."""
    incoming: dict[int, list[tuple[str, int]]] = defaultdict(list)
    for eid in range(len(kb)):
        for relation, target in kb.relations(eid):
            incoming[target].append((relation, eid))
    return incoming
