"""Baselines the paper compares against (section 6).

* :mod:`bsl` -- the paper's custom baseline: value-only matching over
  the unpruned blocking graph, grid-searched over 420 configurations
  (token n-grams x TF/TF-IDF x four similarity measures x thresholds)
  against the ground truth.
* :mod:`sigma` -- a SiGMa-like iterative greedy matcher: seed matches
  from identical names, then similarity propagation along *pre-aligned*
  relations (the extra assumption SiGMa makes that MinoanER does not).
* :mod:`paris` -- a PARIS-like probabilistic matcher based on exact
  value equality and relation functionality, run for a fixed number of
  fixpoint iterations.

LINDA and RiMOM are quoted-only in the paper as well (no runnable
artifacts), so they are reported from the paper's numbers in
EXPERIMENTS.md rather than re-implemented.
"""

from repro.baselines.bsl import BSLBaseline, BSLConfig, BSLResult
from repro.baselines.paris import ParisBaseline, ParisConfig
from repro.baselines.sigma import SigmaBaseline, SigmaConfig

__all__ = [
    "BSLBaseline",
    "BSLConfig",
    "BSLResult",
    "ParisBaseline",
    "ParisConfig",
    "SigmaBaseline",
    "SigmaConfig",
]
