"""BSL: the paper's heavily fine-tuned value-only baseline (section 6).

BSL receives the *unpruned* disjunctive blocking graph -- i.e. every
candidate pair suggested by name or (purged) token blocking -- scores
each pair with a normalised token-vector similarity, and clusters with
Unique Mapping Clustering.  Unlike MinoanER it uses no neighbor or name
evidence; instead, it is allowed to fine-tune on the ground truth over

* token n-grams with ``n in {1, 2, 3}``,
* TF and TF-IDF weighting,
* Cosine / Jaccard / Generalized Jaccard similarities, plus the SiGMa
  similarity on TF-IDF weights only,
* similarity thresholds ``0.00, 0.05, ..., 0.95``

-- 420 configurations, exactly the paper's grid.  The best F1 is
reported, which makes BSL an *optimistic* value-only reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.blocking.name_blocking import name_blocks
from repro.blocking.purging import purge_blocks
from repro.blocking.token_blocking import token_blocks
from repro.clustering.unique_mapping import unique_mapping_clustering
from repro.evaluation.metrics import MatchingReport, evaluate_matches
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.similarity.measures import MEASURES
from repro.similarity.weighting import tf_idf_profiles, tf_profiles

DEFAULT_THRESHOLDS = tuple(round(0.05 * i, 2) for i in range(20))
"""Thresholds 0.00 .. 0.95, step 0.05 (paper grid)."""


@dataclass(frozen=True)
class BSLConfig:
    """One point of the BSL grid."""

    ngram: int
    weighting: str  # "tf" | "tfidf"
    measure: str  # key into repro.similarity.measures.MEASURES
    threshold: float

    def label(self) -> str:
        return f"{self.ngram}-gram/{self.weighting}/{self.measure}/t={self.threshold:.2f}"


@dataclass
class BSLResult:
    """Grid-search outcome: the best configuration and its quality."""

    best_config: BSLConfig
    best_report: MatchingReport
    best_matches: set[tuple[int, int]]
    configurations_tried: int
    per_config: list[tuple[BSLConfig, MatchingReport]]

    def __repr__(self) -> str:
        return f"BSLResult({self.best_config.label()}, {self.best_report})"


def candidate_pairs(
    kb1: KnowledgeBase,
    kb2: KnowledgeBase,
    name_attributes_k: int = 2,
    purging_budget_ratio: float = 0.01,
) -> set[tuple[int, int]]:
    """The unpruned blocking-graph edges BSL compares.

    Same blocks as MinoanER (name blocks + purged token blocks), but
    *every* co-occurring pair is kept -- no top-K pruning.
    """
    stats1 = KBStatistics(kb1, top_k_name_attributes=name_attributes_k)
    stats2 = KBStatistics(kb2, top_k_name_attributes=name_attributes_k)
    tokens = purge_blocks(
        token_blocks(kb1, kb2),
        cartesian=len(kb1) * len(kb2),
        budget_ratio=purging_budget_ratio,
    )
    names = name_blocks(stats1, stats2)
    pairs = tokens.distinct_pairs()
    pairs.update(names.distinct_pairs())
    return pairs


class BSLBaseline:
    """Grid-searched value-only baseline.

    Parameters
    ----------
    ngram_sizes / weightings / measures / thresholds:
        The grid; defaults reproduce the paper's 420 configurations
        (the ``sigma`` measure is paired with TF-IDF only, as in the
        paper).
    """

    def __init__(
        self,
        ngram_sizes: Sequence[int] = (1, 2, 3),
        weightings: Sequence[str] = ("tf", "tfidf"),
        measures: Sequence[str] = ("cosine", "jaccard", "generalized_jaccard", "sigma"),
        thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    ):
        unknown = set(measures) - set(MEASURES)
        if unknown:
            raise ValueError(f"unknown measures: {sorted(unknown)}")
        self.ngram_sizes = tuple(ngram_sizes)
        self.weightings = tuple(weightings)
        self.measures = tuple(measures)
        self.thresholds = tuple(thresholds)

    def _scheme_configs(self) -> Iterable[tuple[int, str, str]]:
        for ngram in self.ngram_sizes:
            for weighting in self.weightings:
                for measure in self.measures:
                    if measure == "sigma" and weighting != "tfidf":
                        continue  # SiGMa similarity applies to TF-IDF only
                    yield ngram, weighting, measure

    def run(
        self,
        kb1: KnowledgeBase,
        kb2: KnowledgeBase,
        ground_truth: set[tuple[int, int]],
        pairs: set[tuple[int, int]] | None = None,
    ) -> BSLResult:
        """Search the grid; return the configuration maximising F1.

        ``pairs`` defaults to :func:`candidate_pairs`.  Per (n-gram,
        weighting, measure) scheme the pair similarities are computed
        once and all thresholds are swept over the same scores.
        """
        if pairs is None:
            pairs = candidate_pairs(kb1, kb2)
        ordered_pairs = sorted(pairs)
        profile_cache: dict[tuple[int, str], tuple[list[dict], list[dict]]] = {}
        per_config: list[tuple[BSLConfig, MatchingReport]] = []
        best: tuple[BSLConfig, MatchingReport, set[tuple[int, int]]] | None = None
        tried = 0

        for ngram, weighting, measure_name in self._scheme_configs():
            profiles1, profiles2 = self._profiles(profile_cache, kb1, kb2, ngram, weighting)
            measure: Callable = MEASURES[measure_name]
            scored = [
                (eid1, eid2, measure(profiles1[eid1], profiles2[eid2]))
                for eid1, eid2 in ordered_pairs
            ]
            for threshold in self.thresholds:
                tried += 1
                config = BSLConfig(ngram, weighting, measure_name, threshold)
                matches = unique_mapping_clustering(scored, threshold=threshold)
                report = evaluate_matches(matches, ground_truth)
                per_config.append((config, report))
                if best is None or report.f1 > best[1].f1:
                    best = (config, report, matches)

        if best is None:
            raise ValueError("empty BSL grid: no configurations to try")
        return BSLResult(
            best_config=best[0],
            best_report=best[1],
            best_matches=best[2],
            configurations_tried=tried,
            per_config=per_config,
        )

    @staticmethod
    def _profiles(cache, kb1, kb2, ngram, weighting):
        key = (ngram, weighting)
        if key not in cache:
            build = tf_profiles if weighting == "tf" else tf_idf_profiles
            cache[key] = (build(kb1, n=ngram), build(kb2, n=ngram))
        return cache[key]
