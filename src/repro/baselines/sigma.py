"""SiGMa-like baseline: iterative greedy matching with aligned relations.

Models the behaviour of SiGMa (Lacoste-Julien et al., KDD 2013) as the
paper characterises it (section 5):

* **seed matches**: pairs with identical entity names;
* a priority queue of candidate pairs scored by a weighted combination
  of string similarity (SiGMa's weighted token overlap on TF-IDF) and
  *graph similarity* (the fraction of neighbors along pre-aligned
  relations that are already matched);
* **iterative propagation**: each accepted match pushes the neighbor
  pairs reachable through aligned relations back into the queue with
  recomputed scores (the data-driven convergence MinoanER avoids);
* Unique Mapping Clustering semantics: greedy acceptance, each entity
  matched at most once; stop when the best score drops below the
  threshold.

Unlike MinoanER, this baseline **requires a relation alignment** as
input -- the generator's oracle alignment stands in for the manual
alignment the real SiGMa receives.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.blocking.name_blocking import normalize_name
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.similarity.measures import sigma_similarity
from repro.similarity.weighting import tf_idf_profiles


@dataclass(frozen=True)
class SigmaConfig:
    """Knobs of the SiGMa-like matcher.

    ``threshold`` is the acceptance score below which the queue stops;
    ``graph_weight`` mixes string similarity (``1 - graph_weight``) with
    neighbor-agreement similarity; ``max_iterations`` caps queue pops as
    a convergence guard.
    """

    threshold: float = 0.3
    graph_weight: float = 0.4
    max_iterations: int = 1_000_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.graph_weight <= 1.0:
            raise ValueError(f"graph_weight must be in [0, 1], got {self.graph_weight}")


@dataclass
class SigmaResult:
    """Matches plus convergence diagnostics."""

    matches: set[tuple[int, int]]
    seed_count: int
    iterations: int


class SigmaBaseline:
    """Iterative greedy matcher in the style of SiGMa.

    Parameters
    ----------
    relation_alignment:
        Mapping of KB1 relation names to their KB2 counterparts.  This
        is the external knowledge SiGMa assumes; pass the generator's
        oracle alignment (or a hand alignment for real data).
    config:
        Scoring and stopping parameters.
    """

    def __init__(self, relation_alignment: dict[str, str], config: SigmaConfig | None = None):
        self.relation_alignment = dict(relation_alignment)
        self.config = config or SigmaConfig()

    # ------------------------------------------------------------------
    def run(self, kb1: KnowledgeBase, kb2: KnowledgeBase) -> SigmaResult:
        """Match the pair; returns matches and iteration diagnostics."""
        config = self.config
        profiles1 = tf_idf_profiles(kb1)
        profiles2 = tf_idf_profiles(kb2)
        stats1 = KBStatistics(kb1)
        stats2 = KBStatistics(kb2)

        matched_1: dict[int, int] = {}
        matched_2: dict[int, int] = {}
        incoming1 = _incoming_by_relation(kb1)
        incoming2 = _incoming_by_relation(kb2)

        def string_similarity(eid1: int, eid2: int) -> float:
            return sigma_similarity(profiles1[eid1], profiles2[eid2])

        def graph_similarity(eid1: int, eid2: int) -> float:
            """Fraction of aligned-relation neighbor slots already matched.

            Both edge directions count: SiGMa's compatible-neighbor
            evidence flows along relations regardless of orientation.
            """
            agreements = 0
            total = 0
            neighbors2 = _neighbors_by_relation(kb2, eid2)
            for relation1, target1 in kb1.relations(eid1):
                relation2 = self.relation_alignment.get(relation1)
                if relation2 is None or relation2 not in neighbors2:
                    continue
                total += 1
                partner = matched_1.get(target1)
                if partner is not None and partner in neighbors2[relation2]:
                    agreements += 1
            sources2 = incoming2.get(eid2, {})
            for relation1, source1 in incoming1.get(eid1, {}).items():
                relation2 = self.relation_alignment.get(relation1)
                if relation2 is None or relation2 not in sources2:
                    continue
                total += 1
                if any(matched_1.get(s1) in sources2[relation2] for s1 in source1):
                    agreements += 1
            if total == 0:
                return 0.0
            return agreements / total

        def score(eid1: int, eid2: int) -> float:
            return (
                (1.0 - config.graph_weight) * string_similarity(eid1, eid2)
                + config.graph_weight * graph_similarity(eid1, eid2)
            )

        # Seeds: identical, mutually exclusive names.
        seeds = _identical_name_pairs(stats1, stats2)
        counter = itertools.count()
        queue: list[tuple[float, int, int, int]] = []
        for eid1, eid2 in seeds:
            heapq.heappush(queue, (-score(eid1, eid2), next(counter), eid1, eid2))

        iterations = 0
        while queue and iterations < config.max_iterations:
            iterations += 1
            negative_score, _, eid1, eid2 = heapq.heappop(queue)
            if eid1 in matched_1 or eid2 in matched_2:
                continue
            # Graph similarity only grows as matches accumulate, so the
            # stored score is a lower bound; re-score on pop.
            current = score(eid1, eid2)
            if current < config.threshold:
                # Below threshold *for now*: a later neighbor match may
                # push it back over; it will be re-queued by propagation.
                continue
            if current > -negative_score + 1e-12 and queue and -queue[0][0] > current:
                # Better candidates are waiting; re-queue with the fresh
                # score to keep the greedy order honest.
                heapq.heappush(queue, (-current, next(counter), eid1, eid2))
                continue
            matched_1[eid1] = eid2
            matched_2[eid2] = eid1
            # Propagate to compatible neighbors through aligned relations,
            # along both edge directions.
            candidates: set[tuple[int, int]] = set()
            neighbors2 = _neighbors_by_relation(kb2, eid2)
            for relation1, target1 in kb1.relations(eid1):
                relation2 = self.relation_alignment.get(relation1)
                if relation2 is None or target1 in matched_1:
                    continue
                for target2 in neighbors2.get(relation2, ()):
                    if target2 not in matched_2:
                        candidates.add((target1, target2))
            sources2 = incoming2.get(eid2, {})
            for relation1, source_set in incoming1.get(eid1, {}).items():
                relation2 = self.relation_alignment.get(relation1)
                if relation2 is None or relation2 not in sources2:
                    continue
                for source1 in source_set:
                    if source1 in matched_1:
                        continue
                    for source2 in sources2[relation2]:
                        if source2 not in matched_2:
                            candidates.add((source1, source2))
            for target1, target2 in candidates:
                candidate_score = score(target1, target2)
                if candidate_score >= config.threshold:
                    heapq.heappush(
                        queue, (-candidate_score, next(counter), target1, target2)
                    )

        return SigmaResult(
            matches={(eid1, eid2) for eid1, eid2 in matched_1.items()},
            seed_count=len(seeds),
            iterations=iterations,
        )


def _identical_name_pairs(stats1: KBStatistics, stats2: KBStatistics) -> list[tuple[int, int]]:
    """Pairs whose normalised names are identical and unique in each KB."""
    index1 = _unique_name_index(stats1)
    index2 = _unique_name_index(stats2)
    return sorted(
        (index1[name], index2[name]) for name in set(index1) & set(index2)
    )


def _unique_name_index(stats: KBStatistics) -> dict[str, int]:
    counts: dict[str, set[int]] = {}
    for eid in range(len(stats.kb)):
        for raw in stats.names(eid):
            name = normalize_name(raw)
            if name:
                counts.setdefault(name, set()).add(eid)
    return {name: next(iter(eids)) for name, eids in counts.items() if len(eids) == 1}


def _neighbors_by_relation(kb: KnowledgeBase, eid: int) -> dict[str, set[int]]:
    grouped: dict[str, set[int]] = {}
    for relation, target in kb.relations(eid):
        grouped.setdefault(relation, set()).add(target)
    return grouped


def _incoming_by_relation(kb: KnowledgeBase) -> dict[int, dict[str, set[int]]]:
    """Target id -> relation -> source ids (reverse edge index)."""
    incoming: dict[int, dict[str, set[int]]] = {}
    for eid in range(len(kb)):
        for relation, target in kb.relations(eid):
            incoming.setdefault(target, {}).setdefault(relation, set()).add(eid)
    return incoming
