"""Integer-interned, array-backed views of the blocking inputs.

The dict-of-dicts hot path of Algorithm 1 spends most of its time
hashing ``(entity, entity)`` pairs.  The kernel layer removes that cost
by interning the inputs once into flat, contiguous integer arrays:

* :class:`InternedBlocks` -- a CSR-style view of a
  :class:`~repro.blocking.base.BlockCollection`: one flat ``array('i')``
  of entity ids per side with per-block offsets, the per-block
  ``1 / log2(|b1|*|b2| + 1)`` weight hoisted into an ``array('d')``
  (computed once, in pure Python, so every backend sees bit-identical
  weights), and a per-KB1-entity CSR index of the blocks that contain
  the entity (in ascending block order, which preserves the reference
  implementation's floating-point accumulation order per pair).
* :class:`CSRAdjacency` -- a flat-array adjacency (offsets + ids), used
  for the top in-neighbor maps that drive ``gamma`` propagation.
* :func:`retained_edge_arrays` -- the undirected union of retained
  ``beta`` edges as three parallel arrays, in exactly the first-insertion
  order of :func:`repro.graph.construction.retained_beta_edges`, so
  ``gamma`` accumulation orders (and therefore float sums) match the
  dict reference bit for bit.
"""

from __future__ import annotations

import math
from array import array
from typing import Iterable, Sequence

from repro.graph.blocking_graph import CandidateList

EdgeArrays = tuple[array, array, array]
"""Retained beta edges as parallel ``(sources, targets, weights)`` arrays."""


class CSRAdjacency:
    """A compressed sparse adjacency: ``ids[offsets[i]:offsets[i+1]]``
    are the neighbors of node ``i``.

    Built once from per-node neighbor tuples; :meth:`to_lists` returns a
    cached list-of-lists view for pure-Python inner loops.

    ``offsets``/``ids`` are any sliceable int sequences with
    ``.tolist()`` -- ``array('i')`` when built in-process, zero-copy
    int32 views over a memmapped index file when the adjacency comes
    from ``ResolutionIndex.load(mmap=True)``.  Both backends consume
    either representation unchanged (the numpy kernels via
    ``_as_int64``, the python kernels via :meth:`to_lists`).

    >>> adj = CSRAdjacency.from_lists([(1, 2), (), (0,)])
    >>> adj.neighbors(0)
    array('i', [1, 2])
    >>> len(adj)
    3
    """

    def __init__(self, offsets, ids):
        self.offsets = offsets
        self.ids = ids
        self._lists: list[list[int]] | None = None

    @classmethod
    def from_lists(cls, lists: Sequence[Sequence[int]]) -> "CSRAdjacency":
        offsets = array("i", [0])
        ids = array("i")
        for neighbors in lists:
            ids.extend(neighbors)
            offsets.append(len(ids))
        return cls(offsets, ids)

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def neighbors(self, node: int) -> array:
        """Neighbor ids of ``node`` (a flat array slice)."""
        return self.ids[self.offsets[node] : self.offsets[node + 1]]

    def to_lists(self) -> list[list[int]]:
        """Cached list-of-lists view (fast to iterate from Python)."""
        if self._lists is None:
            ids = self.ids.tolist()
            offsets = self.offsets.tolist()
            self._lists = [
                ids[offsets[node] : offsets[node + 1]] for node in range(len(self))
            ]
        return self._lists

    def __getstate__(self):
        return (self.offsets, self.ids)

    def __setstate__(self, state):
        self.offsets, self.ids = state
        self._lists = None

    def __repr__(self) -> str:
        return f"CSRAdjacency({len(self)} nodes, {len(self.ids)} edges)"


def block_weight(comparisons: int) -> float:
    """The block's edge-weight contribution ``1 / log2(|b1|*|b2| + 1)``.

    Computed with :func:`math.log2` in every backend so the interned
    weights are bit-identical to the dict reference's.
    """
    return 1.0 / math.log2(comparisons + 1.0)


class InternedBlocks:
    """A :class:`~repro.blocking.base.BlockCollection` as flat arrays.

    Attributes
    ----------
    n1, n2:
        Entity counts of the two KBs (array extents).
    side1_offsets / side1_ids, side2_offsets / side2_ids:
        CSR layout of the per-block entity id lists.
    weights:
        Per-block ``1 / log2(|b1|*|b2| + 1)``, hoisted out of the
        accumulation loops.
    entity_block_offsets / entity_block_ids:
        Per-KB1-entity CSR index of the blocks containing the entity,
        in ascending block order.
    """

    def __init__(
        self,
        n1: int,
        n2: int,
        side1_offsets: array,
        side1_ids: array,
        side2_offsets: array,
        side2_ids: array,
        weights: array,
    ):
        self.n1 = n1
        self.n2 = n2
        self.side1_offsets = side1_offsets
        self.side1_ids = side1_ids
        self.side2_offsets = side2_offsets
        self.side2_ids = side2_ids
        self.weights = weights
        self.entity_block_offsets, self.entity_block_ids = self._index_entities()

    @classmethod
    def from_blocks(
        cls,
        blocks: Iterable,
        n1: int,
        n2: int,
    ) -> "InternedBlocks":
        """Intern a block collection (or any iterable of objects with
        ``side1`` / ``side2`` id sequences)."""
        return cls.from_block_items(
            ((block.side1, block.side2) for block in blocks), n1, n2
        )

    @classmethod
    def from_block_items(
        cls,
        items: Iterable[tuple[Sequence[int], Sequence[int]]],
        n1: int,
        n2: int,
    ) -> "InternedBlocks":
        """Intern plain ``(side1, side2)`` tuples (picklable stage input)."""
        side1_offsets = array("i", [0])
        side2_offsets = array("i", [0])
        side1_ids = array("i")
        side2_ids = array("i")
        weights = array("d")
        for side1, side2 in items:
            side1_ids.extend(side1)
            side2_ids.extend(side2)
            side1_offsets.append(len(side1_ids))
            side2_offsets.append(len(side2_ids))
            weights.append(block_weight(len(side1) * len(side2)))
        return cls(n1, n2, side1_offsets, side1_ids, side2_offsets, side2_ids, weights)

    @property
    def n_blocks(self) -> int:
        return len(self.weights)

    def total_comparisons(self) -> int:
        """``||B||`` of the interned collection."""
        off1, off2 = self.side1_offsets, self.side2_offsets
        return sum(
            (off1[b + 1] - off1[b]) * (off2[b + 1] - off2[b])
            for b in range(self.n_blocks)
        )

    def _index_entities(self) -> tuple[array, array]:
        """CSR index KB1 entity -> ids of blocks containing it.

        Two counting passes; block ids per entity come out ascending,
        which keeps each pair's weight-accumulation order equal to the
        reference implementation's block iteration order.
        """
        counts = [0] * (self.n1 + 1)
        ids = self.side1_ids
        for eid in ids:
            counts[eid + 1] += 1
        for eid in range(self.n1):
            counts[eid + 1] += counts[eid]
        offsets = array("i", counts)
        cursor = counts[:]  # next write position per entity
        block_ids = array("i", bytes(4 * len(ids)))
        off1 = self.side1_offsets
        for block in range(self.n_blocks):
            for position in range(off1[block], off1[block + 1]):
                eid = ids[position]
                block_ids[cursor[eid]] = block
                cursor[eid] += 1
        return offsets, block_ids

    def __repr__(self) -> str:
        return (
            f"InternedBlocks({self.n_blocks} blocks, "
            f"{len(self.side1_ids)}+{len(self.side2_ids)} assignments)"
        )


def retained_edge_arrays(
    value_candidates_1: Sequence[CandidateList],
    value_candidates_2: Sequence[CandidateList],
) -> EdgeArrays:
    """Undirected union of the directed top-K ``beta`` edges, as arrays.

    Preserves the first-insertion order (side 1 sweeps first, then side
    2 adds edges not already retained) of
    :func:`repro.graph.construction.retained_beta_edges`, so downstream
    ``gamma`` float accumulation visits edges in the identical order.
    """
    sources = array("i")
    targets = array("i")
    weights = array("d")
    seen: set[tuple[int, int]] = set()
    for eid1, candidates in enumerate(value_candidates_1):
        for eid2, weight in candidates:
            sources.append(eid1)
            targets.append(eid2)
            weights.append(weight)
            seen.add((eid1, eid2))
    for eid2, candidates in enumerate(value_candidates_2):
        for eid1, weight in candidates:
            if (eid1, eid2) not in seen:
                sources.append(eid1)
                targets.append(eid2)
                weights.append(weight)
    return sources, targets, weights
