"""Array-backed sparse kernels for the blocking-graph hot path.

Algorithm 1's cost is dominated by three passes -- ``beta``
accumulation over purged token blocks, the transpose + top-K pruning of
the value evidence, and ``gamma`` propagation over retained edges.  The
reference implementation (:mod:`repro.graph.construction`) runs them
over dicts of dicts; this package re-implements them over integer-
interned flat arrays (CSR-style), with two interchangeable backends:

* :mod:`repro.kernels.python_backend` -- dependency-free dense
  scratch-row + touched-list accumulators;
* :mod:`repro.kernels.numpy_backend` -- vectorised expansion +
  ``unique``/``bincount`` collapse (used when numpy is importable).

Both are **bit-identical** to the dict reference (same float
accumulation order per pair), so backend selection
(``MinoanERConfig.kernel_backend``) is purely a performance knob, and
the dict path remains the equivalence oracle for tests.

:mod:`repro.kernels.partition` adapts the same kernels to the
stage-parallel pipeline's partitioned dataflow.
"""

from repro.kernels.dispatch import (
    KERNEL_API,
    KERNEL_BACKENDS,
    available_backends,
    get_backend,
    missing_api,
    numpy_available,
    resolve_backend_name,
)
from repro.kernels.interning import (
    CSRAdjacency,
    InternedBlocks,
    block_weight,
    retained_edge_arrays,
)
from repro.kernels.python_backend import accumulate_row, select_row

__all__ = [
    "KERNEL_API",
    "KERNEL_BACKENDS",
    "CSRAdjacency",
    "InternedBlocks",
    "accumulate_row",
    "available_backends",
    "block_weight",
    "get_backend",
    "missing_api",
    "numpy_available",
    "resolve_backend_name",
    "retained_edge_arrays",
    "select_row",
]
