"""Vectorised kernels over the interned arrays (optional numpy backend).

Strategy: expand every suggested comparison (or in-neighbor pair) into
flat parallel arrays *in reference order*, collapse duplicate pairs with
``np.unique`` + ``np.bincount``, and prune per node from the grouped
nonzeros.  ``np.bincount`` accumulates its weights with a sequential
C loop in input order, so each pair's float sum is built in exactly the
block/edge order of the dict reference -- the results are bit-identical,
not merely approximately equal.

The module imports numpy lazily-at-import; callers go through
:mod:`repro.kernels.dispatch`, which only selects this backend when the
import succeeds.  Core stays dependency-free.
"""

from __future__ import annotations

import numpy as np

from repro.graph.blocking_graph import CandidateList
from repro.graph.pruning import adaptive_cut
from repro.kernels.interning import CSRAdjacency, EdgeArrays, InternedBlocks

name = "numpy"

AdaptiveCut = tuple[float, int] | None


def is_available() -> bool:
    return True


def _as_int64(buffer) -> "np.ndarray":
    if isinstance(buffer, np.ndarray):
        # Already an array (e.g. an int32 view over a memmapped index
        # section): convert without a buffer-protocol round trip.
        return buffer.astype(np.int64, copy=False)
    if len(buffer) == 0:
        return np.empty(0, dtype=np.int64)
    if isinstance(buffer, list):
        return np.asarray(buffer, dtype=np.int64)
    return np.frombuffer(buffer, dtype=np.intc).astype(np.int64)


def _as_float64(buffer) -> "np.ndarray":
    if isinstance(buffer, np.ndarray):
        return buffer.astype(np.float64, copy=False)
    if len(buffer) == 0:
        return np.empty(0, dtype=np.float64)
    if isinstance(buffer, list):
        return np.asarray(buffer, dtype=np.float64)
    return np.frombuffer(buffer, dtype=np.float64)


def _expand_slots(counts_inner: "np.ndarray", counts_pair: "np.ndarray"):
    """Per-contribution ``(outer slot, inner slot)`` indices.

    For each group ``g`` (a block or an edge), ``counts_pair[g] =
    outer[g] * counts_inner[g]`` contributions are laid out inner-fastest
    -- the reference loops' iteration order.
    """
    total = int(counts_pair.sum())
    starts = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts_pair)))[:-1]
    local = np.arange(total, dtype=np.int64) - np.repeat(starts, counts_pair)
    inner_expanded = np.repeat(counts_inner, counts_pair)
    outer_slot = local // inner_expanded
    inner_slot = local - outer_slot * inner_expanded
    return outer_slot, inner_slot


def _accumulate_pairs(
    rows: "np.ndarray",
    cols: "np.ndarray",
    weights: "np.ndarray",
    n2: int,
):
    """Collapse duplicate ``(row, col)`` pairs, summing in input order."""
    keys = rows * n2 + cols
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=weights)
    unique_rows = unique_keys // n2
    unique_cols = unique_keys - unique_rows * n2
    return unique_rows, unique_cols, sums


def accumulate_row(
    weighted_postings,
) -> tuple[list[int], list[float]]:
    """Accumulate one entity's ``beta`` row from weighted posting lists.

    Vectorised counterpart of the python backend's ``accumulate_row``:
    the per-block candidate arrays are concatenated (memmapped int32
    posting slices are consumed as-is -- no per-token python lists),
    block weights are expanded alongside, and duplicate candidates are
    collapsed with ``unique`` + ``bincount``.  ``bincount`` sums each
    bin sequentially in input order, so every candidate's float total is
    built in exactly the block visit order of the dict accumulation --
    bit-identical sums.  Candidates return in ascending id order (the
    python backend returns first-touch order); all consumers rank under
    the total order ``(-score, id)``, which is insensitive to row order.
    """
    chunks = []
    weights: list[float] = []
    counts: list[int] = []
    for weight, candidates in weighted_postings:
        ids = _as_int64(candidates)
        if ids.shape[0] == 0:
            continue
        chunks.append(ids)
        weights.append(weight)
        counts.append(ids.shape[0])
    if not chunks:
        return [], []
    cols = np.concatenate(chunks)
    expanded = np.repeat(
        np.asarray(weights, dtype=np.float64), np.asarray(counts, dtype=np.int64)
    )
    unique_cols, inverse = np.unique(cols, return_inverse=True)
    sums = np.bincount(inverse, weights=expanded)
    return unique_cols.tolist(), sums.tolist()


def row_evidence(
    weighted_postings,
    keep: int,
    margin: int,
    probe: int | None = None,
):
    """One query's merge-ready value evidence, fused.

    The accumulation of :func:`accumulate_row` feeding straight into
    :func:`select_row` without materialising python lists in between --
    posting slices (memmapped int32 included) are concatenated as-is,
    duplicates collapse via ``unique`` + ``bincount`` (bit-identical
    sums; see :func:`accumulate_row`), and the uncopied arrays go to
    selection.  The ``margin`` smallest touched ids fall out of
    ``unique``'s ascending order as a prefix slice, and the ``probe``
    membership test is one vectorised comparison.  Returns
    ``(ranked row, mins, touched count, probe touched)``.
    """
    chunks = []
    weights: list[float] = []
    counts: list[int] = []
    for weight, candidates in weighted_postings:
        ids = np.asarray(candidates)
        if ids.shape[0] == 0:
            continue
        chunks.append(ids)
        weights.append(weight)
        counts.append(ids.shape[0])
    if not chunks:
        return (), [], 0, False
    cols = np.concatenate(chunks)
    expanded = np.repeat(
        np.asarray(weights, dtype=np.float64), np.asarray(counts, dtype=np.int64)
    )
    unique_cols, inverse = np.unique(cols, return_inverse=True)
    sums = np.bincount(inverse, weights=expanded)
    row = select_row(unique_cols, sums, keep, None)
    mins = unique_cols[:margin].tolist()
    touched = probe is not None and bool((unique_cols == int(probe)).any())
    return row, mins, int(unique_cols.shape[0]), touched


def select_row(
    ids,
    sums,
    k: int,
    cut: AdaptiveCut = None,
) -> CandidateList:
    """Top-K of one sparse row, ranked by ``(-score, id)``.

    Fused selection: one ``np.partition`` finds the k-th largest score,
    strictly-greater entries survive outright (provably at most k-1 of
    them), and the remaining slots are filled from the threshold ties by
    smallest candidate id -- realising the exact bounded-heap total
    order of the python backend without sorting the whole row.  Only the
    <= k survivors are then ordered (``lexsort`` on ``(-score, id)``).
    Scores are carried through untouched, so the returned floats are
    bit-identical to the accumulation's.
    """
    if k <= 0:
        return ()
    ids_arr = _as_int64(ids)
    scores = _as_float64(sums)
    n = ids_arr.shape[0]
    if n == 0:
        return ()
    if n > k:
        threshold = np.partition(scores, n - k)[n - k]
        above = scores > threshold
        need = k - int(above.sum())
        ties = scores == threshold
        tie_ids = ids_arr[ties]
        if need < tie_ids.shape[0]:
            # Ties rank by ascending id: keep the `need` smallest ids.
            cutoff = np.partition(tie_ids, need - 1)[need - 1]
            keep = above | (ties & (ids_arr <= cutoff))
        else:
            keep = above | ties
        ids_arr = ids_arr[keep]
        scores = scores[keep]
    order = np.lexsort((ids_arr, -scores))
    ranked = tuple(zip(ids_arr[order].tolist(), scores[order].tolist()))
    if cut is not None:
        ranked = adaptive_cut(ranked, cut[0], cut[1])
    return ranked


def _topk_grouped(
    groups: "np.ndarray",
    candidates: "np.ndarray",
    scores: "np.ndarray",
    n: int,
    k: int,
    cut: AdaptiveCut,
) -> list[CandidateList]:
    """Per-group top-K with the (-score, candidate id) ranking key.

    Precondition: within every group, entries with equal scores appear
    in ascending candidate order (true of both ``_accumulate_pairs``
    orientations, whose input is sorted by ``(row, col)``).  The stable
    two-key lexsort then realises the full ``(group, -score, candidate)``
    order without a third sort pass.
    """
    if len(groups) == 0 or k <= 0:
        return [()] * n
    if n == 1:
        # Batch of one: the grouped problem degenerates to a single row,
        # shared with the serving hot path's fused selection.
        return [select_row(candidates, scores, k, cut)]
    order = np.lexsort((-scores, groups))
    counts = np.bincount(groups, minlength=n)
    offsets = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)))
    rank = np.arange(len(groups), dtype=np.int64) - np.repeat(offsets[:-1], counts)
    kept = order[rank < k]
    candidate_list = candidates[kept].tolist()
    score_list = scores[kept].tolist()
    kept_counts = np.minimum(counts, k).tolist()
    out: list[CandidateList] = []
    position = 0
    for node in range(n):
        take = kept_counts[node]
        ranked = tuple(
            zip(
                candidate_list[position : position + take],
                score_list[position : position + take],
            )
        )
        if cut is not None:
            ranked = adaptive_cut(ranked, cut[0], cut[1])
        out.append(ranked)
        position += take
    return out


def _beta_pairs(interned: InternedBlocks):
    """Expanded ``(row, col, weight)`` arrays for every comparison, in
    block order, collapsed to unique pairs."""
    offsets1 = _as_int64(interned.side1_offsets)
    offsets2 = _as_int64(interned.side2_offsets)
    ids1 = _as_int64(interned.side1_ids)
    ids2 = _as_int64(interned.side2_ids)
    weights = _as_float64(interned.weights)
    len1 = np.diff(offsets1)
    len2 = np.diff(offsets2)
    counts = len1 * len2
    if int(counts.sum()) == 0:
        return None
    row_slot, col_slot = _expand_slots(len2, counts)
    rows = ids1[np.repeat(offsets1[:-1], counts) + row_slot]
    cols = ids2[np.repeat(offsets2[:-1], counts) + col_slot]
    expanded_weights = np.repeat(weights, counts)
    return _accumulate_pairs(rows, cols, expanded_weights, interned.n2)


def beta_sparse(interned: InternedBlocks):
    """Backend-native sparse ``beta``: collapsed ``(rows, cols, sums)``
    arrays (or None when there are no comparisons).

    This is the representation the fused ``value_topk`` consumes; the
    dict view of :func:`accumulate_beta` exists only as the
    oracle-comparable interface.
    """
    return _beta_pairs(interned)


def accumulate_beta(interned: InternedBlocks) -> list[dict[int, float]]:
    """Per-KB1-entity ``beta`` rows as dicts (oracle-comparable view)."""
    rows: list[dict[int, float]] = [dict() for _ in range(interned.n1)]
    pairs = _beta_pairs(interned)
    if pairs is None:
        return rows
    unique_rows, unique_cols, sums = pairs
    for eid1, eid2, weight in zip(
        unique_rows.tolist(), unique_cols.tolist(), sums.tolist()
    ):
        rows[eid1][eid2] = weight
    return rows


def value_topk(
    interned: InternedBlocks,
    k: int,
    cut: AdaptiveCut = None,
) -> tuple[list[CandidateList], list[CandidateList]]:
    """Fused beta accumulation + transpose + top-K for both sides."""
    pairs = _beta_pairs(interned)
    if pairs is None:
        return [()] * interned.n1, [()] * interned.n2
    unique_rows, unique_cols, sums = pairs
    side1 = _topk_grouped(unique_rows, unique_cols, sums, interned.n1, k, cut)
    side2 = _topk_grouped(unique_cols, unique_rows, sums, interned.n2, k, cut)
    return side1, side2


def _gamma_pairs(
    edges: EdgeArrays,
    adjacency1: CSRAdjacency,
    adjacency2: CSRAdjacency,
):
    """Expanded ``(source, target, weight)`` arrays for every in-neighbor
    pair of every retained edge, in edge order, collapsed to unique
    pairs.  Returns None when nothing propagates."""
    n2 = len(adjacency2)
    edge_sources, edge_targets, edge_weights = edges
    if len(edge_sources) == 0:
        return None
    sources = _as_int64(edge_sources)
    targets = _as_int64(edge_targets)
    weights = _as_float64(edge_weights)
    offsets1 = _as_int64(adjacency1.offsets)
    ids1 = _as_int64(adjacency1.ids)
    offsets2 = _as_int64(adjacency2.offsets)
    ids2 = _as_int64(adjacency2.ids)
    in_degree1 = np.diff(offsets1)[sources]
    in_degree2 = np.diff(offsets2)[targets]
    counts = in_degree1 * in_degree2
    if int(counts.sum()) == 0:
        return None
    source_slot, target_slot = _expand_slots(in_degree2, counts)
    gamma_sources = ids1[np.repeat(offsets1[:-1][sources], counts) + source_slot]
    gamma_targets = ids2[np.repeat(offsets2[:-1][targets], counts) + target_slot]
    expanded_weights = np.repeat(weights, counts)
    return _accumulate_pairs(gamma_sources, gamma_targets, expanded_weights, n2)


def accumulate_gamma(
    edges: EdgeArrays,
    adjacency1: CSRAdjacency,
    adjacency2: CSRAdjacency,
) -> list[dict[int, float]]:
    """Per-KB1-entity ``gamma`` rows as dicts (oracle-comparable view)."""
    rows: list[dict[int, float]] = [dict() for _ in range(len(adjacency1))]
    pairs = _gamma_pairs(edges, adjacency1, adjacency2)
    if pairs is None:
        return rows
    unique_rows, unique_cols, sums = pairs
    for source, target, weight in zip(
        unique_rows.tolist(), unique_cols.tolist(), sums.tolist()
    ):
        rows[source][target] = weight
    return rows


def gamma_topk(
    edges: EdgeArrays,
    adjacency1: CSRAdjacency,
    adjacency2: CSRAdjacency,
    k: int,
    cut: AdaptiveCut = None,
) -> tuple[list[CandidateList], list[CandidateList]]:
    """Fused gamma propagation + transpose + top-K for both sides."""
    n1, n2 = len(adjacency1), len(adjacency2)
    pairs = _gamma_pairs(edges, adjacency1, adjacency2)
    if pairs is None:
        return [()] * n1, [()] * n2
    unique_rows, unique_cols, sums = pairs
    side1 = _topk_grouped(unique_rows, unique_cols, sums, n1, k, cut)
    side2 = _topk_grouped(unique_cols, unique_rows, sums, n2, k, cut)
    return side1, side2
