"""Array kernels adapted to the stage-parallel pipeline's dataflow.

:mod:`repro.parallel.pipeline` splits graph construction into
partitioned stages: ``beta`` accumulation over token-block partitions
and ``gamma`` propagation over retained-edge partitions, with the
driver merging per-partition partial rows (in partition order) before
the top-K stages.  These kernels compute the same per-partition
partials as the dict stage kernels -- bit-identical floats, because
within a partition each pair's weights still accumulate in block/edge
order -- but over the interned arrays instead of nested dicts.

All functions are module-level and operate on picklable inputs, so the
``process`` backend of :class:`~repro.parallel.context.ParallelContext`
can ship them to workers.
"""

from __future__ import annotations

from array import array
from typing import Sequence

from repro.kernels.dispatch import get_backend
from repro.kernels.interning import CSRAdjacency, InternedBlocks

Partial = dict[int, dict[int, float]]
"""Per-partition accumulator: KB1 id -> (KB2 id -> partial weight)."""


def beta_partition_kernel(
    blocks: list[tuple[Sequence[int], Sequence[int]]],
    n1: int,
    n2: int,
    backend: str,
) -> Partial:
    """Partial ``beta`` over one partition of ``(side1, side2)`` items.

    Same partial rows as
    :func:`repro.parallel.pipeline.beta_kernel`, computed by interning
    the partition once and running the array backend's accumulator.
    """
    impl = get_backend(backend)
    interned = InternedBlocks.from_block_items(blocks, n1, n2)
    rows = impl.accumulate_beta(interned)
    return {eid: row for eid, row in enumerate(rows) if row}


def gamma_partition_kernel(
    edges: list[tuple[int, int, float]],
    in_neighbors_1: list[tuple[int, ...]],
    in_neighbors_2: list[tuple[int, ...]],
    backend: str,
) -> Partial:
    """Partial ``gamma`` over one partition of retained beta edges.

    Same partial rows as
    :func:`repro.parallel.pipeline.gamma_kernel`: every edge's weight
    propagates to the cross product of the endpoints' top in-neighbors,
    accumulated in edge order within the partition.
    """
    impl = get_backend(backend)
    sources = array("i", (edge[0] for edge in edges))
    targets = array("i", (edge[1] for edge in edges))
    weights = array("d", (edge[2] for edge in edges))
    adjacency1 = CSRAdjacency.from_lists(in_neighbors_1)
    adjacency2 = CSRAdjacency.from_lists(in_neighbors_2)
    rows = impl.accumulate_gamma((sources, targets, weights), adjacency1, adjacency2)
    return {eid: row for eid, row in enumerate(rows) if row}
