"""Kernel backend registry and selection.

Three interchangeable implementations of the blocking-graph hot path:

* ``"dict"`` -- the reference dict-of-dicts implementation in
  :mod:`repro.graph.construction` (the equivalence oracle);
* ``"python"`` -- the dependency-free array kernels
  (:mod:`repro.kernels.python_backend`);
* ``"numpy"`` -- the vectorised kernels
  (:mod:`repro.kernels.numpy_backend`), available when numpy imports;
* ``"auto"`` -- ``numpy`` when available, else ``python``.

All three produce bit-identical ``DisjunctiveBlockingGraph``s; selection
is a pure performance knob (``MinoanERConfig.kernel_backend``).
"""

from __future__ import annotations

from types import ModuleType

KERNEL_BACKENDS = ("auto", "dict", "python", "numpy")
"""Accepted values of ``MinoanERConfig.kernel_backend``."""

KERNEL_API = (
    "accumulate_beta",
    "accumulate_gamma",
    "accumulate_row",
    "beta_sparse",
    "gamma_topk",
    "is_available",
    "row_evidence",
    "select_row",
    "value_topk",
)
"""Entry points every array backend module exposes.

The batch kernels (``value_topk``/``gamma_topk`` and their
oracle-comparable dict views) plus the single-row serving surface
(``accumulate_row``/``select_row`` and the fused ``row_evidence``).
The serving engine's breaker fallback swaps backends mid-call, so the
python and numpy modules must stay signature-compatible across this
whole surface; the conformance test walks this tuple."""


def missing_api(module: ModuleType) -> tuple[str, ...]:
    """:data:`KERNEL_API` names ``module`` lacks (empty = conformant)."""
    return tuple(name for name in KERNEL_API if not callable(getattr(module, name, None)))

_NUMPY_AVAILABLE: bool | None = None


def numpy_available() -> bool:
    """True iff the numpy backend can be imported (checked once)."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:
            import repro.kernels.numpy_backend  # noqa: F401
        except ImportError:
            _NUMPY_AVAILABLE = False
        else:
            _NUMPY_AVAILABLE = True
    return _NUMPY_AVAILABLE


def available_backends() -> tuple[str, ...]:
    """The concrete backends importable in this environment."""
    names = ["dict", "python"]
    if numpy_available():
        names.append("numpy")
    return tuple(names)


def resolve_backend_name(backend: str) -> str:
    """Map a configured backend name to a concrete one.

    ``"auto"`` resolves to ``"numpy"`` when importable and ``"python"``
    otherwise; explicit names are validated.
    """
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {KERNEL_BACKENDS}"
        )
    if backend == "auto":
        return "numpy" if numpy_available() else "python"
    if backend == "numpy" and not numpy_available():
        raise ValueError("kernel backend 'numpy' requested but numpy is not importable")
    return backend


def get_backend(backend: str) -> ModuleType | None:
    """The kernel module for ``backend``, or None for the dict reference.

    Every resolution increments the ``kernels.dispatch.<resolved>``
    counter on the ambient :func:`repro.obs.current_recorder`, so
    traces show which backend actually served each run.  Each dispatch
    is also a ``kernel:<resolved>`` injection site for chaos plans (the
    serving engine additionally injects per guarded kernel *call*; see
    ``MatchEngine._run_kernel``).
    """
    from repro.obs import current_recorder
    from repro.resilience.faults import inject

    resolved = resolve_backend_name(backend)
    current_recorder().count(f"kernels.dispatch.{resolved}")
    inject(f"kernel:{resolved}")
    if resolved == "dict":
        return None
    if resolved == "numpy":
        import repro.kernels.numpy_backend as module
    else:
        import repro.kernels.python_backend as module
    return module
