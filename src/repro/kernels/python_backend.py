"""Dependency-free array kernels: dense scratch row + touched list.

The accumulator pattern shared by both kernels: one dense ``float``
scratch row (length = the other KB's entity count) plus a *touched*
list of the slots written this round.  Accumulating into a list slot is
a plain index store -- no per-pair hashing -- and resetting only the
touched slots keeps each round O(nnz) instead of O(n).

Top-K selection runs over ``(score, -id)`` decorated tuples in a
bounded min-heap, so every comparison is a C-level tuple comparison
(no key-function calls); the decoration realises the same total order
as :func:`repro.graph.pruning.top_k_candidates`.

Floating-point equivalence with the dict reference
(:mod:`repro.graph.construction`) is by construction:

* per KB1 entity, blocks are visited in ascending block order, so every
  ``(i, j)`` pair accumulates its block weights in exactly the order the
  reference's block-outer loop does;
* side-2 rows are *copies* of the accumulated sums (bucketed by
  candidate id), mirroring ``transpose_beta``'s copy semantics;
* ``gamma`` visits retained edges grouped per in-neighbor source but in
  retained-edge order within each group, matching the reference's
  edge-outer loop order per ``(source, target)`` pair.
"""

from __future__ import annotations

from heapq import heappush, heappushpop, nsmallest
from typing import Iterable

from repro.graph.blocking_graph import CandidateList
from repro.graph.pruning import adaptive_cut
from repro.kernels.interning import CSRAdjacency, EdgeArrays, InternedBlocks

name = "python"

AdaptiveCut = tuple[float, int] | None
"""``(gap_ratio, minimum)`` for dynamic pruning, or None for plain top-K."""


def is_available() -> bool:
    return True


def _select_row(
    ids: list[int],
    sums: list[float],
    k: int,
    cut: AdaptiveCut,
) -> CandidateList:
    """Top-K of one sparse row, ranked by ``(-score, id)``.

    Decorated as ``(score, -id)`` so the bounded min-heap keeps the k
    largest under the exact tie-break order of ``top_k_candidates``.
    """
    if k <= 0 or not ids:
        return ()
    decorated = [(score, -candidate) for score, candidate in zip(sums, ids)]
    if len(decorated) > k:
        heap: list[tuple[float, int]] = []
        worst = None
        for item in decorated:
            if worst is None:
                heappush(heap, item)
                if len(heap) == k:
                    worst = heap[0]
            elif item > worst:
                heappushpop(heap, item)
                worst = heap[0]
        heap.sort(reverse=True)
        decorated = heap
    else:
        decorated.sort(reverse=True)
    ranked = tuple([(-negated, score) for score, negated in decorated])
    if cut is not None:
        ranked = adaptive_cut(ranked, cut[0], cut[1])
    return ranked


def select_row(
    ids: list[int],
    sums: list[float],
    k: int,
    cut: AdaptiveCut = None,
) -> CandidateList:
    """Public single-row top-K entry point (used by the serving engine).

    Ranks one sparse row under the exact total order of the batch
    kernels -- ``(-score, id)`` with the same bounded-heap selection --
    so a row scored at query time is pruned identically to the same row
    scored inside :func:`value_topk` / :func:`gamma_topk`.
    """
    return _select_row(ids, sums, k, cut)


def accumulate_row(
    weighted_postings: "Iterable[tuple[float, Iterable[int]]]",
) -> tuple[list[int], list[float]]:
    """Accumulate one entity's ``beta`` row from weighted posting lists.

    ``weighted_postings`` yields ``(block weight, candidate ids)`` per
    block, in ascending block order.  Sums are added in visit order, so
    feeding the blocks of one KB1 entity (sorted as the interner sorts
    them) reproduces that entity's :func:`beta_sparse` row bit for bit
    -- this is the single-query hot path of :mod:`repro.serving`, which
    never materialises an :class:`~repro.kernels.interning.InternedBlocks`.
    """
    row: dict[int, float] = {}
    get = row.get
    for weight, candidates in weighted_postings:
        for candidate in candidates:
            row[candidate] = get(candidate, 0.0) + weight
    return list(row.keys()), list(row.values())


def row_evidence(
    weighted_postings: "Iterable[tuple[float, Iterable[int]]]",
    keep: int,
    margin: int,
    probe: int | None = None,
):
    """One query's merge-ready value evidence, fused.

    :func:`accumulate_row` + :func:`select_row` plus the two summaries
    the shard-merge protocol needs -- the ``margin`` smallest touched
    candidate ids and whether ``probe`` was touched -- in one kernel
    call, so a backend can keep the row in its native representation
    end to end instead of round-tripping through python lists between
    ops.  Returns ``(ranked row, mins, touched count, probe touched)``.
    """
    ids, sums = accumulate_row(weighted_postings)
    row = _select_row(ids, sums, keep, None)
    mins = [int(candidate) for candidate in nsmallest(margin, ids)]
    touched = probe is not None and any(int(candidate) == probe for candidate in ids)
    return row, mins, len(ids), touched


def _beta_sparse_rows(interned: InternedBlocks):
    """Yield ``(candidate ids, beta sums)`` per KB1 entity, in order."""
    n2 = interned.n2
    entity_offsets = interned.entity_block_offsets.tolist()
    entity_blocks = interned.entity_block_ids.tolist()
    side2_offsets = interned.side2_offsets.tolist()
    side2_ids = interned.side2_ids.tolist()
    weights = interned.weights.tolist()
    scratch = [0.0] * n2
    for entity in range(interned.n1):
        touched: list[int] = []
        append = touched.append
        for block in entity_blocks[entity_offsets[entity] : entity_offsets[entity + 1]]:
            weight = weights[block]
            for candidate in side2_ids[side2_offsets[block] : side2_offsets[block + 1]]:
                value = scratch[candidate]
                if value != 0.0:
                    scratch[candidate] = value + weight
                else:
                    scratch[candidate] = weight
                    append(candidate)
        sums = [scratch[candidate] for candidate in touched]
        yield touched, sums
        for candidate in touched:
            scratch[candidate] = 0.0


def beta_sparse(interned: InternedBlocks) -> list[tuple[list[int], list[float]]]:
    """Backend-native sparse ``beta``: per-entity ``(ids, sums)`` rows.

    This is the representation the fused ``value_topk`` consumes; the
    dict view of :func:`accumulate_beta` exists only as the
    oracle-comparable interface.
    """
    return list(_beta_sparse_rows(interned))


def accumulate_beta(interned: InternedBlocks) -> list[dict[int, float]]:
    """Per-KB1-entity ``beta`` rows as dicts (oracle-comparable view).

    Bit-identical to :func:`repro.graph.construction.accumulate_beta`
    on the same blocks; used by the equivalence tests and benchmarks.
    """
    return [dict(zip(ids, sums)) for ids, sums in _beta_sparse_rows(interned)]


def value_topk(
    interned: InternedBlocks,
    k: int,
    cut: AdaptiveCut = None,
) -> tuple[list[CandidateList], list[CandidateList]]:
    """Fused beta accumulation + transpose + top-K for both sides.

    Equivalent to ``value_evidence`` without materialising the n2 column
    dicts: side-1 rows are pruned as soon as they are accumulated, and
    their nonzeros are bucketed per KB2 entity (a copy, exactly like
    ``transpose_beta``) for the side-2 pruning pass.
    """
    n2 = interned.n2
    column_ids: list[list[int]] = [[] for _ in range(n2)]
    column_sums: list[list[float]] = [[] for _ in range(n2)]
    side1: list[CandidateList] = []
    for entity, (ids, sums) in enumerate(_beta_sparse_rows(interned)):
        side1.append(_select_row(ids, sums, k, cut))
        for candidate, value in zip(ids, sums):
            column_ids[candidate].append(entity)
            column_sums[candidate].append(value)
    side2 = [
        _select_row(ids, sums, k, cut)
        for ids, sums in zip(column_ids, column_sums)
    ]
    return side1, side2


def _gamma_sparse_rows(
    edges: EdgeArrays,
    adjacency1: CSRAdjacency,
    adjacency2: CSRAdjacency,
):
    """Yield ``(target ids, gamma sums)`` per KB1 source, in order.

    Every retained beta edge ``(i, j, w)`` adds ``w`` to ``gamma[s][t]``
    for every ``(s, t)`` in ``in1(i) x in2(j)``.  Edges are grouped per
    source ``s`` (preserving edge order within each group) so one dense
    scratch row per source accumulates all its targets without hashing.
    """
    n1, n2 = len(adjacency1), len(adjacency2)
    edge_sources = edges[0].tolist()
    edge_weights = edges[2].tolist()
    in1 = adjacency1.to_lists()
    in2 = adjacency2.to_lists()
    edge_targets = [in2[target] for target in edges[1]]

    source_edges: list[list[int]] = [[] for _ in range(n1)]
    for edge, eid1 in enumerate(edge_sources):
        for source in in1[eid1]:
            source_edges[source].append(edge)

    scratch = [0.0] * n2
    for source in range(n1):
        touched: list[int] = []
        append = touched.append
        for edge in source_edges[source]:
            weight = edge_weights[edge]
            for target in edge_targets[edge]:
                value = scratch[target]
                if value != 0.0:
                    scratch[target] = value + weight
                else:
                    scratch[target] = weight
                    append(target)
        sums = [scratch[target] for target in touched]
        yield touched, sums
        for target in touched:
            scratch[target] = 0.0


def accumulate_gamma(
    edges: EdgeArrays,
    adjacency1: CSRAdjacency,
    adjacency2: CSRAdjacency,
) -> list[dict[int, float]]:
    """Per-KB1-entity ``gamma`` rows as dicts (oracle-comparable view).

    Same row values as the accumulation loop of
    :func:`repro.graph.construction.neighbor_evidence`; used by the
    partition kernels and the equivalence tests.
    """
    return [
        dict(zip(ids, sums))
        for ids, sums in _gamma_sparse_rows(edges, adjacency1, adjacency2)
    ]


def gamma_topk(
    edges: EdgeArrays,
    adjacency1: CSRAdjacency,
    adjacency2: CSRAdjacency,
    k: int,
    cut: AdaptiveCut = None,
) -> tuple[list[CandidateList], list[CandidateList]]:
    """Fused gamma propagation + transpose + top-K for both sides."""
    n2 = len(adjacency2)
    column_ids: list[list[int]] = [[] for _ in range(n2)]
    column_sums: list[list[float]] = [[] for _ in range(n2)]
    side1: list[CandidateList] = []
    for source, (ids, sums) in enumerate(
        _gamma_sparse_rows(edges, adjacency1, adjacency2)
    ):
        side1.append(_select_row(ids, sums, k, cut))
        for target, value in zip(ids, sums):
            column_ids[target].append(source)
            column_sums[target].append(value)
    side2 = [
        _select_row(ids, sums, k, cut)
        for ids, sums in zip(column_ids, column_sums)
    ]
    return side1, side2
