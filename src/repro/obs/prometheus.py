"""A dependency-free Prometheus text-exposition endpoint.

:func:`render_metrics` turns a :class:`~repro.obs.Recorder` snapshot
into the Prometheus text format (version 0.0.4): counters become
``<name>_total`` counter families, gauges map straight through, and the
recorder's bounded-window histograms are exposed as summaries with
``quantile`` labels plus ``_sum``/``_count`` (exact running totals).

:class:`MetricsServer` serves that rendering on ``GET /metrics`` from a
daemonized stdlib ``http.server`` thread -- no third-party client
library, no global registry.  The server reads the recorder through its
locked snapshot methods, so scraping a live pipeline or serving engine
is safe.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.recorder import Recorder

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
"""The Prometheus text-exposition content type."""

QUANTILES = (0.5, 0.95, 0.99)
"""Summary quantiles rendered per histogram (matches the snapshot)."""

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_START = re.compile(r"^[^a-zA-Z_:]")


def metric_name(name: str) -> str:
    """Sanitize a recorder metric name into a valid Prometheus name.

    Dots and other separators collapse to ``_`` (so
    ``serving.queries`` becomes ``serving_queries``); a leading digit
    gets a ``_`` prefix.
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if _INVALID_START.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _number(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return format(value, ".10g")


def render_metrics(recorder: Recorder) -> str:
    """The recorder's metrics in Prometheus text-exposition format.

    Counters gain the conventional ``_total`` suffix; histograms are
    exposed as summaries (their window-derived quantiles are point
    estimates, while ``_sum``/``_count`` are exact lifetime totals).
    """
    lines: list[str] = []
    for name, value in sorted(recorder.counters().items()):
        family = metric_name(name) + "_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_number(value)}")
    for name, value in sorted(recorder.gauges().items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_number(value)}")
    for name, snapshot in sorted(recorder.histograms().items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} summary")
        quantile_values = (snapshot.p50, snapshot.p95, snapshot.p99)
        for quantile, value in zip(QUANTILES, quantile_values):
            lines.append(
                f'{family}{{quantile="{_number(quantile)}"}} {_number(value)}'
            )
        lines.append(f"{family}_sum {_number(snapshot.total)}")
        lines.append(f"{family}_count {snapshot.count}")
    return "\n".join(lines) + ("\n" if lines else "")


class _MetricsHandler(BaseHTTPRequestHandler):
    # The bound recorder is attached per-server in MetricsServer.

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served here")
            return
        body = render_metrics(self.server.recorder).encode("utf-8")  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # scrapes must not pollute the serving process's stderr


class MetricsServer:
    """Serve ``GET /metrics`` for one recorder on a background thread.

    >>> recorder = Recorder()
    >>> recorder.count("serving.queries", 3)
    >>> with MetricsServer(recorder) as server:
    ...     url = f"http://127.0.0.1:{server.port}/metrics"

    Port 0 (the default) binds an ephemeral port, exposed as ``.port``
    after construction.  The thread is a daemon, so a forgotten server
    never blocks interpreter shutdown, but callers should still
    :meth:`close` (or use the context manager) to release the socket.
    """

    def __init__(self, recorder: Recorder, port: int = 0, host: str = "127.0.0.1"):
        self.recorder = recorder
        self._server = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._server.daemon_threads = True
        self._server.recorder = recorder  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-metrics-{self.port}",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MetricsServer(http://{self.host}:{self.port}/metrics)"
