"""Observability: nested spans, counters/gauges/histograms, exporters.

One :class:`Recorder` serves every layer of the stack (see
``docs/observability.md``):

* :meth:`Recorder.span` times a phase as a nested span -- the serial
  pipeline emits one span per Algorithm 1/2 phase, the parallel context
  one span per stage with per-partition children;
* :meth:`Recorder.count` / :meth:`Recorder.gauge` /
  :meth:`Recorder.observe` record metrics -- kernel dispatches, serving
  latency histograms, cache hit/miss counters, candidate-set sizes;
* :func:`to_json` / :func:`to_logfmt` / :func:`write_trace` export a
  consistent snapshot (the ``--trace`` CLI flag).

Recording is ambient by default: components resolve
:func:`current_recorder`, which is the no-op :data:`NULL_RECORDER`
until :func:`use_recorder` installs a real one, so the instrumented hot
paths cost nothing unless a trace was requested.
"""

from repro.obs.export import resilience_summary, to_json, to_logfmt, write_trace
from repro.obs.prometheus import MetricsServer, render_metrics
from repro.obs.provenance import ProvenanceRecord, ProvenanceSampler
from repro.obs.recorder import (
    NULL_RECORDER,
    HistogramSnapshot,
    NullRecorder,
    Recorder,
    RecorderSnapshot,
    Span,
    current_recorder,
    next_trace_id,
    peak_rss_kb,
    phase_span,
    use_recorder,
)

__all__ = [
    "HistogramSnapshot",
    "MetricsServer",
    "NULL_RECORDER",
    "NullRecorder",
    "ProvenanceRecord",
    "ProvenanceSampler",
    "Recorder",
    "RecorderSnapshot",
    "Span",
    "current_recorder",
    "next_trace_id",
    "peak_rss_kb",
    "phase_span",
    "render_metrics",
    "resilience_summary",
    "to_json",
    "to_logfmt",
    "use_recorder",
    "write_trace",
]
