"""Observability: nested spans, counters/gauges/histograms, exporters.

One :class:`Recorder` serves every layer of the stack (see
``docs/observability.md``):

* :meth:`Recorder.span` times a phase as a nested span -- the serial
  pipeline emits one span per Algorithm 1/2 phase, the parallel context
  one span per stage with per-partition children;
* :meth:`Recorder.count` / :meth:`Recorder.gauge` /
  :meth:`Recorder.observe` record metrics -- kernel dispatches, serving
  latency histograms, cache hit/miss counters, candidate-set sizes;
* :func:`to_json` / :func:`to_logfmt` / :func:`write_trace` export a
  consistent snapshot (the ``--trace`` CLI flag).

Recording is ambient by default: components resolve
:func:`current_recorder`, which is the no-op :data:`NULL_RECORDER`
until :func:`use_recorder` installs a real one, so the instrumented hot
paths cost nothing unless a trace was requested.
"""

from repro.obs.export import resilience_summary, to_json, to_logfmt, write_trace
from repro.obs.recorder import (
    NULL_RECORDER,
    HistogramSnapshot,
    NullRecorder,
    Recorder,
    Span,
    current_recorder,
    use_recorder,
)

__all__ = [
    "HistogramSnapshot",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "Span",
    "current_recorder",
    "resilience_summary",
    "to_json",
    "to_logfmt",
    "use_recorder",
    "write_trace",
]
