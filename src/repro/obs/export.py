"""Exporters: one consistent snapshot of a recorder, two formats.

``to_json`` produces the machine-readable trace consumed by
``--trace out.json`` (and asserted by CI's serving-smoke job);
``to_logfmt`` produces one ``key=value`` line per span/metric for
grepping and log shipping.  Both read the recorder through its locked
snapshot methods, so exporting while other threads record is safe.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.obs.recorder import Recorder

TRACE_FORMATS = ("json", "logfmt")
"""Accepted values of the ``--trace-format`` CLI flag."""

RESILIENCE_COUNTERS = (
    "retry.attempts",
    "stage.skipped",
    "deadline.expired",
    "breaker.trips",
    "serving.kernel_fallback",
    "serving.request_errors",
    "serving.degraded",
)
"""The resilience counters summarised by :func:`resilience_summary`
(always present there, zero when nothing fired -- see
``docs/resilience.md``)."""

_FAULT_PREFIX = "faults.injected."


def resilience_summary(recorder: Recorder) -> dict:
    """The recorder's resilience behaviour as one flat summary.

    Every :data:`RESILIENCE_COUNTERS` key is present (0.0 when it never
    fired), ``faults.injected`` maps each injection site to its fire
    count, and ``breaker.state`` carries the latest gauge value when a
    circuit breaker reported one.
    """
    counters = recorder.counters()
    summary: dict = {name: counters.get(name, 0.0) for name in RESILIENCE_COUNTERS}
    summary["faults.injected"] = {
        name[len(_FAULT_PREFIX):]: value
        for name, value in sorted(counters.items())
        if name.startswith(_FAULT_PREFIX)
    }
    gauges = recorder.gauges()
    if "breaker.state" in gauges:
        summary["breaker.state"] = gauges["breaker.state"]
    return summary


def trace_payload(recorder: Recorder) -> dict:
    """The exported trace as a plain dict (the JSON document)."""
    return {
        "trace_id": recorder.trace_id,
        "spans": [span.as_dict() for span in recorder.spans()],
        "counters": recorder.counters(),
        "gauges": recorder.gauges(),
        "histograms": {
            name: snapshot.as_dict()
            for name, snapshot in recorder.histograms().items()
        },
        "resilience": resilience_summary(recorder),
    }


def to_json(recorder: Recorder, indent: int | None = 2) -> str:
    """Serialise the recorder's snapshot as a JSON document."""
    return json.dumps(trace_payload(recorder), indent=indent, sort_keys=False)


_LOGFMT_UNSAFE = (" ", '"', "=", "\\", "\n", "\r", "\t")


def _logfmt_value(value: object) -> str:
    """Render one logfmt value, quoting whenever the raw text would be
    ambiguous to split back apart.

    Anything containing whitespace (including newlines/tabs), quotes,
    ``=``, or backslashes -- or the empty string -- is emitted as a JSON
    string literal, whose escapes round-trip through ``json.loads``.
    """
    if isinstance(value, float):
        return format(value, ".9g")
    text = str(value)
    if text == "" or any(ch in text for ch in _LOGFMT_UNSAFE):
        return json.dumps(text)
    return text


def _logfmt_line(kind: str, **fields: object) -> str:
    parts = [kind] + [
        f"{key}={_logfmt_value(value)}" for key, value in fields.items()
    ]
    return " ".join(parts)


def to_logfmt(recorder: Recorder) -> str:
    """One logfmt line per span, counter, gauge, and histogram.

    Span lines carry name/id/parent/depth/seconds/status plus any span
    attributes (prefixed ``attr.``); metric lines carry name and value
    (histograms expand their snapshot fields).
    """
    lines: list[str] = [_logfmt_line("trace", id=recorder.trace_id)]
    for span in recorder.spans():
        fields: dict[str, object] = {
            "name": span.name,
            "id": span.span_id,
            "parent": "" if span.parent_id is None else span.parent_id,
            "depth": span.depth,
            "start_s": span.start,
            "seconds": span.seconds,
            "status": span.status,
        }
        for key, value in span.attributes.items():
            fields[f"attr.{key}"] = value
        lines.append(_logfmt_line("span", **fields))
    for name, value in sorted(recorder.counters().items()):
        lines.append(_logfmt_line("counter", name=name, value=value))
    for name, value in sorted(recorder.gauges().items()):
        lines.append(_logfmt_line("gauge", name=name, value=value))
    for name, snapshot in sorted(recorder.histograms().items()):
        lines.append(_logfmt_line("histogram", name=name, **snapshot.as_dict()))
    summary = resilience_summary(recorder)
    fired = summary.pop("faults.injected")
    summary["faults.injected"] = sum(fired.values())
    lines.append(_logfmt_line("resilience", **summary))
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(
    recorder: Recorder, path: str | Path, format: str = "json"
) -> None:
    """Write the recorder's snapshot to ``path`` in the given format.

    The conventional path ``-`` writes to stderr instead of a file, so
    smoke runs can capture a trace without a temp file (stderr, not
    stdout, because ``serve`` owns stdout for JSONL responses).
    """
    if format not in TRACE_FORMATS:
        raise ValueError(
            f"trace format must be one of {TRACE_FORMATS}, got {format!r}"
        )
    text = to_json(recorder) + "\n" if format == "json" else to_logfmt(recorder)
    if str(path) == "-":
        sys.stderr.write(text)
        sys.stderr.flush()
        return
    Path(path).write_text(text, encoding="utf-8")
