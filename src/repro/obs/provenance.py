"""Per-query decision provenance for the serving engine.

A :class:`ProvenanceRecord` is the compact audit trail of one match
decision -- which rule fired, what kind of evidence backed it, how big
the candidate set was, and the top candidate scores -- small enough to
ship on the wire next to the decision itself.  Records are attached to
a fraction of queries chosen by :class:`ProvenanceSampler`, a
deterministic systematic sampler (no RNG, so replayed request streams
sample the same queries).

Evidence naming follows the MinoanER rules (EDBT 2019 §4.4): R1 is the
name-evidence heuristic, R2 picks the top value-similarity candidate,
R3 rank-aggregates value and neighbor evidence, and R4 is the
reciprocity filter applied on top.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any

RULE_EVIDENCE = {
    "R1": "name",
    "R2": "value",
    "R3": "value+neighbor",
    "R4": "reciprocity",
}
"""Which evidence class each MinoanER rule draws on."""


def _wire_score(score: float) -> float | None:
    return None if not math.isfinite(score) else score


@dataclass(frozen=True)
class ProvenanceRecord:
    """The audit trail of one serving decision.

    ``top_scores`` holds up to the three best ``(kb2_id, score)``
    candidates considered (R1 name hits have none -- name evidence is
    not scored).  ``degraded``/``cached``/``batched`` mark how the
    answer was produced, mirroring the decision's own flags.
    ``generation`` is the index generation the answer was computed
    against (0 for a frozen index; live indexes bump it on every
    mutation and swap -- see ``docs/live_index.md``), so an audit can
    tell exactly which index state produced any sampled decision.
    """

    trace_id: str
    query_uri: str
    rule: str | None
    evidence: str | None
    candidates: int
    top_scores: tuple[tuple[int, float], ...] = ()
    degraded: bool = False
    cached: bool = False
    batched: bool = False
    generation: int = 0

    def to_json(self) -> dict[str, Any]:
        """JSON-ready view (non-finite scores become ``null``)."""
        return {
            "trace_id": self.trace_id,
            "query_uri": self.query_uri,
            "rule": self.rule,
            "evidence": self.evidence,
            "candidates": self.candidates,
            "top_scores": [
                [kb2_id, _wire_score(score)] for kb2_id, score in self.top_scores
            ],
            "degraded": self.degraded,
            "cached": self.cached,
            "batched": self.batched,
            "generation": self.generation,
        }

    @classmethod
    def from_explanation(cls, explanation: Any, trace_id: str = "") -> "ProvenanceRecord":
        """Build a record from a :class:`repro.core.explain.MatchExplanation`.

        Bridges offline audits (``explain_pair`` over a batch result)
        into the same record shape the serving engine emits, so both
        paths feed one provenance pipeline.
        """
        # Imported lazily: core.pipeline imports repro.obs, so a
        # top-level import here would be circular.
        from repro.core.explain import MatchExplanation

        if not isinstance(explanation, MatchExplanation):
            raise TypeError(
                f"expected MatchExplanation, got {type(explanation).__name__}"
            )
        rule = explanation.rule if explanation.matched else None
        return cls(
            trace_id=trace_id,
            query_uri=explanation.uri1,
            rule=rule,
            evidence=RULE_EVIDENCE.get(rule or ""),
            candidates=len(explanation.shared_tokens),
            top_scores=(),
        )


class ProvenanceSampler:
    """Deterministic systematic sampler: query ``n`` is sampled iff
    ``floor(n * rate)`` advanced past ``floor((n - 1) * rate)``.

    This spreads sampled queries evenly through the stream (exactly
    ``round(n * rate)`` of the first ``n`` queries, ±1) and is fully
    reproducible -- no randomness, so two replays of the same request
    file sample identical queries.  Thread-safe: the sequence number is
    allocated under a lock, which also makes it the engine's per-query
    sequence counter.
    """

    def __init__(self, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate!r}")
        self.rate = float(rate)
        self._lock = threading.Lock()
        self._seen = 0

    def next(self) -> tuple[int, bool]:
        """Allocate the next query sequence number and decide sampling.

        Returns ``(seq, sampled)`` where ``seq`` counts from 1.
        """
        with self._lock:
            self._seen += 1
            n = self._seen
        if self.rate <= 0.0:
            return n, False
        sampled = math.floor(n * self.rate) > math.floor((n - 1) * self.rate)
        return n, sampled

    def __repr__(self) -> str:
        return f"ProvenanceSampler(rate={self.rate}, seen={self._seen})"
