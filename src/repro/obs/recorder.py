"""The in-memory trace recorder: spans, counters, gauges, histograms.

All wall-clock quantities come from :func:`time.perf_counter` (the
monotonic high-resolution clock), never from ``time.time``; span starts
are reported relative to the recorder's creation so exported traces are
self-contained.

Thread safety: one :class:`Recorder` may be shared by every thread of a
process.  Finished spans and metrics are guarded by a single lock; the
*active* span stack is thread-local, so spans nest per thread and
concurrent threads never corrupt each other's parentage.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

DEFAULT_HISTOGRAM_WINDOW = 2048
"""Recent observations kept per histogram for the percentile snapshot."""

_TRACE_IDS = itertools.count(1)


def next_trace_id() -> str:
    """A deterministic process-local trace id (``trace-000001``, ...).

    Deliberately not random: repeated runs of the same pipeline produce
    the same ids, so traces stay diffable.  Worker processes never mint
    ids of their own -- they inherit the driver's id through
    :class:`RecorderSnapshot` merging, which is what keeps one logical
    trace contiguous across process boundaries.
    """
    return f"trace-{next(_TRACE_IDS):06d}"


@dataclass
class Span:
    """One timed unit of work, possibly nested under a parent span.

    ``start`` is seconds since the recorder's epoch (its creation);
    ``seconds`` is the span's duration, written when the span finishes.
    ``status`` is ``"ok"`` unless the spanned block raised, then
    ``"error"``.
    """

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    start: float
    seconds: float = 0.0
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view of the span."""
        payload: dict[str, Any] = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start_s": round(self.start, 9),
            "seconds": round(self.seconds, 9),
            "status": self.status,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload


@dataclass(frozen=True)
class HistogramSnapshot:
    """Point-in-time summary of one histogram.

    ``count``/``total``/``minimum``/``maximum`` cover every observation
    ever made; the percentiles cover the most recent window (bounded so
    long-running processes stay bounded in memory).
    """

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 if empty)."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class _Histogram:
    """Running count/total/min/max plus a bounded percentile window."""

    __slots__ = ("count", "total", "minimum", "maximum", "window")

    def __init__(self, window: int):
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0
        self.window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.minimum = self.maximum = value
        else:
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
        self.count += 1
        self.total += value
        self.window.append(value)

    def snapshot(self) -> HistogramSnapshot:
        ordered = sorted(self.window)
        return HistogramSnapshot(
            count=self.count,
            total=self.total,
            minimum=self.minimum,
            maximum=self.maximum,
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
        )


@dataclass(frozen=True)
class RecorderSnapshot:
    """A picklable, immutable copy of one recorder's state.

    This is the unit of cross-process trace propagation: a worker
    records into its own child :class:`Recorder`, snapshots it, and the
    snapshot rides back with the partition result to be
    :meth:`Recorder.merge`-d into the driver's trace.  Everything in it
    is plain data (tuples, dicts, :class:`Span` dataclasses), so it
    pickles across a process pool without dragging locks along.

    ``duration_s`` is the child's elapsed lifetime at snapshot time --
    the driver uses it to rebase child start times when no parent span
    is given.  Histogram state is ``(count, total, min, max, window)``.
    """

    trace_id: str
    duration_s: float
    spans: tuple[Span, ...]
    counters: dict[str, float]
    gauges: dict[str, float]
    gauge_times: dict[str, float]
    histograms: dict[str, tuple[int, float, float, float, tuple[float, ...]]]


class Recorder:
    """Thread-safe in-memory collector of spans and metrics.

    >>> recorder = Recorder()
    >>> with recorder.span("outer"):
    ...     with recorder.span("inner"):
    ...         recorder.count("work.items", 3)
    >>> [span.name for span in recorder.spans()]
    ['inner', 'outer']
    >>> recorder.counter_value("work.items")
    3.0
    """

    def __init__(
        self,
        histogram_window: int = DEFAULT_HISTOGRAM_WINDOW,
        trace_id: str | None = None,
    ):
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._finished: list[Span] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._gauge_times: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}
        self._histogram_window = histogram_window
        self._active = threading.local()
        self.trace_id = trace_id if trace_id is not None else next_trace_id()

    def _elapsed(self) -> float:
        return time.perf_counter() - self._epoch

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._active, "stack", None)
        if stack is None:
            stack = self._active.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Time the enclosed block as a span nested under the thread's
        currently open span.

        The yielded :class:`Span` carries its duration in ``seconds``
        after the block exits, so callers may derive timing views from
        it directly.  An exception marks the span ``status = "error"``
        and propagates.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent.span_id if parent else None,
            depth=parent.depth + 1 if parent else 0,
            start=time.perf_counter() - self._epoch,
            attributes=dict(attributes),
        )
        stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.seconds = (time.perf_counter() - self._epoch) - span.start
            stack.pop()
            self._retain(span)

    def record_span(
        self,
        name: str,
        seconds: float,
        parent: Span | None = None,
        status: str = "ok",
        **attributes: Any,
    ) -> Span:
        """Record an already-measured span (e.g. a partition timed
        inside a worker process) under an explicit ``parent``."""
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent.span_id if parent else None,
            depth=parent.depth + 1 if parent else 0,
            start=max(0.0, (time.perf_counter() - self._epoch) - seconds),
            seconds=seconds,
            status=status,
            attributes=dict(attributes),
        )
        self._retain(span)
        return span

    def _retain(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    def spans(self) -> list[Span]:
        """Finished spans, in finish order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def span_names(self) -> set[str]:
        with self._lock:
            return {span.name for span in self._finished}

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the named monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value (last write wins).

        The write time (seconds since the recorder's epoch) is kept
        alongside the value so :meth:`merge` can arbitrate last-write-
        wins against worker gauges on the rebased time axis.
        """
        with self._lock:
            self._gauges[name] = float(value)
            self._gauge_times[name] = self._elapsed()

    def observe(self, name: str, value: float) -> None:
        """Add one observation to the named histogram."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram(self._histogram_window)
            histogram.observe(value)

    def histogram(self, name: str) -> HistogramSnapshot:
        """Snapshot of one histogram (all zeros when never observed)."""
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.snapshot() if histogram else HistogramSnapshot()

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histograms(self) -> dict[str, HistogramSnapshot]:
        with self._lock:
            return {name: h.snapshot() for name, h in self._histograms.items()}

    def reset(self) -> None:
        """Drop every finished span and metric (open spans unaffected)."""
        with self._lock:
            self._finished.clear()
            self._counters.clear()
            self._gauges.clear()
            self._gauge_times.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # Cross-process propagation
    # ------------------------------------------------------------------
    def snapshot(self) -> RecorderSnapshot:
        """A picklable, self-contained copy of everything recorded.

        Worker processes return one of these alongside their partition
        result; the driver folds it back in with :meth:`merge`.  Spans
        are copied (the snapshot never aliases live span objects) and
        histograms are flattened to plain tuples.
        """
        with self._lock:
            duration = self._elapsed()
            spans = tuple(
                Span(
                    name=span.name,
                    span_id=span.span_id,
                    parent_id=span.parent_id,
                    depth=span.depth,
                    start=span.start,
                    seconds=span.seconds,
                    status=span.status,
                    attributes=dict(span.attributes),
                )
                for span in self._finished
            )
            histograms = {
                name: (
                    h.count,
                    h.total,
                    h.minimum,
                    h.maximum,
                    tuple(h.window),
                )
                for name, h in self._histograms.items()
            }
            return RecorderSnapshot(
                trace_id=self.trace_id,
                duration_s=duration,
                spans=spans,
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                gauge_times=dict(self._gauge_times),
                histograms=histograms,
            )

    def merge(
        self,
        snapshot: RecorderSnapshot,
        parent_span: Span | None = None,
        offset_s: float | None = None,
    ) -> list[Span]:
        """Fold a child recorder's snapshot into this recorder.

        Spans are renumbered into this recorder's id space (internal
        parentage preserved), grafted under ``parent_span`` (their roots
        become its children), and rebased onto this recorder's time
        axis: child start times are shifted by ``offset_s``, which
        defaults to ``parent_span.start`` -- the moment the owning
        partition began -- or, lacking both, to "it ended just now".

        Metrics merge by kind: counters sum, histograms combine exact
        ``count/total/min/max`` (windows concatenate, still bounded),
        and gauges are last-write-wins arbitrated by write time on the
        rebased axis.  The whole fold happens under one lock
        acquisition, so concurrent merges and live spans interleave
        safely.

        Returns the merged spans (new objects owned by this recorder).
        """
        base_depth = parent_span.depth + 1 if parent_span is not None else 0
        base_parent = parent_span.span_id if parent_span is not None else None
        with self._lock:
            if offset_s is None:
                if parent_span is not None:
                    offset_s = parent_span.start
                else:
                    offset_s = max(0.0, self._elapsed() - snapshot.duration_s)
            id_map: dict[int, int] = {}
            merged: list[Span] = []
            for span in snapshot.spans:
                self._next_id += 1
                id_map[span.span_id] = self._next_id
            for span in snapshot.spans:
                parent_id = (
                    id_map[span.parent_id]
                    if span.parent_id in id_map
                    else base_parent
                )
                copied = Span(
                    name=span.name,
                    span_id=id_map[span.span_id],
                    parent_id=parent_id,
                    depth=span.depth + base_depth,
                    start=offset_s + span.start,
                    seconds=span.seconds,
                    status=span.status,
                    attributes=dict(span.attributes),
                )
                merged.append(copied)
                self._finished.append(copied)
            for name, amount in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + amount
            for name, value in snapshot.gauges.items():
                child_time = offset_s + snapshot.gauge_times.get(name, 0.0)
                if child_time >= self._gauge_times.get(name, float("-inf")):
                    self._gauges[name] = value
                    self._gauge_times[name] = child_time
            for name, state in snapshot.histograms.items():
                count, total, minimum, maximum, window = state
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = _Histogram(
                        self._histogram_window
                    )
                if count:
                    if histogram.count == 0:
                        histogram.minimum = minimum
                        histogram.maximum = maximum
                    else:
                        histogram.minimum = min(histogram.minimum, minimum)
                        histogram.maximum = max(histogram.maximum, maximum)
                    histogram.count += count
                    histogram.total += total
                    histogram.window.extend(window)
            return merged

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Recorder(spans={len(self._finished)}, "
                f"counters={len(self._counters)}, "
                f"histograms={len(self._histograms)})"
            )


class NullRecorder(Recorder):
    """A recorder that times spans but retains nothing.

    :meth:`span` still measures durations into the yielded
    :class:`Span` -- callers derive their timing views (e.g.
    ``ResolutionResult.timings``) from span objects whether or not a
    trace is being collected -- but no span or metric is stored, so the
    instrumented paths stay allocation- and lock-free when tracing is
    off.
    """

    def __init__(self, histogram_window: int = DEFAULT_HISTOGRAM_WINDOW):
        super().__init__(histogram_window=histogram_window, trace_id="")

    def _retain(self, span: Span) -> None:  # noqa: D102 - no storage
        pass

    def _allocate_id(self) -> int:
        return 0

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge(
        self,
        snapshot: RecorderSnapshot,
        parent_span: Span | None = None,
        offset_s: float | None = None,
    ) -> list[Span]:
        return []

    def __repr__(self) -> str:
        return "NullRecorder()"


NULL_RECORDER = NullRecorder()
"""Shared no-op recorder: the ambient default when tracing is off."""

_CURRENT: ContextVar[Recorder | None] = ContextVar("repro_obs_recorder", default=None)


def current_recorder() -> Recorder:
    """The ambient recorder installed by :func:`use_recorder`, or
    :data:`NULL_RECORDER` when none is active."""
    return _CURRENT.get() or NULL_RECORDER


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the ambient recorder for the block.

    Instrumented components (pipelines, parallel stages, kernels,
    serving engines created inside the block) resolve
    :func:`current_recorder` and record into it.  Nesting restores the
    previous recorder on exit.
    """
    token = _CURRENT.set(recorder)
    try:
        yield recorder
    finally:
        _CURRENT.reset(token)


def peak_rss_kb() -> float | None:
    """This process's peak resident set size in KiB, or ``None`` where
    the ``resource`` module is unavailable (non-POSIX platforms)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only guard
        return None
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@contextmanager
def phase_span(recorder: Recorder, name: str, **attributes: Any) -> Iterator[Span]:
    """A pipeline-phase span that also reports CPU time and peak RSS.

    Wraps :meth:`Recorder.span` and, on exit, stamps the span with
    ``cpu_s`` (the phase's ``time.process_time`` delta -- CPU seconds
    across all threads, unlike the span's wall-clock ``seconds``) and
    ``peak_rss_kb``, mirrored as ``phase.<name>.cpu_seconds`` /
    ``phase.<name>.peak_rss_kb`` gauges so the metrics endpoint can
    expose them without walking spans.  Peak RSS is a process-lifetime
    high-water mark, not a per-phase delta.
    """
    cpu_start = time.process_time()
    with recorder.span(name, **attributes) as span:
        try:
            yield span
        finally:
            cpu_s = round(time.process_time() - cpu_start, 9)
            span.attributes["cpu_s"] = cpu_s
            recorder.gauge(f"phase.{name}.cpu_seconds", cpu_s)
            rss = peak_rss_kb()
            if rss is not None:
                span.attributes["peak_rss_kb"] = rss
                recorder.gauge(f"phase.{name}.peak_rss_kb", rss)
