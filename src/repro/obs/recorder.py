"""The in-memory trace recorder: spans, counters, gauges, histograms.

All wall-clock quantities come from :func:`time.perf_counter` (the
monotonic high-resolution clock), never from ``time.time``; span starts
are reported relative to the recorder's creation so exported traces are
self-contained.

Thread safety: one :class:`Recorder` may be shared by every thread of a
process.  Finished spans and metrics are guarded by a single lock; the
*active* span stack is thread-local, so spans nest per thread and
concurrent threads never corrupt each other's parentage.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

DEFAULT_HISTOGRAM_WINDOW = 2048
"""Recent observations kept per histogram for the percentile snapshot."""


@dataclass
class Span:
    """One timed unit of work, possibly nested under a parent span.

    ``start`` is seconds since the recorder's epoch (its creation);
    ``seconds`` is the span's duration, written when the span finishes.
    ``status`` is ``"ok"`` unless the spanned block raised, then
    ``"error"``.
    """

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    start: float
    seconds: float = 0.0
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view of the span."""
        payload: dict[str, Any] = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start_s": round(self.start, 9),
            "seconds": round(self.seconds, 9),
            "status": self.status,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload


@dataclass(frozen=True)
class HistogramSnapshot:
    """Point-in-time summary of one histogram.

    ``count``/``total``/``minimum``/``maximum`` cover every observation
    ever made; the percentiles cover the most recent window (bounded so
    long-running processes stay bounded in memory).
    """

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 if empty)."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class _Histogram:
    """Running count/total/min/max plus a bounded percentile window."""

    __slots__ = ("count", "total", "minimum", "maximum", "window")

    def __init__(self, window: int):
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0
        self.window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.minimum = self.maximum = value
        else:
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
        self.count += 1
        self.total += value
        self.window.append(value)

    def snapshot(self) -> HistogramSnapshot:
        ordered = sorted(self.window)
        return HistogramSnapshot(
            count=self.count,
            total=self.total,
            minimum=self.minimum,
            maximum=self.maximum,
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
        )


class Recorder:
    """Thread-safe in-memory collector of spans and metrics.

    >>> recorder = Recorder()
    >>> with recorder.span("outer"):
    ...     with recorder.span("inner"):
    ...         recorder.count("work.items", 3)
    >>> [span.name for span in recorder.spans()]
    ['inner', 'outer']
    >>> recorder.counter_value("work.items")
    3.0
    """

    def __init__(self, histogram_window: int = DEFAULT_HISTOGRAM_WINDOW):
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._finished: list[Span] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}
        self._histogram_window = histogram_window
        self._active = threading.local()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._active, "stack", None)
        if stack is None:
            stack = self._active.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Time the enclosed block as a span nested under the thread's
        currently open span.

        The yielded :class:`Span` carries its duration in ``seconds``
        after the block exits, so callers may derive timing views from
        it directly.  An exception marks the span ``status = "error"``
        and propagates.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent.span_id if parent else None,
            depth=parent.depth + 1 if parent else 0,
            start=time.perf_counter() - self._epoch,
            attributes=dict(attributes),
        )
        stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.seconds = (time.perf_counter() - self._epoch) - span.start
            stack.pop()
            self._retain(span)

    def record_span(
        self,
        name: str,
        seconds: float,
        parent: Span | None = None,
        status: str = "ok",
        **attributes: Any,
    ) -> Span:
        """Record an already-measured span (e.g. a partition timed
        inside a worker process) under an explicit ``parent``."""
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent.span_id if parent else None,
            depth=parent.depth + 1 if parent else 0,
            start=max(0.0, (time.perf_counter() - self._epoch) - seconds),
            seconds=seconds,
            status=status,
            attributes=dict(attributes),
        )
        self._retain(span)
        return span

    def _retain(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    def spans(self) -> list[Span]:
        """Finished spans, in finish order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def span_names(self) -> set[str]:
        with self._lock:
            return {span.name for span in self._finished}

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the named monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to the named histogram."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram(self._histogram_window)
            histogram.observe(value)

    def histogram(self, name: str) -> HistogramSnapshot:
        """Snapshot of one histogram (all zeros when never observed)."""
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.snapshot() if histogram else HistogramSnapshot()

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histograms(self) -> dict[str, HistogramSnapshot]:
        with self._lock:
            return {name: h.snapshot() for name, h in self._histograms.items()}

    def reset(self) -> None:
        """Drop every finished span and metric (open spans unaffected)."""
        with self._lock:
            self._finished.clear()
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Recorder(spans={len(self._finished)}, "
                f"counters={len(self._counters)}, "
                f"histograms={len(self._histograms)})"
            )


class NullRecorder(Recorder):
    """A recorder that times spans but retains nothing.

    :meth:`span` still measures durations into the yielded
    :class:`Span` -- callers derive their timing views (e.g.
    ``ResolutionResult.timings``) from span objects whether or not a
    trace is being collected -- but no span or metric is stored, so the
    instrumented paths stay allocation- and lock-free when tracing is
    off.
    """

    def _retain(self, span: Span) -> None:  # noqa: D102 - no storage
        pass

    def _allocate_id(self) -> int:
        return 0

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def __repr__(self) -> str:
        return "NullRecorder()"


NULL_RECORDER = NullRecorder()
"""Shared no-op recorder: the ambient default when tracing is off."""

_CURRENT: ContextVar[Recorder | None] = ContextVar("repro_obs_recorder", default=None)


def current_recorder() -> Recorder:
    """The ambient recorder installed by :func:`use_recorder`, or
    :data:`NULL_RECORDER` when none is active."""
    return _CURRENT.get() or NULL_RECORDER


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the ambient recorder for the block.

    Instrumented components (pipelines, parallel stages, kernels,
    serving engines created inside the block) resolve
    :func:`current_recorder` and record into it.  Nesting restores the
    previous recorder on exit.
    """
    token = _CURRENT.set(recorder)
    try:
        yield recorder
    finally:
        _CURRENT.reset(token)
