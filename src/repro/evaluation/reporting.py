"""Paper-style rendering of experiment results.

Each ``format_*`` function takes the result objects of
:mod:`repro.evaluation.experiments` for one or more datasets and
returns a plain-text table shaped like the corresponding table/figure
of the paper.  Everything returns strings (callers decide where to
print), and all numbers follow the paper's conventions (percentages for
quality metrics, scientific notation for comparison counts).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.evaluation.experiments import (
    BlockStatistics,
    ComparisonResult,
    DatasetStatistics,
    RuleAblation,
    ScalabilityResult,
    SensitivityResult,
    SimilarityDistribution,
)


def _row(label: str, cells: Iterable[str], width: int = 14) -> str:
    return f"{label:24s}" + "".join(f"{cell:>{width}}" for cell in cells)


def format_dataset_statistics(columns: Sequence[DatasetStatistics]) -> str:
    """Render Table 1: dataset statistics, one column per KB pair."""
    lines = ["Table 1: Dataset statistics", ""]
    lines.append(_row("", (c.name for c in columns)))
    lines.append(_row("E1 entities", (f"{c.entities1:,}" for c in columns)))
    lines.append(_row("E2 entities", (f"{c.entities2:,}" for c in columns)))
    lines.append(_row("E1 triples", (f"{c.triples1:,}" for c in columns)))
    lines.append(_row("E2 triples", (f"{c.triples2:,}" for c in columns)))
    lines.append(_row("E1 av. tokens", (f"{c.avg_tokens1:.2f}" for c in columns)))
    lines.append(_row("E2 av. tokens", (f"{c.avg_tokens2:.2f}" for c in columns)))
    lines.append(
        _row("E1/E2 attributes", (f"{c.attributes1} / {c.attributes2}" for c in columns))
    )
    lines.append(
        _row("E1/E2 relations", (f"{c.relations1} / {c.relations2}" for c in columns))
    )
    lines.append(_row("E1/E2 types", (f"{c.types1} / {c.types2}" for c in columns)))
    lines.append(
        _row("E1/E2 vocab.", (f"{c.vocabularies1} / {c.vocabularies2}" for c in columns))
    )
    lines.append(_row("Matches", (f"{c.matches:,}" for c in columns)))
    return "\n".join(lines)


def format_similarity_distribution(columns: Sequence[SimilarityDistribution]) -> str:
    """Render Figure 2 as per-dataset summary rows plus a text histogram."""
    lines = ["Figure 2: Value and neighbor similarity distribution of matches", ""]
    lines.append(_row("", (c.name for c in columns)))
    lines.append(_row("matches plotted", (str(len(c.points)) for c in columns)))
    lines.append(
        _row("strongly similar", (str(c.strongly_similar) for c in columns))
    )
    lines.append(_row("nearly similar", (str(c.nearly_similar) for c in columns)))
    lines.append(
        _row(
            "nearly w/ high nbr",
            (str(c.high_neighbor) for c in columns),
        )
    )
    lines.append("")
    for column in columns:
        lines.append(
            f"{column.name}: matches by value similarity (x) and "
            "neighbor similarity (y)"
        )
        lines.append(_scatter(column.points))
        lines.append(f"{column.name}: value-similarity histogram of matches")
        lines.append(_histogram((v for v, _ in column.points)))
        lines.append("")
    return "\n".join(lines)


def _scatter(points: Sequence[tuple[float, float]], size: int = 20) -> str:
    """An ASCII rendition of the Figure 2 scatter (density per cell)."""
    grid = [[0] * size for _ in range(size)]
    for x, y in points:
        column = min(size - 1, int(x * size))
        row = min(size - 1, int(y * size))
        grid[row][column] += 1
    peak = max((max(row) for row in grid), default=0)
    shades = " .:+*#"
    lines = []
    for row_index in range(size - 1, -1, -1):
        cells = []
        for count in grid[row_index]:
            if count == 0:
                cells.append(" ")
            else:
                level = 1 + min(
                    len(shades) - 2, int((len(shades) - 2) * count / max(peak, 1))
                )
                cells.append(shades[level])
        label = "1.0" if row_index == size - 1 else ("0.0" if row_index == 0 else "   ")
        lines.append(f"  {label} |{''.join(cells)}|")
    lines.append("       0.0" + " " * (size - 6) + "1.0")
    return "\n".join(lines)


def _histogram(values: Iterable[float], bins: int = 10, width: int = 40) -> str:
    counts = [0] * bins
    total = 0
    for value in values:
        index = min(bins - 1, int(value * bins))
        counts[index] += 1
        total += 1
    if total == 0:
        return "  (no data)"
    peak = max(counts)
    lines = []
    for index, count in enumerate(counts):
        low, high = index / bins, (index + 1) / bins
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"  [{low:.1f},{high:.1f}) {count:5d} {bar}")
    return "\n".join(lines)


def format_block_statistics(columns: Sequence[BlockStatistics]) -> str:
    """Render Table 2: block statistics."""
    lines = ["Table 2: Block statistics", ""]
    lines.append(_row("", (c.name for c in columns)))
    lines.append(_row("|BN|", (f"{c.name_blocks:,}" for c in columns)))
    lines.append(_row("|BT|", (f"{c.token_blocks:,}" for c in columns)))
    lines.append(_row("||BN||", (f"{c.name_comparisons:.2e}" for c in columns)))
    lines.append(_row("||BT||", (f"{c.token_comparisons:.2e}" for c in columns)))
    lines.append(_row("|E1|x|E2|", (f"{c.cartesian:.2e}" for c in columns)))
    lines.append(
        _row("Precision (%)", (f"{c.report.precision * 100:.2f}" for c in columns))
    )
    lines.append(_row("Recall (%)", (f"{c.report.recall * 100:.2f}" for c in columns)))
    lines.append(_row("F1 (%)", (f"{c.report.f1 * 100:.2f}" for c in columns)))
    return "\n".join(lines)


def format_comparison(columns: Sequence[ComparisonResult]) -> str:
    """Render Table 3: each system's P/R/F1 per dataset."""
    systems: list[str] = []
    for column in columns:
        for system in column.reports:
            if system not in systems:
                systems.append(system)
    lines = ["Table 3: MinoanER versus baselines", ""]
    lines.append(_row("", (c.name for c in columns)))
    for system in systems:
        for metric, getter in (
            ("Prec.", lambda r: r.precision),
            ("Recall", lambda r: r.recall),
            ("F1", lambda r: r.f1),
        ):
            cells = []
            for column in columns:
                report = column.reports.get(system)
                cells.append(f"{getter(report) * 100:.2f}" if report else "-")
            lines.append(_row(f"{system} {metric}", cells))
        lines.append("")
    notes = [
        f"  {column.name}: BSL best config = {column.details['BSL']}"
        for column in columns
        if "BSL" in column.details
    ]
    if notes:
        lines.append("BSL grid-search winners:")
        lines.extend(notes)
    return "\n".join(lines)


def format_rule_ablation(columns: Sequence[RuleAblation]) -> str:
    """Render Table 4: per-rule quality."""
    variants: list[str] = []
    for column in columns:
        for variant in column.reports:
            if variant not in variants:
                variants.append(variant)
    lines = ["Table 4: Evaluation of matching rules", ""]
    lines.append(_row("", (c.name for c in columns)))
    for variant in variants:
        for metric, getter in (
            ("Prec.", lambda r: r.precision),
            ("Recall", lambda r: r.recall),
            ("F1", lambda r: r.f1),
        ):
            cells = []
            for column in columns:
                report = column.reports.get(variant)
                cells.append(f"{getter(report) * 100:.2f}" if report else "-")
            lines.append(_row(f"[{variant}] {metric}", cells))
        lines.append("")
    return "\n".join(lines)


def format_sensitivity(results: Sequence[SensitivityResult]) -> str:
    """Render Figure 5: F1 as each parameter varies (one block per curve)."""
    lines = ["Figure 5: Sensitivity analysis (F1 % as one parameter varies)", ""]
    by_parameter: dict[str, list[SensitivityResult]] = {}
    for result in results:
        by_parameter.setdefault(result.parameter, []).append(result)
    for parameter, curves in by_parameter.items():
        lines.append(f"-- {parameter} --")
        values = curves[0].values
        lines.append(_row("dataset \\ value", (str(v) for v in values), width=9))
        for curve in curves:
            lines.append(
                _row(curve.name, (f"{f1 * 100:.1f}" for f1 in curve.f1_scores), width=9)
            )
        lines.append("")
    return "\n".join(lines)


def format_scalability(results: Sequence[ScalabilityResult]) -> str:
    """Render Figure 6: run time and speedup versus workers."""
    lines = ["Figure 6: Scalability of matching (time and speedup vs workers)", ""]
    for result in results:
        lines.append(f"-- {result.name} (backend={result.backend}, matches={result.matches}) --")
        lines.append(
            _row("workers", (str(p.workers) for p in result.points), width=10)
        )
        lines.append(
            _row("time (s)", (f"{p.total_seconds:.2f}" for p in result.points), width=10)
        )
        lines.append(
            _row("speedup", (f"{p.speedup:.2f}" for p in result.points), width=10)
        )
        lines.append(
            _row(
                "matching (s)",
                (f"{p.matching_seconds:.2f}" for p in result.points),
                width=10,
            )
        )
        lines.append(f"matching share of total: {result.matching_share() * 100:.0f}%")
        lines.append("")
    return "\n".join(lines)
