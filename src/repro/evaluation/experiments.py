"""Experiment drivers: one function per table/figure of the paper.

Each driver takes a :class:`~repro.datasets.generator.KBPair` (plus
configuration) and returns a plain dataclass with the numbers the
corresponding table or figure reports.  The benchmark harness under
``benchmarks/`` and the formatting helpers in
:mod:`repro.evaluation.reporting` are thin wrappers around these.

| Paper artifact | Driver |
|----------------|--------|
| Table 1 (dataset statistics)        | :func:`dataset_statistics` |
| Figure 2 (similarity distribution)  | :func:`similarity_distribution` |
| Table 2 (block statistics)          | :func:`block_statistics` |
| Table 3 (comparison to baselines)   | :func:`comparison` |
| Table 4 (matching-rule evaluation)  | :func:`rule_ablation` |
| Figure 5 (sensitivity analysis)     | :func:`sensitivity` |
| Figure 6 (scalability)              | :func:`scalability` |
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.bsl import BSLBaseline
from repro.baselines.paris import ParisBaseline, ParisConfig
from repro.baselines.sigma import SigmaBaseline, SigmaConfig
from repro.blocking.metrics import BlockingReport, evaluate_blocks
from repro.core.config import MinoanERConfig
from repro.core.pipeline import MinoanER
from repro.datasets.generator import KBPair
from repro.evaluation.metrics import MatchingReport, evaluate_matches
from repro.kb.statistics import KBStatistics
from repro.parallel.context import ParallelContext
from repro.parallel.pipeline import ParallelMinoanER
from repro.similarity.neighbor import max_neighbor_value_similarity
from repro.similarity.value import normalized_value_similarity


# ----------------------------------------------------------------------
# Table 1: dataset statistics
# ----------------------------------------------------------------------


@dataclass
class DatasetStatistics:
    """One Table 1 column: the technical characteristics of a KB pair."""

    name: str
    entities1: int
    entities2: int
    triples1: int
    triples2: int
    avg_tokens1: float
    avg_tokens2: float
    attributes1: int
    attributes2: int
    relations1: int
    relations2: int
    types1: int
    types2: int
    vocabularies1: int
    vocabularies2: int
    matches: int


def _count_types(kb) -> int:
    """Distinct values of ``*type``-named attributes (footnote 8 analogue)."""
    values: set[str] = set()
    for entity in kb.entities:
        for attribute, value in entity.pairs:
            if attribute.endswith("type"):
                values.add(value)
    return len(values)


def _count_vocabularies(kb) -> int:
    """Distinct attribute-name prefixes (the ``voc:`` namespace)."""
    prefixes = {
        attribute.split(":", 1)[0]
        for attribute in kb.attribute_names()
        if ":" in attribute
    }
    return max(1, len(prefixes))


def dataset_statistics(pair: KBPair) -> DatasetStatistics:
    """Compute the Table 1 row for a KB pair."""
    kb1, kb2 = pair.kb1, pair.kb2
    return DatasetStatistics(
        name=pair.name,
        entities1=len(kb1),
        entities2=len(kb2),
        triples1=kb1.triple_count(),
        triples2=kb2.triple_count(),
        avg_tokens1=kb1.average_tokens_per_entity(),
        avg_tokens2=kb2.average_tokens_per_entity(),
        attributes1=len(kb1.attribute_names()),
        attributes2=len(kb2.attribute_names()),
        relations1=len(kb1.relation_names()),
        relations2=len(kb2.relation_names()),
        types1=_count_types(kb1),
        types2=_count_types(kb2),
        vocabularies1=_count_vocabularies(kb1),
        vocabularies2=_count_vocabularies(kb2),
        matches=len(pair.ground_truth),
    )


# ----------------------------------------------------------------------
# Figure 2: value vs neighbor similarity of matches
# ----------------------------------------------------------------------


@dataclass
class SimilarityDistribution:
    """Figure 2 data: one (valueSim, max neighbor valueSim) dot per match."""

    name: str
    points: list[tuple[float, float]]
    strongly_similar: int  # value similarity > 0.5
    nearly_similar: int  # value similarity <= 0.5
    high_neighbor: int  # neighbor similarity > 0.5 among nearly similar

    @property
    def nearly_similar_fraction(self) -> float:
        total = len(self.points)
        return self.nearly_similar / total if total else 0.0


def similarity_distribution(
    pair: KBPair,
    config: MinoanERConfig | None = None,
    sample: int | None = None,
) -> SimilarityDistribution:
    """Normalised value/neighbor similarity of every ground-truth match.

    The horizontal axis is normalised ``valueSim`` and the vertical the
    maximum normalised ``valueSim`` among top-neighbor pairs, exactly as
    Figure 2 plots them.  ``sample`` caps the number of matches scored
    (the computation is quadratic in neighbor count).
    """
    config = config or MinoanERConfig()
    stats1 = KBStatistics(pair.kb1, config.name_attributes_k, config.relations_n)
    stats2 = KBStatistics(pair.kb2, config.name_attributes_k, config.relations_n)
    matches = sorted(pair.ground_truth)
    if sample is not None:
        matches = matches[:sample]
    points: list[tuple[float, float]] = []
    for eid1, eid2 in matches:
        value = normalized_value_similarity(pair.kb1, pair.kb2, eid1, eid2)
        neighbor = max_neighbor_value_similarity(stats1, stats2, eid1, eid2, normalized=True)
        points.append((value, neighbor))
    strongly = sum(1 for v, _ in points if v > 0.5)
    nearly = len(points) - strongly
    high_neighbor = sum(1 for v, n in points if v <= 0.5 and n > 0.5)
    return SimilarityDistribution(
        name=pair.name,
        points=points,
        strongly_similar=strongly,
        nearly_similar=nearly,
        high_neighbor=high_neighbor,
    )


# ----------------------------------------------------------------------
# Table 2: block statistics
# ----------------------------------------------------------------------


@dataclass
class BlockStatistics:
    """One Table 2 column."""

    name: str
    name_blocks: int
    token_blocks: int
    name_comparisons: int
    token_comparisons: int
    cartesian: int
    report: BlockingReport


def block_statistics(pair: KBPair, config: MinoanERConfig | None = None) -> BlockStatistics:
    """Blocking statistics and quality for a KB pair (Table 2)."""
    pipeline = MinoanER(config)
    stats1 = pipeline.build_statistics(pair.kb1)
    stats2 = pipeline.build_statistics(pair.kb2)
    names, tokens = pipeline.build_blocks(stats1, stats2)
    report = evaluate_blocks([names, tokens], pair.ground_truth)
    return BlockStatistics(
        name=pair.name,
        name_blocks=len(names),
        token_blocks=len(tokens),
        name_comparisons=names.total_comparisons(),
        token_comparisons=tokens.total_comparisons(),
        cartesian=len(pair.kb1) * len(pair.kb2),
        report=report,
    )


# ----------------------------------------------------------------------
# Table 3: comparison with baselines
# ----------------------------------------------------------------------


@dataclass
class ComparisonResult:
    """One Table 3 column: each system's P/R/F1 on one dataset."""

    name: str
    reports: dict[str, MatchingReport] = field(default_factory=dict)
    details: dict[str, str] = field(default_factory=dict)


def comparison(
    pair: KBPair,
    config: MinoanERConfig | None = None,
    systems: tuple[str, ...] = ("minoaner", "bsl", "paris", "sigma"),
    bsl: BSLBaseline | None = None,
    paris_config: ParisConfig | None = None,
    sigma_config: SigmaConfig | None = None,
) -> ComparisonResult:
    """Run MinoanER and the implemented baselines on one KB pair.

    The SiGMa-like baseline receives the pair's oracle relation
    alignment (the assumption SiGMa makes); MinoanER and PARIS receive
    nothing beyond the two KBs.
    """
    result = ComparisonResult(name=pair.name)
    ground_truth = pair.ground_truth
    if "minoaner" in systems:
        resolution = MinoanER(config).resolve(pair.kb1, pair.kb2)
        result.reports["MinoanER"] = resolution.evaluate(ground_truth)
    if "bsl" in systems:
        baseline = bsl or BSLBaseline()
        bsl_result = baseline.run(pair.kb1, pair.kb2, ground_truth)
        result.reports["BSL"] = evaluate_matches(bsl_result.best_matches, ground_truth)
        result.details["BSL"] = bsl_result.best_config.label()
    if "paris" in systems:
        paris_result = ParisBaseline(paris_config).run(pair.kb1, pair.kb2)
        result.reports["PARIS"] = evaluate_matches(paris_result.matches, ground_truth)
    if "sigma" in systems:
        sigma_result = SigmaBaseline(pair.relation_alignment, sigma_config).run(
            pair.kb1, pair.kb2
        )
        result.reports["SiGMa"] = evaluate_matches(sigma_result.matches, ground_truth)
    return result


# ----------------------------------------------------------------------
# Table 4: matching-rule ablation
# ----------------------------------------------------------------------

RULE_VARIANTS: dict[str, dict[str, bool]] = {
    "R1": {"use_value_rule": False, "use_rank_aggregation": False},
    "R2": {"use_name_rule": False, "use_rank_aggregation": False},
    "R3": {"use_name_rule": False, "use_value_rule": False},
    "no R4": {"use_reciprocity": False},
    "no neighbors": {"use_neighbor_evidence": False},
    "full": {},
}
"""Rule subsets evaluated by Table 4 (each rule alone, the full workflow
without reciprocity, and the full workflow without neighbor evidence)."""


@dataclass
class RuleAblation:
    """One Table 4 column: quality of each rule variant on one dataset."""

    name: str
    reports: dict[str, MatchingReport] = field(default_factory=dict)


def rule_ablation(
    pair: KBPair,
    config: MinoanERConfig | None = None,
    variants: dict[str, dict[str, bool]] | None = None,
) -> RuleAblation:
    """Run each rule variant of Table 4 on one KB pair."""
    base = config or MinoanERConfig()
    result = RuleAblation(name=pair.name)
    for label, overrides in (variants or RULE_VARIANTS).items():
        variant_config = base.with_options(**overrides)
        resolution = MinoanER(variant_config).resolve(pair.kb1, pair.kb2)
        result.reports[label] = resolution.evaluate(pair.ground_truth)
    return result


# ----------------------------------------------------------------------
# Figure 5: sensitivity analysis
# ----------------------------------------------------------------------

SENSITIVITY_GRID: dict[str, tuple] = {
    "name_attributes_k": (1, 2, 3, 4, 5),
    "candidates_k": (5, 10, 15, 20, 25),
    "relations_n": (1, 2, 3, 4, 5),
    "theta": (0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
}
"""Parameter grids of the paper's sensitivity analysis (Figure 5)."""


@dataclass
class SensitivityResult:
    """F1 as one parameter varies, all others at the default config."""

    name: str
    parameter: str
    values: tuple
    f1_scores: list[float]


def sensitivity(
    pair: KBPair,
    parameter: str,
    values: tuple | None = None,
    config: MinoanERConfig | None = None,
) -> SensitivityResult:
    """One Figure 5 curve: vary ``parameter``, fix the rest."""
    if values is None:
        values = SENSITIVITY_GRID[parameter]
    base = config or MinoanERConfig()
    scores: list[float] = []
    for value in values:
        variant = base.with_options(**{parameter: value})
        resolution = MinoanER(variant).resolve(pair.kb1, pair.kb2)
        scores.append(resolution.evaluate(pair.ground_truth).f1)
    return SensitivityResult(
        name=pair.name, parameter=parameter, values=tuple(values), f1_scores=scores
    )


# ----------------------------------------------------------------------
# Figure 6: scalability
# ----------------------------------------------------------------------


@dataclass
class ScalabilityPoint:
    """One Figure 6 data point."""

    workers: int
    total_seconds: float
    matching_seconds: float
    speedup: float


@dataclass
class ScalabilityResult:
    """Run time and speedup as worker count grows (one Figure 6 panel)."""

    name: str
    backend: str
    points: list[ScalabilityPoint]
    matches: int

    def matching_share(self) -> float:
        """Fraction of total time spent in the matching phase (averaged)."""
        if not self.points:
            return 0.0
        shares = [
            point.matching_seconds / point.total_seconds
            for point in self.points
            if point.total_seconds > 0
        ]
        return sum(shares) / len(shares) if shares else 0.0


def scalability(
    pair: KBPair,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    backend: str = "simulated",
    config: MinoanERConfig | None = None,
) -> ScalabilityResult:
    """Figure 6: stage-parallel pipeline time as the worker pool grows.

    With the default ``simulated`` backend the pipeline runs **once**
    with per-partition timing (the total task count is fixed at
    ``3 * max(workers)``, the paper's parallelism factor, so each task
    does the same work regardless of worker count) and each worker
    count's wall time is the sum of per-stage LPT makespans (see
    :func:`repro.parallel.context.simulated_makespan`) plus the
    driver-serial residue -- the honest substitute for a Spark cluster
    on a single CPython process.

    Any real backend (``serial``/``thread``/``process``) is also
    accepted: then the pipeline is re-run per worker count and measured
    wall times are reported (expect pool overhead to dominate at small
    scale).

    Speedup is relative to the smallest worker count measured (the
    paper normalises to 1 core; its footnote 14 uses the smallest
    feasible count when 1 is impractical).
    """
    from repro.parallel.context import simulated_makespan

    points: list[ScalabilityPoint] = []
    matches = 0
    if backend == "simulated":
        with ParallelContext(num_workers=max(workers), backend="serial") as context:
            resolution = ParallelMinoanER(config, context).resolve(pair.kb1, pair.kb2)
        matches = len(resolution.matches)
        stage_wall = sum(record.seconds for record in context.stage_log)
        residue = max(0.0, resolution.timings["total"] - stage_wall)
        # "Matching" follows the paper: Algorithm 2 only (the match:*
        # stages plus their driver-side residue), not graph construction.
        matching_wall = resolution.timings["matching"]
        matching_stage = sum(
            record.seconds
            for record in context.stage_log
            if record.name.startswith("match:")
        )
        for count in workers:
            staged = sum(
                simulated_makespan(record.partition_seconds, count)
                for record in context.stage_log
            )
            staged_matching = sum(
                simulated_makespan(record.partition_seconds, count)
                for record in context.stage_log
                if record.name.startswith("match:")
            )
            points.append(
                ScalabilityPoint(
                    workers=count,
                    total_seconds=residue + staged,
                    matching_seconds=max(0.0, matching_wall - matching_stage)
                    + staged_matching,
                    speedup=0.0,
                )
            )
    else:
        for count in workers:
            with ParallelContext(num_workers=count, backend=backend) as context:
                resolution = ParallelMinoanER(config, context).resolve(pair.kb1, pair.kb2)
            matches = len(resolution.matches)
            points.append(
                ScalabilityPoint(
                    workers=count,
                    total_seconds=resolution.timings["total"],
                    matching_seconds=resolution.timings["matching"]
                    + resolution.timings["graph"],
                    speedup=0.0,
                )
            )
    if points:
        base = points[0].total_seconds
        for point in points:
            point.speedup = base / point.total_seconds if point.total_seconds else 0.0
    return ScalabilityResult(
        name=pair.name, backend=backend, points=points, matches=matches
    )
