"""Matching quality metrics: precision, recall, F1.

The paper reports percentages; :class:`MatchingReport` stores fractions
and renders percentages, so both conventions stay unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class MatchingReport:
    """Precision / recall / F1 of a match set against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 0.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 0.0
        return self.true_positives / denominator

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def as_percentages(self) -> tuple[float, float, float]:
        """``(precision, recall, f1)`` scaled to 0-100 (paper convention)."""
        return 100.0 * self.precision, 100.0 * self.recall, 100.0 * self.f1

    def __str__(self) -> str:
        p, r, f = self.as_percentages()
        return f"P={p:.2f} R={r:.2f} F1={f:.2f}"


def evaluate_matches(
    matches: Iterable[tuple[int, int]] | Iterable[tuple[str, str]],
    ground_truth: set,
    partial_gold: bool = True,
) -> MatchingReport:
    """Compare a match set with ground-truth pairs of the same id type.

    With ``partial_gold`` (the default, and the protocol of benchmarks
    whose gold standard covers only part of the KBs -- e.g. OAEI's
    Restaurant has 89 reference matches among 339 x 2256 entities), a
    returned pair between two entities that appear *nowhere* in the
    ground truth is not judged: its true status is unknown, so it counts
    neither as a true nor as a false positive.  A pair that involves a
    ground-truth entity on either side is always judged.

    With ``partial_gold=False`` every returned pair outside the ground
    truth is a false positive (complete-gold protocol).

    >>> evaluate_matches({(0, 0), (1, 2)}, {(0, 0), (1, 1)}).f1
    0.5
    >>> evaluate_matches({(0, 0), (7, 9)}, {(0, 0)}).f1  # (7, 9) unjudged
    1.0
    >>> evaluate_matches({(0, 0), (7, 9)}, {(0, 0)}, partial_gold=False).f1
    0.6666666666666666
    """
    matches = set(matches)
    if partial_gold:
        known_1 = {pair[0] for pair in ground_truth}
        known_2 = {pair[1] for pair in ground_truth}
        judged = {
            pair for pair in matches if pair[0] in known_1 or pair[1] in known_2
        }
    else:
        judged = matches
    true_positives = len(judged & ground_truth)
    return MatchingReport(
        true_positives=true_positives,
        false_positives=len(judged) - true_positives,
        false_negatives=len(ground_truth) - true_positives,
    )
