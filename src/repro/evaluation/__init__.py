"""Evaluation: match metrics, experiment drivers, paper-style reporting.

Only the lightweight metrics are re-exported here; the experiment
drivers (:mod:`repro.evaluation.experiments`) and the formatters
(:mod:`repro.evaluation.reporting`) are imported as submodules by their
users -- they depend on the full pipeline, which itself uses these
metrics, so re-exporting them here would create an import cycle.
"""

from repro.evaluation.metrics import MatchingReport, evaluate_matches

__all__ = ["MatchingReport", "evaluate_matches"]
