"""Scenario: aligning two movie KBs full of sequels and near-duplicates.

The paper's YAGO-IMDb regime: matches share few tokens (low value
similarity), franchises make titles mutually confusable, but the
relation graph (movie-actor-director) is dense, so neighbor similarity
is strong.  This script shows how rank aggregation (rule R3) uses that
neighbor evidence, and what happens when it is turned off or mis-weighted.

Run:  python examples/movie_kb_resolution.py
"""

from repro import MinoanER, MinoanERConfig
from repro.datasets import load_profile


def main() -> None:
    pair = load_profile("yago_imdb", n_matches=900, extras1=700, extras2=1350)
    print(f"Dataset: {pair} (franchises + distractors: value evidence is weak)")

    # -- Default configuration -----------------------------------------
    default = MinoanER().resolve(pair.kb1, pair.kb2)
    print(f"\nMinoanER (k,K,N,theta = 2,15,3,0.6): {default.evaluate(pair.ground_truth)}")
    for rule in ("R1", "R2", "R3"):
        pairs = default.matching.matches_by_rule(rule)
        correct = len(pairs & pair.ground_truth)
        print(f"  {rule}: {len(pairs):4d} matches ({correct} correct)")

    # -- Without neighbor evidence --------------------------------------
    blind = MinoanER(MinoanERConfig(use_neighbor_evidence=False)).resolve(
        pair.kb1, pair.kb2
    )
    print(f"\nWithout neighbor evidence: {blind.evaluate(pair.ground_truth)}")
    print("  (rank aggregation falls back to value rankings only)")

    # -- The theta trade-off --------------------------------------------
    print("\nF1 as theta shifts weight from neighbor to value rankings:")
    for theta in (0.3, 0.5, 0.6, 0.8):
        result = MinoanER(MinoanERConfig(theta=theta)).resolve(pair.kb1, pair.kb2)
        f1 = result.evaluate(pair.ground_truth).f1
        bar = "#" * round(f1 * 40)
        print(f"  theta={theta:.1f}  F1={f1 * 100:5.1f}  {bar}")
    print("\nOn nearly similar KBs, over-weighting the value rankings "
          "(theta -> 1) costs F1: neighbor evidence carries matches "
          "that value similarity alone cannot.")


if __name__ == "__main__":
    main()
