"""Scenario: integrating a curated music catalog with a messy Web KB.

This is the paper's BBCmusic-DBpedia regime: the second KB has an order
of magnitude more attributes, 3-4x more tokens per entity, differently
formatted literals, and a deceptively important identifier attribute.
Value-only matching struggles here; MinoanER's composite evidence
(names discovered from statistics + values + neighbors) does not.

The script compares MinoanER against the fine-tuned value-only BSL
baseline on this regime and breaks MinoanER's result down by rule.

Run:  python examples/music_catalog_integration.py
"""

from repro import MinoanER, MinoanERConfig
from repro.baselines import BSLBaseline
from repro.datasets import load_profile
from repro.evaluation.metrics import evaluate_matches


def main() -> None:
    # A scaled-down instance keeps this example snappy (~20s in total).
    pair = load_profile("bbc_dbpedia", n_matches=400, extras1=150, extras2=1100)
    print(f"Dataset: {pair}")
    print(f"  KB1 attributes: {len(pair.kb1.attribute_names())}")
    print(f"  KB2 attributes: {len(pair.kb2.attribute_names())}")
    print(f"  avg tokens/entity: {pair.kb1.average_tokens_per_entity():.1f} vs "
          f"{pair.kb2.average_tokens_per_entity():.1f}")

    # -- MinoanER, fully automatic, default configuration -------------
    result = MinoanER().resolve(pair.kb1, pair.kb2)
    report = result.evaluate(pair.ground_truth)
    print(f"\nMinoanER: {report}")
    for rule in ("R1", "R2", "R3"):
        pairs = result.matching.matches_by_rule(rule)
        correct = len(pairs & pair.ground_truth)
        print(f"  {rule}: {len(pairs):4d} matches ({correct} correct)")
    print(f"  removed by reciprocity (R4): {len(result.matching.removed_by_reciprocity)}")

    # -- The k = 1 trap ------------------------------------------------
    # With only one name attribute per KB, the statistics pick the
    # messy KB's identifier attribute, and the name rule goes blind.
    trapped = MinoanER(MinoanERConfig(name_attributes_k=1)).resolve(pair.kb1, pair.kb2)
    print(f"\nWith k=1 name attributes: {trapped.evaluate(pair.ground_truth)}")
    print("  (the decoy identifier attribute hijacks name discovery; k=2 recovers)")

    # -- Fine-tuned value-only baseline --------------------------------
    bsl = BSLBaseline().run(pair.kb1, pair.kb2, pair.ground_truth)
    bsl_report = evaluate_matches(bsl.best_matches, pair.ground_truth)
    print(f"\nBSL (best of {bsl.configurations_tried} configs, tuned on the gold "
          f"standard): {bsl_report}")
    print(f"  winning configuration: {bsl.best_config.label()}")
    print(f"\nMinoanER beats the tuned value-only grid by "
          f"{(report.f1 - bsl_report.f1) * 100:.1f} F1 points on this regime.")


if __name__ == "__main__":
    main()
