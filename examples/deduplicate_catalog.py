"""Scenario: deduplicating a single dirty catalog (dirty ER).

The paper's techniques generalise beyond clean-clean matching: with a
single KB containing duplicates, the disjunctive blocking graph simply
stops being bipartite (section 2, Definition 3.3).  This script builds
a dirty catalog by concatenating the two halves of a benchmark pair --
so the ground-truth duplicates are known -- and deduplicates it with
:class:`repro.core.dirty.DirtyMinoanER`.

Run:  python examples/deduplicate_catalog.py
"""

from repro.core.dirty import DirtyMinoanER
from repro.datasets import load_profile
from repro.evaluation.metrics import evaluate_matches
from repro.kb.knowledge_base import KnowledgeBase


def main() -> None:
    pair = load_profile("restaurant")
    dirty = KnowledgeBase(
        list(pair.kb1.entities) + list(pair.kb2.entities), name="dirty-catalog"
    )
    offset = len(pair.kb1)
    gold = {(a, b + offset) for a, b in pair.ground_truth}
    print(f"dirty catalog: {len(dirty)} records, {len(gold)} known duplicate pairs")

    result = DirtyMinoanER().resolve(dirty)
    print(f"\nfound {len(result.matches)} duplicate pairs "
          f"in {len(result.clusters)} clusters")
    report = evaluate_matches(result.matches, gold)
    print(f"quality against the known duplicates: {report}")

    print("\nlargest clusters:")
    for cluster in sorted(result.cluster_uris(), key=len, reverse=True)[:3]:
        print(f"  {cluster}")

    by_rule = {}
    for pair_ids, rule in result.rule_of.items():
        by_rule[rule] = by_rule.get(rule, 0) + 1
    print(f"\npairs per rule: {by_rule}")
    print("R3 runs in its strict mutual-best form here: without the")
    print("clean-clean guarantee, an entity may have no duplicate at all,")
    print("so both endpoints must prefer each other.")


if __name__ == "__main__":
    main()
