"""Bring your own data: resolve two N-Triples files end to end.

Shows the full file-based workflow a downstream user needs:

1. write/obtain two RDF dumps (here: generated on the fly),
2. load them with the dependency-free N-Triples reader,
3. resolve with MinoanER,
4. save the discovered owl:sameAs links as TSV and N-Triples.

Run:  python examples/custom_data_rdf.py
"""

import tempfile
from pathlib import Path

from repro import MinoanER
from repro.kb.rdf import load_ntriples, save_ntriples
from repro.datasets import load_profile

SAME_AS = "http://www.w3.org/2002/07/owl#sameAs"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="minoaner-example-"))

    # 1-2. Materialise two KBs as .nt files, then load them back --
    #      exactly what you would do with your own dumps.
    pair = load_profile("restaurant")
    path1, path2 = workdir / "catalog_a.nt", workdir / "catalog_b.nt"
    save_ntriples(pair.kb1, path1)
    save_ntriples(pair.kb2, path2)
    print(f"wrote {path1} ({path1.stat().st_size:,} bytes)")
    print(f"wrote {path2} ({path2.stat().st_size:,} bytes)")

    kb1 = load_ntriples(path1, name="catalog-a")
    kb2 = load_ntriples(path2, name="catalog-b")
    print(f"loaded {kb1!r} and {kb2!r}")

    # 3. Resolve.
    result = MinoanER().resolve(kb1, kb2)
    matches = sorted(result.uri_matches())
    print(f"\nfound {len(matches)} matches in {result.timings['total']:.2f}s")
    report = result.evaluate_uris(pair.uri_ground_truth)
    print(f"quality against the bundled gold standard: {report}")

    # 4. Export the links.
    tsv_path = workdir / "matches.tsv"
    with tsv_path.open("w", encoding="utf-8") as handle:
        for uri1, uri2 in matches:
            handle.write(f"{uri1}\t{uri2}\n")
    nt_path = workdir / "matches.nt"
    with nt_path.open("w", encoding="utf-8") as handle:
        for uri1, uri2 in matches:
            handle.write(f"<{uri1}> <{SAME_AS}> <{uri2}> .\n")
    print(f"\nwrote {tsv_path}")
    print(f"wrote {nt_path}  (owl:sameAs triples, e.g.)")
    with nt_path.open(encoding="utf-8") as handle:
        for line in list(handle)[:3]:
            print(f"  {line.rstrip()}")


if __name__ == "__main__":
    main()
