"""Quickstart: resolve the paper's Figure 1 example with MinoanER.

Two tiny knowledge bases describe the same restaurant, its chef and its
location -- with different schemas, different attribute names and
partially different values.  MinoanER aligns them with no schema
mapping, no training data and no configuration beyond the defaults.

Run:  python examples/quickstart.py
"""

from repro import EntityDescription, KnowledgeBase, MinoanER

# A Wikidata-flavoured KB: attribute names and values in one style...
wikidata = KnowledgeBase(
    [
        EntityDescription(
            "wd:Restaurant1",
            [
                ("label", "The Fat Duck"),
                ("hasChef", "wd:JohnLakeA"),
                ("territorial", "wd:Bray"),
                ("inCountry", "wd:UK"),
            ],
        ),
        EntityDescription("wd:JohnLakeA", [("label", "John Lake A"), ("name", "J. Lake")]),
        EntityDescription("wd:Bray", [("label", "Bray village")]),
        EntityDescription("wd:UK", [("label", "United Kingdom")]),
    ],
    name="wikidata",
)

# ... and a DBpedia-flavoured KB: different attributes, overlapping words.
dbpedia = KnowledgeBase(
    [
        EntityDescription(
            "db:Restaurant2",
            [
                ("title", "Fat Duck restaurant"),
                ("headChef", "db:JonnyLake"),
                ("county", "db:Berkshire"),
            ],
        ),
        EntityDescription("db:JonnyLake", [("title", "Jonny Lake"), ("alias", "J. Lake")]),
        EntityDescription("db:Berkshire", [("title", "Berkshire county near Bray")]),
        EntityDescription("db:BrayStudios", [("title", "Bray Studios film stage")]),
    ],
    name="dbpedia",
)


def main() -> None:
    result = MinoanER().resolve(wikidata, dbpedia)

    print(f"Resolved {wikidata.name} vs {dbpedia.name}: {len(result.matches)} matches\n")
    for eid1, eid2 in sorted(result.matches):
        rule = result.matching.rule_of[(eid1, eid2)]
        print(f"  [{rule}] {wikidata.uri_of(eid1):18s} == {dbpedia.uri_of(eid2)}")

    print("\nHow each match was found:")
    print("  R1  the chefs exclusively share the name 'J. Lake'")
    print("  R2  the restaurants share rare tokens ('fat', 'duck')")
    print("  R3  Bray/Berkshire share no strong signal; rank aggregation")
    print("      still finds no better candidate for either of them")
    print("\nPhase timings (seconds):")
    for phase, seconds in result.timings.items():
        print(f"  {phase:12s} {seconds:.4f}")

    # Every decision is explainable.
    from repro.core.explain import explain_pair

    print("\nWhy did the restaurants match?")
    print(explain_pair(result, wikidata.id_of("wd:Restaurant1"),
                       dbpedia.id_of("db:Restaurant2")).render())


if __name__ == "__main__":
    main()
