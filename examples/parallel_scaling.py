"""Scenario: running MinoanER on the stage-parallel engine.

The paper implements MinoanER on Spark (Figure 4): graph construction
and the four matching rules run as partitioned stages separated by
synchronisation barriers.  This script runs the same dataflow on the
bundled engine, verifies it returns exactly the serial pipeline's
matches, and prints a Figure-6-style scalability table using the
simulated-cluster timing model.

Run:  python examples/parallel_scaling.py
"""

from repro import MinoanER
from repro.datasets import load_profile
from repro.evaluation.experiments import scalability
from repro.evaluation.reporting import format_scalability
from repro.parallel import ParallelContext, ParallelMinoanER


def main() -> None:
    pair = load_profile("yago_imdb", n_matches=1400, extras1=1100, extras2=2100)
    print(f"Dataset: {pair}\n")

    # -- Serial vs stage-parallel: identical matches -------------------
    serial = MinoanER().resolve(pair.kb1, pair.kb2)
    with ParallelContext(num_workers=4, backend="thread") as context:
        parallel = ParallelMinoanER(context=context).resolve(pair.kb1, pair.kb2)
    assert parallel.matches == serial.matches
    print(f"serial and stage-parallel pipelines agree on all "
          f"{len(parallel.matches)} matches")
    print("\nstages executed (barriers between them, as in the paper's Figure 4):")
    seen = []
    for record in context.stage_log:
        if record.name not in seen:
            seen.append(record.name)
    for name in seen:
        print(f"  {name}")

    # -- Figure-6-style scalability curve ------------------------------
    print()
    result = scalability(pair, workers=(1, 2, 4, 8, 16))
    print(format_scalability([result]))
    print("Speedup is sub-linear, as in the paper: every stage ends at a")
    print("barrier, and partition skew plus the serial driver residue cap")
    print("the achievable parallelism (Amdahl).")


if __name__ == "__main__":
    main()
