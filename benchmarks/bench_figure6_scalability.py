"""Figure 6: scalability of matching with growing worker pools.

Regenerates the paper's scalability panels on the simulated-cluster
timing model (see DESIGN.md: the kernels run for real, serially and
per-partition; only the W-worker schedule is modelled, because CPython
cannot demonstrate in-process CPU parallelism).  Asserted shapes:

* run time decreases monotonically as workers grow;
* speedup is sub-linear everywhere (synchronisation barriers);
* the matching phase (Algorithm 2) takes well below half the total
  time, like the paper's 20-45%.
"""

from conftest import emit

from repro.evaluation.experiments import scalability
from repro.evaluation.reporting import format_scalability

WORKERS = (1, 2, 4, 8, 16)


def test_figure6_scalability(benchmark, profiles, results_dir):
    results = benchmark.pedantic(
        lambda: [scalability(pair, workers=WORKERS) for pair in profiles.values()],
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "figure6_scalability", format_scalability(results))

    for result in results:
        times = [point.total_seconds for point in result.points]
        speedups = [point.speedup for point in result.points]
        # Monotone decrease in time, increase in speedup.
        assert times == sorted(times, reverse=True), result.name
        assert speedups == sorted(speedups), result.name
        # Sub-linear speedup at every scale.
        for point in result.points:
            assert point.speedup <= point.workers + 1e-9, result.name
        assert result.points[-1].speedup > 1.5, result.name
        # Matching (Algorithm 2) is a minority of total time.
        assert result.matching_share() < 0.5, result.name
