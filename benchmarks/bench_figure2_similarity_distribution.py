"""Figure 2: value vs. neighbor similarity distribution of matches.

Regenerates the scatter data behind the paper's Figure 2 (as summary
counts plus text histograms).  The asserted shape: Restaurant matches
are mostly strongly similar (normalised value similarity > 0.5);
BBCmusic-DBpedia and YAGO-IMDb are dominated by nearly similar matches,
a large part of which exhibit meaningful neighbor similarity -- the
regime that motivates composite blocking and rule R3.
"""

from conftest import emit

from repro.evaluation.experiments import similarity_distribution
from repro.evaluation.reporting import format_similarity_distribution

SAMPLE_PER_DATASET = 300


def test_figure2_similarity_distribution(benchmark, profiles, results_dir):
    columns = benchmark.pedantic(
        lambda: [
            similarity_distribution(pair, sample=SAMPLE_PER_DATASET)
            for pair in profiles.values()
        ],
        rounds=1,
        iterations=1,
    )
    emit(
        results_dir,
        "figure2_similarity_distribution",
        format_similarity_distribution(columns),
    )

    by_name = {column.name: column for column in columns}
    # Restaurant: strongly similar matches dominate.
    assert by_name["restaurant"].nearly_similar_fraction < 0.5
    # BBC-DBpedia and YAGO-IMDb: nearly similar matches dominate.
    assert by_name["bbc_dbpedia"].nearly_similar_fraction > 0.6
    assert by_name["yago_imdb"].nearly_similar_fraction > 0.6
    # Among YAGO-IMDb's nearly similar matches, a meaningful share has
    # high neighbor similarity (the R3 opportunity).
    yago = by_name["yago_imdb"]
    assert yago.high_neighbor > 0.1 * yago.nearly_similar
