"""Complexity check: matching scales (near-)linearly with input size.

Section 4: "the overall complexity [of Algorithm 2] is linear with
respect to the number of input descriptions, O(|E1| + |E2|)", because
the pruned graph holds at most 2K directed edges per node.  This bench
measures the *matching* phase (and, separately, graph construction) on
the yago_imdb profile at three population scales and asserts the growth
is far below quadratic.
"""

import time

from conftest import emit

from repro.core.config import MinoanERConfig
from repro.core.matcher import NonIterativeMatcher
from repro.core.pipeline import MinoanER
from repro.datasets.profiles import scaled_profile

SCALES = (0.5, 1.0, 2.0)


def measure(scale: float) -> tuple[int, float, float]:
    pair = scaled_profile("yago_imdb", scale)
    pipeline = MinoanER(MinoanERConfig())
    result = pipeline.resolve(pair.kb1, pair.kb2)
    population = len(pair.kb1) + len(pair.kb2)
    # Re-time the matching phase alone over several repetitions for a
    # stable number (it is fast relative to graph construction).
    matcher = NonIterativeMatcher(pipeline.config)
    repetitions = 3
    started = time.perf_counter()
    for _ in range(repetitions):
        matcher.match(result.graph)
    matching_seconds = (time.perf_counter() - started) / repetitions
    return population, matching_seconds, result.timings["graph"]


def test_matching_scales_linearly(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: [measure(scale) for scale in SCALES], rounds=1, iterations=1
    )
    lines = ["Complexity check: matching time vs population (yago_imdb profile)", ""]
    lines.append(f"{'population':>12} {'matching (s)':>14} {'graph (s)':>12}")
    for population, matching_seconds, graph_seconds in rows:
        lines.append(
            f"{population:12,} {matching_seconds:14.3f} {graph_seconds:12.3f}"
        )
    (small_n, small_t, _), _, (large_n, large_t, large_graph) = rows
    growth = (large_t / small_t) / (large_n / small_n)
    lines.append("")
    lines.append(
        f"matching growth factor per population factor: {growth:.2f} "
        "(1.0 = perfectly linear)"
    )
    emit(results_dir, "complexity_matching", "\n".join(lines))

    # 4x the population must cost well below 16x (quadratic) matching
    # time; allow generous constant-factor noise around linear.
    population_factor = large_n / small_n
    time_factor = large_t / small_t
    assert time_factor < population_factor ** 1.5, (time_factor, population_factor)
