"""Table 4: per-rule evaluation of the matching process.

Regenerates the paper's rule ablation: each rule alone, the full
workflow without reciprocity (R4), and the full workflow without
neighbor evidence.  Asserted shapes:

* R1 alone is precision-heavy with decent recall everywhere;
* R2 alone is precise; its recall is high on strongly similar pairs and
  low on YAGO-IMDb's nearly similar matches;
* R3 is the strongest single rule on the nearly similar datasets;
* R4 never adds matches -- removing it must not increase precision;
* neighbor evidence matters on the nearly similar datasets and is
  negligible on the strongly similar ones.
"""

from conftest import emit

from repro.evaluation.experiments import rule_ablation
from repro.evaluation.reporting import format_rule_ablation


def test_table4_matching_rules(benchmark, profiles, results_dir):
    columns = benchmark.pedantic(
        lambda: [rule_ablation(pair) for pair in profiles.values()],
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table4_matching_rules", format_rule_ablation(columns))

    by_name = {column.name: column for column in columns}

    for name, column in by_name.items():
        reports = column.reports
        # R1: high precision, real recall.
        assert reports["R1"].precision > 0.9, name
        assert reports["R1"].recall > 0.4, name
        # R2: precise.
        assert reports["R2"].precision > 0.7, name
        # R4 is a filter: the full workflow is at least as precise as
        # the workflow without it (small tolerance for UMC interplay).
        assert reports["full"].precision >= reports["no R4"].precision - 0.01, name

    # R2 recall collapses on the low-value-similarity pair.
    assert by_name["yago_imdb"].reports["R2"].recall < 0.55
    assert by_name["restaurant"].reports["R2"].recall > 0.85

    # R3 is the best single rule on the nearly similar datasets.
    for name in ("bbc_dbpedia", "yago_imdb"):
        reports = by_name[name].reports
        assert reports["R3"].f1 >= max(reports["R1"].f1, reports["R2"].f1), name

    # Neighbor evidence: big help on nearly similar pairs, negligible on
    # strongly similar ones.
    for name in ("bbc_dbpedia", "yago_imdb"):
        reports = by_name[name].reports
        assert reports["full"].f1 >= reports["no neighbors"].f1, name
    for name in ("restaurant", "rexa_dblp"):
        reports = by_name[name].reports
        assert abs(reports["full"].f1 - reports["no neighbors"].f1) < 0.05, name
