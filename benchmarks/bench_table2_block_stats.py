"""Table 2: block statistics of the composite blocking scheme.

Regenerates the paper's Table 2: numbers and comparison counts of name
and token blocks, plus blocking precision/recall.  Asserted shapes
(section 6.1): token comparisons dominate name comparisons by at least
an order of magnitude; the total candidate space is >= 2 orders of
magnitude below the Cartesian product; blocking recall stays above 99%
while precision is tiny.
"""

from conftest import emit

from repro.evaluation.experiments import block_statistics
from repro.evaluation.reporting import format_block_statistics


def test_table2_block_statistics(benchmark, profiles, results_dir):
    columns = benchmark.pedantic(
        lambda: [block_statistics(pair) for pair in profiles.values()],
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table2_block_statistics", format_block_statistics(columns))

    for column in columns:
        total = column.name_comparisons + column.token_comparisons
        # ||BT|| >= 1 order of magnitude above ||BN||.
        assert column.token_comparisons >= 10 * column.name_comparisons, column.name
        # Total comparisons >= 2 orders of magnitude below |E1| x |E2|.
        assert total * 50 <= column.cartesian, column.name
        # Recall above 99%, precision far below 50%.
        assert column.report.recall > 0.99, column.name
        assert column.report.precision < 0.5, column.name


def test_table2_purging_ablation(benchmark, profiles, results_dir):
    """Design-choice ablation: Block Purging on vs. off.

    Purging must shrink the token-comparison count by a large factor
    while giving up (almost) no blocking recall -- the claim of
    section 3.3.
    """
    from repro.core.config import MinoanERConfig

    def run():
        rows = []
        for name, pair in profiles.items():
            purged = block_statistics(pair)
            unpurged = block_statistics(pair, MinoanERConfig(purge_blocks=False))
            rows.append((name, purged, unpurged))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: Block Purging on/off", ""]
    for name, purged, unpurged in rows:
        reduction = unpurged.token_comparisons / max(1, purged.token_comparisons)
        lines.append(
            f"{name:12s} ||BT|| {unpurged.token_comparisons:.2e} -> "
            f"{purged.token_comparisons:.2e} ({reduction:7.1f}x) | "
            f"recall {unpurged.report.recall * 100:.2f}% -> {purged.report.recall * 100:.2f}%"
        )
        assert purged.token_comparisons * 5 < unpurged.token_comparisons, name
        assert purged.report.recall > unpurged.report.recall - 0.01, name
    emit(results_dir, "ablation_block_purging", "\n".join(lines))
