"""Ablation: the section-2 generalizations (dirty ER, multi-KB ER).

The paper claims its techniques "can be easily generalized to more than
two clean KBs or a single dirty KB" but never evaluates that claim.
This bench does:

* **dirty ER** -- the two halves of each benchmark profile are
  concatenated into one KB; the known cross-KB matches become
  within-KB duplicates, and :class:`DirtyMinoanER` must find them;
* **multi-KB ER** -- three clean views are derived from a profile (the
  original KB1, KB2, and a re-rendered third view), and
  :class:`MultiKBResolver` must produce consistent cross-KB clusters.
"""

from conftest import emit

from repro.core.dirty import DirtyMinoanER
from repro.core.multi import MultiKBResolver
from repro.datasets.profiles import load_profile
from repro.evaluation.metrics import evaluate_matches
from repro.kb.knowledge_base import KnowledgeBase

DIRTY_DATASETS = ("restaurant", "bbc_dbpedia")


def dirty_rows(profiles):
    rows = []
    for name in DIRTY_DATASETS:
        pair = profiles[name]
        merged = KnowledgeBase(
            list(pair.kb1.entities) + list(pair.kb2.entities), name=f"{name}-dirty"
        )
        offset = len(pair.kb1)
        gold = {(a, b + offset) for a, b in pair.ground_truth}
        result = DirtyMinoanER().resolve(merged)
        rows.append((name, evaluate_matches(result.matches, gold), len(result.clusters)))
    return rows


def third_view(kb: KnowledgeBase) -> KnowledgeBase:
    """A schema-renamed, lossy projection of ``kb`` (a third clean view).

    Attribute names move to a new vocabulary, URIs to a new namespace,
    and every third literal value is dropped -- the kind of partial,
    re-schematised copy a third data publisher would produce.
    """
    from repro.kb.entity import EntityDescription

    uri_map = {kb.uri_of(eid): f"kb3:e{eid}" for eid in range(len(kb))}
    entities = []
    for eid in range(len(kb)):
        pairs = []
        literal_index = 0
        for attribute, value in kb.entities[eid].pairs:
            renamed = "voc30:" + attribute.split(":", 1)[-1]
            if value in uri_map:
                pairs.append((renamed, uri_map[value]))
            else:
                literal_index += 1
                if literal_index % 3 != 0:
                    pairs.append((renamed, value))
        entities.append(EntityDescription(uri_map[kb.uri_of(eid)], pairs))
    return KnowledgeBase(entities, name="view3")


def multi_rows():
    # Three clean views of one world: the profile's KB1/KB2 plus a lossy
    # re-schematised projection of KB1 (identity gold against view 0).
    pair = load_profile("restaurant")
    kbs = [pair.kb1, pair.kb2, third_view(pair.kb1)]
    result = MultiKBResolver().resolve(kbs)
    gold_02 = {(eid, eid) for eid in range(len(pair.kb1))}
    report_01 = evaluate_matches(result.matches_between(0, 1), pair.ground_truth)
    report_02 = evaluate_matches(result.matches_between(0, 2), gold_02)
    return result, report_01, report_02


def test_dirty_er_generalization(benchmark, profiles, results_dir):
    rows = benchmark.pedantic(lambda: dirty_rows(profiles), rounds=1, iterations=1)
    lines = ["Generalization: dirty ER on merged benchmark profiles", ""]
    for name, report, clusters in rows:
        lines.append(
            f"  {name:12s} P={report.precision * 100:6.2f} R={report.recall * 100:6.2f} "
            f"F1={report.f1 * 100:6.2f}  clusters={clusters:,}"
        )
    emit(results_dir, "generalization_dirty_er", "\n".join(lines))
    for name, report, _ in rows:
        assert report.f1 > 0.7, name


def test_multi_kb_generalization(benchmark, results_dir):
    result, report_01, report_02 = benchmark.pedantic(
        multi_rows, rounds=1, iterations=1
    )
    lines = [
        "Generalization: 3-KB resolution (restaurant world, three views)",
        "",
        f"  view0-view1 (original pair): {report_01}",
        f"  view0-view2 (re-rendered view): {report_02}",
        f"  clusters: {len(result.clusters):,}  conflicts: {len(result.conflicts):,}",
    ]
    emit(results_dir, "generalization_multi_kb", "\n".join(lines))
    assert report_01.f1 > 0.85
    assert report_02.f1 > 0.85
    # Transitive closure over threshold-free pairwise matching does
    # produce some inconsistent merges among non-gold extras; the
    # resolver's job is to *report* them instead of emitting clusters
    # with two entities of one clean KB.  They must stay a minority.
    total = len(result.clusters) + len(result.conflicts)
    assert len(result.conflicts) < 0.25 * max(1, total)
    for cluster in result.clusters:
        kb_indexes = [kb_index for kb_index, _ in cluster]
        assert len(kb_indexes) == len(set(kb_indexes))
