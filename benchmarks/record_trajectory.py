"""Record the performance trajectory to ``BENCH_PR6.json``.

Seven measurements:

* micro-kernel wall times (best of N) for the beta accumulation, the
  fused value transpose + top-K, and the fused gamma propagation +
  top-K, per available array backend, plus the one-off interning cost --
  all against the dict reference on the ``bbc_dbpedia`` profile (the
  largest of the four calibrated benchmark pairs);
* a bit-identity verdict of ``build_blocking_graph`` between the dict
  reference and every array backend, on all four dataset profiles;
* the online serving trajectory (:mod:`benchmarks.bench_serving`):
  index build/persistence cost, single-query p50/p95 latency and
  throughput (cold and warm cache), batch throughput, and the
  batch/serve equivalence verdict;
* the observability trajectory: per-phase span summary of a traced
  resolve on the restaurant profile, and end-to-end tracing overhead
  (best-of-N with an installed recorder vs ``observability=False``),
  gated below 5%;
* the resilience trajectory: chaos-equivalence verdict (a resolve under
  transient injected faults + retry produces the clean run's exact
  match set), the fired-fault/retry counters of that run, and the
  overhead of the armed-but-quiet resilience path (``failure_mode =
  "retry"`` with no faults vs ``fail_fast``), gated below 5%;
* the telemetry trajectory: the merged span summary of a traced
  ``process``-backend parallel resolve (worker spans and kernel
  counters shipped back from the pool via snapshot merging), a
  validity check of the live Prometheus endpoint, and the serving
  overhead of full telemetry (provenance sampling at rate 1.0 plus a
  live metrics endpoint) vs a bare engine, gated below 5%;
* the index-format trajectory: the ``yago_imdb`` index-size sweep of
  :mod:`benchmarks.bench_serving` (up to 100k KB2 entities in the full
  run), gating that memory-mapped loads stay O(1) in index size while
  eager decode grows linearly, and that mmap-served decisions are
  bit-identical to eager-served ones.

Run from the repository root::

    PYTHONPATH=src python benchmarks/record_trajectory.py
    PYTHONPATH=src python benchmarks/record_trajectory.py --quick  # CI smoke

``--quick`` shrinks the timing profile and verifies identity on scaled
profiles so the step finishes in seconds on CI runners.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.blocking.name_blocking import name_blocks  # noqa: E402
from repro.blocking.purging import purge_blocks  # noqa: E402
from repro.blocking.token_blocking import token_blocks  # noqa: E402
from repro.datasets.profiles import load_profile, profile_names, scaled_profile  # noqa: E402
from repro.graph import construction as reference  # noqa: E402
from repro.kb.statistics import KBStatistics  # noqa: E402
from repro.kernels import (  # noqa: E402
    InternedBlocks,
    available_backends,
    get_backend,
    resolve_backend_name,
    retained_edge_arrays,
)

K = 15


def _best(function, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        times.append(time.perf_counter() - started)
    return min(times)


def _ab_best(baseline, candidate, repeats: int) -> tuple[float, float, float, float]:
    """Interleaved A/B timing; returns wall bests, ratio, resolution.

    The overhead gates compare two nearly-equal run times on runners
    whose wall clock is at the mercy of co-tenant load -- observed
    pass-to-pass swings exceed 2x on a one-core box, so no wall-time
    estimator can resolve a 5% budget.  The gated ``ratio`` is instead
    built from ``time.process_time`` (CPU seconds charged to this
    process), which is indifferent to time stolen by other tenants;
    the benchmarked passes are CPU-bound and in-process, so CPU time
    *is* the cost being claimed.  Defense in depth on top of that:
    samples interleave (A,B,A,B,...) so slow drift hits both sides,
    within-pair order alternates so the warm-cache advantage of running
    second cancels, and the ratio is the median of per-pair CPU ratios
    so residual outliers drop out.  Wall-clock bests are still returned
    for the human-readable ms figures.
    """
    best_a = best_b = float("inf")
    ratios: list[float] = []
    for index in range(repeats):
        first, second = (
            (baseline, candidate) if index % 2 == 0 else (candidate, baseline)
        )
        wall = time.perf_counter()
        cpu = time.process_time()
        first()
        first_cpu = time.process_time() - cpu
        first_wall = time.perf_counter() - wall
        wall = time.perf_counter()
        cpu = time.process_time()
        second()
        second_cpu = time.process_time() - cpu
        second_wall = time.perf_counter() - wall
        if index % 2 == 0:
            wall_a, wall_b = first_wall, second_wall
            cpu_a, cpu_b = first_cpu, second_cpu
        else:
            wall_a, wall_b = second_wall, first_wall
            cpu_a, cpu_b = second_cpu, first_cpu
        best_a = min(best_a, wall_a)
        best_b = min(best_b, wall_b)
        ratios.append(cpu_b / cpu_a)
    ratios.sort()
    mid = len(ratios) // 2
    median = (
        ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2
    )
    # Half the interquartile range: the resolution of this measurement.
    # A budget verdict is only meaningful when the excess over budget
    # exceeds what the instrument can distinguish from zero.
    quarter = len(ratios) // 4
    resolution = (ratios[-1 - quarter] - ratios[quarter]) / 2
    return best_a, best_b, median, resolution


def _budget_verdict(overhead: float, resolution: float, budget: float) -> str:
    """"pass" under budget; over budget, "fail" only beyond resolution.

    An overhead that exceeds the budget by less than the measurement's
    own resolution is "inconclusive": the runner could not distinguish
    it from a compliant one, and failing on it would gate on noise.
    """
    if overhead < budget:
        return "pass"
    return "fail" if overhead - resolution >= budget else "inconclusive"


def _prepare(profile: str, scale: float | None):
    pair = scaled_profile(profile, scale) if scale else load_profile(profile)
    n1, n2 = len(pair.kb1), len(pair.kb2)
    stats1 = KBStatistics(pair.kb1)
    stats2 = KBStatistics(pair.kb2)
    tokens = purge_blocks(token_blocks(pair.kb1, pair.kb2), cartesian=n1 * n2)
    return pair, stats1, stats2, tokens


def time_micro_kernels(profile: str, repeats: int, scale: float | None) -> dict:
    """Best-of-``repeats`` wall times (ms) for reference and kernels."""
    pair, stats1, stats2, tokens = _prepare(profile, scale)
    n1, n2 = len(pair.kb1), len(pair.kb2)
    backends = [name for name in available_backends() if name != "dict"]

    timings: dict[str, dict[str, float]] = {"reference": {}}
    reference_ms = timings["reference"]
    reference_ms["beta"] = _best(lambda: reference.accumulate_beta(tokens, n1), repeats)
    reference_ms["value_fused"] = _best(
        lambda: reference.value_evidence(tokens, n1, n2, K), repeats
    )
    value_1, value_2 = reference.value_evidence(tokens, n1, n2, K)
    edges_dict = reference.retained_beta_edges(value_1, value_2)
    reference_ms["gamma_fused"] = _best(
        lambda: reference.neighbor_evidence(edges_dict, stats1, stats2, K), repeats
    )

    timings["interning"] = {
        "from_blocks": _best(lambda: InternedBlocks.from_blocks(tokens, n1, n2), repeats)
    }
    interned = InternedBlocks.from_blocks(tokens, n1, n2)
    edges = retained_edge_arrays(value_1, value_2)
    adjacency1 = stats1.in_neighbor_csr()
    adjacency2 = stats2.in_neighbor_csr()

    for backend in backends:
        impl = get_backend(backend)
        timings[backend] = {
            "beta": _best(lambda: impl.beta_sparse(interned), repeats),
            "value_fused": _best(lambda: impl.value_topk(interned, K), repeats),
            "gamma_fused": _best(
                lambda: impl.gamma_topk(edges, adjacency1, adjacency2, K), repeats
            ),
        }

    milliseconds = {
        section: {kernel: seconds * 1e3 for kernel, seconds in values.items()}
        for section, values in timings.items()
    }
    speedups = {
        backend: {
            kernel: milliseconds["reference"][kernel] / milliseconds[backend][kernel]
            for kernel in ("beta", "value_fused", "gamma_fused")
        }
        for backend in backends
    }
    return {
        "profile": profile,
        "scale": scale,
        "n1": n1,
        "n2": n2,
        "blocks": len(tokens),
        "repeats": repeats,
        "milliseconds": milliseconds,
        "speedup_vs_reference": speedups,
    }


def verify_bit_identity(profiles: list[str], scale: float | None) -> dict:
    """``build_blocking_graph`` identity: dict reference vs every backend."""
    backends = [name for name in available_backends() if name != "dict"]
    verdicts: dict[str, dict[str, bool]] = {}
    for profile in profiles:
        pair, stats1, stats2, tokens = _prepare(profile, scale)
        names = name_blocks(stats1, stats2)
        dict_graph = reference.build_blocking_graph(stats1, stats2, names, tokens, k=K)
        verdicts[profile] = {
            backend: reference.build_blocking_graph(
                stats1, stats2, names, tokens, k=K, backend=backend
            ).identical(dict_graph)
            for backend in backends
        }
    return verdicts


def bench_serving_trajectory(quick: bool) -> dict:
    """Serving latency/throughput via :mod:`benchmarks.bench_serving`."""
    import tempfile

    import bench_serving

    scale = 0.3 if quick else None
    max_queries = 100 if quick else 500
    with tempfile.TemporaryDirectory() as tmp:
        return bench_serving.run("restaurant", scale, max_queries, Path(tmp))


def bench_index_format(quick: bool) -> dict:
    """The yago_imdb index-size sweep: O(1) mmap loads, shared pages.

    The full run includes the 100k-entity KB2 point; ``--quick`` stays
    on sizes that generate in a couple of seconds on CI runners.
    """
    import tempfile

    import bench_serving

    sizes = [2000, 6000] if quick else [4000, 32000, 100000]
    max_queries = 50 if quick else 200
    with tempfile.TemporaryDirectory() as tmp:
        return bench_serving.bench_index_sweep(sizes, max_queries, Path(tmp))


def bench_observability(quick: bool) -> dict:
    """Per-phase span summary and tracing overhead on ``restaurant``.

    Overhead compares best-of-N end-to-end resolve time with an
    installed :class:`~repro.obs.Recorder` against the same resolve
    with ``observability=False`` (the no-op recorder).
    """
    from repro.core.config import MinoanERConfig  # noqa: E402
    from repro.core.pipeline import MinoanER  # noqa: E402
    from repro.obs import Recorder, use_recorder  # noqa: E402

    scale = 0.3 if quick else None
    pair = scaled_profile("restaurant", scale) if scale else load_profile("restaurant")
    repeats = 3 if quick else 13
    untraced = MinoanERConfig(observability=False)

    # Warm-up (imports, backend dispatch, allocator) before timing.
    MinoanER(untraced).resolve(pair.kb1, pair.kb2)

    last: dict[str, Recorder] = {}

    def traced_resolve() -> None:
        recorder = Recorder()
        with use_recorder(recorder):
            MinoanER().resolve(pair.kb1, pair.kb2)
        last["recorder"] = recorder

    baseline_s, traced_s, ratio, resolution = _ab_best(
        lambda: MinoanER(untraced).resolve(pair.kb1, pair.kb2),
        traced_resolve,
        repeats,
    )
    recorder = last["recorder"]

    spans = recorder.spans()
    phase_ms = {
        span.name: span.seconds * 1e3
        for span in spans
        if span.name in ("resolve", "statistics", "blocking", "graph", "matching")
    }
    overhead = ratio - 1.0
    return {
        "profile": "restaurant",
        "scale": scale,
        "repeats": repeats,
        "phase_ms": phase_ms,
        "span_count": len(spans),
        "counters": recorder.counters(),
        "untraced_best_ms": baseline_s * 1e3,
        "traced_best_ms": traced_s * 1e3,
        "overhead_fraction": overhead,
        "overhead_budget": 0.05,
        "overhead_resolution": resolution,
        "within_budget": overhead < 0.05,
        "verdict": _budget_verdict(overhead, resolution, 0.05),
    }


def bench_resilience(quick: bool) -> dict:
    """Chaos-equivalence verdict and armed-path overhead on ``restaurant``.

    Equivalence: a resolve whose phases each fail twice with transient
    injected faults, under ``failure_mode = "retry"``, must produce the
    clean run's exact match set and scores.  Overhead: best-of-N
    ``retry``-armed resolve (no plan installed, so every ``inject`` is
    one ContextVar read) vs the ``fail_fast`` baseline.
    """
    from repro.core.config import MinoanERConfig  # noqa: E402
    from repro.core.pipeline import MinoanER  # noqa: E402
    from repro.obs import Recorder, use_recorder  # noqa: E402
    from repro.resilience import parse_chaos, use_faults  # noqa: E402

    scale = 0.3 if quick else None
    pair = scaled_profile("restaurant", scale) if scale else load_profile("restaurant")
    repeats = 3 if quick else 13
    fail_fast = MinoanERConfig(observability=False)
    armed = MinoanERConfig(
        observability=False, failure_mode="retry", retry_base_delay_s=0.0
    )

    MinoanER(fail_fast).resolve(pair.kb1, pair.kb2)  # warm-up
    baseline_s, armed_s, ratio, resolution = _ab_best(
        lambda: MinoanER(fail_fast).resolve(pair.kb1, pair.kb2),
        lambda: MinoanER(armed).resolve(pair.kb1, pair.kb2),
        repeats,
    )

    clean = MinoanER(fail_fast).resolve(pair.kb1, pair.kb2)
    chaos_spec = "stage:*=error*2"
    recorder = Recorder()
    plan = parse_chaos(chaos_spec)
    chaotic_config = MinoanERConfig(failure_mode="retry", retry_base_delay_s=0.0)
    with use_recorder(recorder), use_faults(plan):
        chaotic = MinoanER(chaotic_config).resolve(pair.kb1, pair.kb2)
    identical = (
        chaotic.matches == clean.matches
        and chaotic.matching.scores == clean.matching.scores
    )

    overhead = ratio - 1.0
    return {
        "profile": "restaurant",
        "scale": scale,
        "repeats": repeats,
        "chaos": {
            "spec": chaos_spec,
            "faults_fired": plan.total_fired(),
            "fired_by_site": plan.fired(),
            "retry_attempts": recorder.counter_value("retry.attempts"),
            "matches": len(chaotic.matches),
            "identical_to_clean": identical,
        },
        "fail_fast_best_ms": baseline_s * 1e3,
        "retry_armed_best_ms": armed_s * 1e3,
        "overhead_fraction": overhead,
        "overhead_budget": 0.05,
        "overhead_resolution": resolution,
        "within_budget": overhead < 0.05,
        "verdict": _budget_verdict(overhead, resolution, 0.05),
    }


def bench_telemetry(quick: bool) -> dict:
    """Cross-process trace merging and full-telemetry serving overhead.

    Merging: a ``process``-backend parallel resolve under a recorder
    must ship worker spans and kernel-dispatch counters back to the
    driver trace.  Overhead: best-of-N serving of the query stream with
    provenance sampling at rate 1.0 while a live metrics endpoint runs
    (scraped and validated after the timed passes) vs a bare engine.
    """
    import urllib.request

    from repro.core.config import MinoanERConfig  # noqa: E402
    from repro.obs import MetricsServer, Recorder, use_recorder  # noqa: E402
    from repro.parallel.context import ParallelContext  # noqa: E402
    from repro.parallel.pipeline import ParallelMinoanER  # noqa: E402
    from repro.serving import MatchEngine, ResolutionIndex  # noqa: E402

    scale = 0.3 if quick else None
    pair = scaled_profile("restaurant", scale) if scale else load_profile("restaurant")
    repeats = 3 if quick else 13

    recorder = Recorder()
    with use_recorder(recorder):
        with ParallelContext(num_workers=2, backend="process") as context:
            ParallelMinoanER(MinoanERConfig(), context).resolve(pair.kb1, pair.kb2)
    spans = recorder.spans()
    workers = [span for span in spans if span.name == "worker"]
    merged_trace = {
        "trace_id": recorder.trace_id,
        "span_count": len(spans),
        "worker_spans": len(workers),
        "distinct_worker_pids": len(
            {span.attributes.get("pid") for span in workers}
        ),
        "kernel_dispatch_totals": {
            name: value
            for name, value in recorder.counters().items()
            if name.startswith("kernels.dispatch.")
        },
        "phase_cpu_seconds": {
            name: value
            for name, value in recorder.gauges().items()
            if name.endswith(".cpu_seconds")
        },
    }

    # Caching off so every query pays the full matching path; queries
    # are re-answered per repeat either way.
    queries = list(pair.kb1)[: 100 if quick else 300]
    bare = MatchEngine(
        ResolutionIndex.build(pair.kb2, MinoanERConfig(serving_cache_size=0))
    )
    instrumented = MatchEngine(
        ResolutionIndex.build(
            pair.kb2,
            MinoanERConfig(serving_cache_size=0, provenance_sample_rate=1.0),
        )
    )

    for entity in queries[:10]:  # warm-up, both engines
        bare.match(entity)
        instrumented.match(entity)

    with MetricsServer(instrumented.recorder) as server:
        url = f"http://127.0.0.1:{server.port}/metrics"

        # The endpoint thread stays live during the timed passes (its
        # idle cost is part of the overhead claim) but the scrape
        # itself -- a loopback HTTP round-trip that costs milliseconds
        # on a busy one-core runner -- is validated outside the timed
        # window: it is a separate request path, not per-query work.
        baseline_s, telemetry_s, ratio, resolution = _ab_best(
            lambda: [bare.match(entity) for entity in queries],
            lambda: [instrumented.match(entity) for entity in queries],
            repeats,
        )
        with urllib.request.urlopen(url, timeout=10) as response:
            scrape = response.read().decode("utf-8")
    endpoint_valid = (
        "serving_queries_total" in scrape
        and 'serving_latency_ms{quantile="0.5"}' in scrape
        and 'serving_latency_ms{quantile="0.99"}' in scrape
    )
    overhead = ratio - 1.0
    return {
        "profile": "restaurant",
        "scale": scale,
        "repeats": repeats,
        "queries": len(queries),
        "merged_process_trace": merged_trace,
        "provenance_sampled": instrumented.recorder.counter_value(
            "serving.provenance_sampled"
        ),
        "metrics_endpoint_valid": endpoint_valid,
        "bare_best_ms": baseline_s * 1e3,
        "telemetry_best_ms": telemetry_s * 1e3,
        "overhead_fraction": overhead,
        "overhead_budget": 0.05,
        "overhead_resolution": resolution,
        "within_budget": overhead < 0.05,
        "verdict": _budget_verdict(overhead, resolution, 0.05),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="bbc_dbpedia", choices=profile_names())
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_PR6.json",
        help="where to write the JSON record",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: scaled-down profiles, fewer repeats",
    )
    args = parser.parse_args(argv)

    scale = 0.2 if args.quick else None
    repeats = min(args.repeats, 3) if args.quick else args.repeats
    identity_profiles = ["restaurant", "bbc_dbpedia"] if args.quick else list(profile_names())

    micro = time_micro_kernels(args.profile, repeats, scale)
    identity = verify_bit_identity(identity_profiles, scale)
    serving = bench_serving_trajectory(args.quick)
    observability = bench_observability(args.quick)
    resilience = bench_resilience(args.quick)
    telemetry = bench_telemetry(args.quick)
    index_format = bench_index_format(args.quick)

    record = {
        "pr": 6,
        "title": (
            "memory-mapped zero-copy resolution index: columnar CSR "
            "persistence, shared read-only pages, fused single-row top-K"
        ),
        "python": platform.python_version(),
        "auto_backend": resolve_backend_name("auto"),
        "k": K,
        "quick": args.quick,
        "micro_kernels": micro,
        "bit_identical": identity,
        "serving": serving,
        "observability": observability,
        "resilience": resilience,
        "telemetry": telemetry,
        "index_format": index_format,
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    auto = record["auto_backend"]
    print(f"auto backend: {auto}")
    for kernel, ratio in micro["speedup_vs_reference"][auto].items():
        print(f"  {kernel}: {ratio:.2f}x vs dict reference")
    failures = [
        f"{profile}/{backend}"
        for profile, backends in identity.items()
        for backend, ok in backends.items()
        if not ok
    ]
    if failures:
        print(f"BIT-IDENTITY FAILED: {', '.join(failures)}")
        return 1
    print(f"bit-identical on: {', '.join(identity)}")
    single = serving["single"]
    print(
        f"serving ({serving['profile']}): cold p50 {single['cold']['p50_ms']:.3f}ms / "
        f"p95 {single['cold']['p95_ms']:.3f}ms ({single['cold']['qps']:.0f} q/s), "
        f"batch {serving['batch']['qps']:.0f} q/s"
    )
    if not serving["equivalence"]["identical"]:
        print("SERVING EQUIVALENCE FAILED")
        return 1
    print(f"serving equivalence: ok ({serving['equivalence']['batch_matches']} matches)")
    overhead_pct = observability["overhead_fraction"] * 100
    print(
        f"tracing overhead ({observability['profile']}): {overhead_pct:+.2f}% "
        f"({observability['span_count']} spans)"
    )
    # Timing noise dominates on the scaled --quick profile; gate only
    # the full-size measurement.
    if not args.quick and observability["verdict"] == "fail":
        print("TRACING OVERHEAD OVER BUDGET (>= 5%)")
        return 1
    if not args.quick and observability["verdict"] == "inconclusive":
        print(
            "  (over budget but within measurement resolution "
            f"{observability['overhead_resolution'] * 100:.1f}pp -- inconclusive, not gating)"
        )
    chaos = resilience["chaos"]
    print(
        f"chaos retry ({resilience['profile']}): {chaos['faults_fired']} fault(s), "
        f"{chaos['retry_attempts']:.0f} retries, "
        f"identical={chaos['identical_to_clean']}"
    )
    if not chaos["identical_to_clean"]:
        print("CHAOS EQUIVALENCE FAILED: retried run diverged from clean run")
        return 1
    if chaos["retry_attempts"] < 1:
        print("CHAOS SMOKE FAILED: no retries fired under the chaos plan")
        return 1
    resilience_pct = resilience["overhead_fraction"] * 100
    print(f"resilience armed-path overhead: {resilience_pct:+.2f}%")
    if not args.quick and resilience["verdict"] == "fail":
        print("RESILIENCE OVERHEAD OVER BUDGET (>= 5%)")
        return 1
    if not args.quick and resilience["verdict"] == "inconclusive":
        print(
            "  (over budget but within measurement resolution "
            f"{resilience['overhead_resolution'] * 100:.1f}pp -- inconclusive, not gating)"
        )
    merged = telemetry["merged_process_trace"]
    print(
        f"merged process trace: {merged['worker_spans']} worker spans from "
        f"{merged['distinct_worker_pids']} pid(s), "
        f"{len(merged['kernel_dispatch_totals'])} dispatch counter(s)"
    )
    if merged["worker_spans"] < 1 or merged["distinct_worker_pids"] < 1:
        print("TRACE MERGING FAILED: no worker spans in the driver trace")
        return 1
    if not merged["kernel_dispatch_totals"]:
        print("TRACE MERGING FAILED: no kernel counters shipped back")
        return 1
    if not telemetry["metrics_endpoint_valid"]:
        print("METRICS ENDPOINT INVALID: missing counters or latency quantiles")
        return 1
    telemetry_pct = telemetry["overhead_fraction"] * 100
    print(
        f"serving telemetry overhead (provenance 1.0 + metrics endpoint): "
        f"{telemetry_pct:+.2f}% over {telemetry['queries']} queries"
    )
    if not args.quick and telemetry["verdict"] == "fail":
        print("TELEMETRY OVERHEAD OVER BUDGET (>= 5%)")
        return 1
    if not args.quick and telemetry["verdict"] == "inconclusive":
        print(
            "  (over budget but within measurement resolution "
            f"{telemetry['overhead_resolution'] * 100:.1f}pp -- inconclusive, not gating)"
        )
    largest = index_format["points"][-1]
    spread = index_format["mmap_load_spread"]
    print(
        f"index sweep (yago_imdb, n2 up to {largest['n2']}): "
        f"eager load {largest['eager']['load_ms_best']:.1f}ms vs "
        + (
            f"mmap {largest['mmap']['load_ms_best']:.2f}ms "
            f"(spread {spread:.2f}x across sizes)"
            if spread is not None
            else "mmap unavailable (no numpy)"
        )
    )
    if not index_format["decisions_identical"]:
        print("INDEX SWEEP EQUIVALENCE FAILED: mmap decisions != eager")
        return 1
    # Size-scaling gate only on the full 25x sweep; the quick grid is
    # too narrow (and too noisy) to witness O(1) vs O(n).
    if not args.quick and spread is not None and not index_format["mmap_load_flat"]:
        print("INDEX SWEEP FAILED: mmap load time scales with index size")
        return 1
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
