"""Shared benchmark fixtures: the four calibrated profiles, generated once.

Every bench regenerates one of the paper's tables/figures on the four
synthetic benchmark profiles and writes the paper-style table to
``benchmarks/results/<artifact>.txt`` (also echoed to stdout, visible
with ``pytest -s``).  Timings are recorded by pytest-benchmark with a
single round: the interesting output is the table, not microsecond
noise.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets.profiles import load_profile, profile_names

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profiles():
    """All four benchmark KB pairs, keyed by profile name."""
    return {name: load_profile(name) for name in profile_names()}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, artifact: str, table: str) -> None:
    """Persist a rendered table and echo it."""
    path = results_dir / f"{artifact}.txt"
    path.write_text(table + "\n", encoding="utf-8")
    print()
    print(table)
