"""Benchmark the online serving engine: latency, throughput, equivalence.

Measures, on one benchmark profile:

* index build time and save/load round-trip time (plus file size);
* single-query latency -- cold (cache cleared between queries) and warm
  (repeated query mix) -- reported as p50/p95/mean milliseconds and
  queries/second;
* batch throughput of ``match_batch`` over the whole of KB1;
* the batch/serve equivalence verdict: serving all of KB1 in one batch
  must reproduce ``MinoanER.resolve`` exactly.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --quick  # CI smoke

``--quick`` scales the profile down and caps the query count so the
benchmark finishes in seconds on CI runners.  The process exits nonzero
if the equivalence check fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.pipeline import MinoanER  # noqa: E402
from repro.datasets.profiles import load_profile, profile_names, scaled_profile  # noqa: E402
from repro.serving import MatchEngine, ResolutionIndex  # noqa: E402


def _percentile(ordered: list[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _latency_summary(samples_ms: list[float]) -> dict:
    ordered = sorted(samples_ms)
    total_s = sum(samples_ms) / 1e3
    return {
        "queries": len(samples_ms),
        "p50_ms": _percentile(ordered, 0.50),
        "p95_ms": _percentile(ordered, 0.95),
        "mean_ms": (sum(samples_ms) / len(samples_ms)) if samples_ms else 0.0,
        "qps": (len(samples_ms) / total_s) if total_s > 0 else 0.0,
    }


def bench_build_and_persistence(pair, tmp_dir: Path) -> tuple[ResolutionIndex, dict]:
    started = time.perf_counter()
    index = ResolutionIndex.build(pair.kb2)
    build_s = time.perf_counter() - started

    path = tmp_dir / "bench.idx"
    started = time.perf_counter()
    index.save(path)
    save_s = time.perf_counter() - started
    started = time.perf_counter()
    loaded = ResolutionIndex.load(path)
    load_s = time.perf_counter() - started

    return loaded, {
        "build_ms": build_s * 1e3,
        "save_ms": save_s * 1e3,
        "load_ms": load_s * 1e3,
        "file_bytes": path.stat().st_size,
        "entities": index.n2,
        "tokens": len(index.postings),
    }


def bench_single_queries(index: ResolutionIndex, queries: list) -> dict:
    # Cold: every query misses (cache cleared each time).
    engine = MatchEngine(index)
    cold: list[float] = []
    for entity in queries:
        engine.cache.clear()
        started = time.perf_counter()
        engine.match(entity)
        cold.append((time.perf_counter() - started) * 1e3)

    # Warm: prime the cache with the whole mix, then measure a second
    # pass -- every query hits.
    engine.cache.clear()
    for entity in queries:
        engine.match(entity)
    warm: list[float] = []
    for entity in queries:
        started = time.perf_counter()
        engine.match(entity)
        warm.append((time.perf_counter() - started) * 1e3)

    stats = engine.stats()
    return {
        "cold": _latency_summary(cold),
        "warm": _latency_summary(warm),
        "cache": stats["cache"],
        "candidates_mean": stats["candidates_mean"],
        "candidates_max": stats["candidates_max"],
    }


def bench_batch(index: ResolutionIndex, pair) -> dict:
    engine = MatchEngine(index)
    entities = list(pair.kb1)
    started = time.perf_counter()
    decisions = engine.match_batch(entities)
    elapsed_s = time.perf_counter() - started
    matched = sum(1 for d in decisions if d.matched)
    return {
        "queries": len(entities),
        "total_ms": elapsed_s * 1e3,
        "qps": len(entities) / elapsed_s if elapsed_s > 0 else 0.0,
        "matched": matched,
    }


def verify_equivalence(index: ResolutionIndex, pair) -> dict:
    batch = MinoanER(index.config).resolve(pair.kb1, pair.kb2)
    decisions = MatchEngine(index).match_batch(list(pair.kb1))
    served = {
        (eid1, d.kb2_id) for eid1, d in enumerate(decisions) if d.matched
    }
    return {
        "batch_matches": len(batch.matches),
        "served_matches": len(served),
        "identical": served == batch.matches,
    }


def run(profile: str, scale: float | None, max_queries: int, tmp_dir: Path) -> dict:
    pair = scaled_profile(profile, scale) if scale else load_profile(profile)
    index, persistence = bench_build_and_persistence(pair, tmp_dir)
    queries = list(pair.kb1)[:max_queries]
    return {
        "profile": profile,
        "scale": scale,
        "n1": len(pair.kb1),
        "n2": len(pair.kb2),
        "index": persistence,
        "single": bench_single_queries(index, queries),
        "batch": bench_batch(index, pair),
        "equivalence": verify_equivalence(index, pair),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="restaurant", choices=profile_names())
    parser.add_argument(
        "--max-queries", type=int, default=500,
        help="cap on single-query latency samples (default %(default)s)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the JSON record here (default: print to stdout only)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: scaled profile, 100 queries",
    )
    args = parser.parse_args(argv)

    scale = 0.3 if args.quick else None
    max_queries = 100 if args.quick else args.max_queries

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        result = run(args.profile, scale, max_queries, Path(tmp))

    record = {
        "benchmark": "serving",
        "python": platform.python_version(),
        "quick": args.quick,
        "result": result,
    }
    if args.output:
        args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    single = result["single"]
    batch = result["batch"]
    print(
        f"{result['profile']} (n1={result['n1']}, n2={result['n2']}): "
        f"index build {result['index']['build_ms']:.1f}ms, "
        f"{result['index']['file_bytes'] / 1024:.0f}KiB on disk"
    )
    print(
        f"  single cold: p50 {single['cold']['p50_ms']:.3f}ms, "
        f"p95 {single['cold']['p95_ms']:.3f}ms, {single['cold']['qps']:.0f} q/s"
    )
    print(
        f"  single warm: p50 {single['warm']['p50_ms']:.3f}ms, "
        f"p95 {single['warm']['p95_ms']:.3f}ms, {single['warm']['qps']:.0f} q/s"
    )
    print(
        f"  batch: {batch['queries']} queries in {batch['total_ms']:.1f}ms "
        f"({batch['qps']:.0f} q/s), {batch['matched']} matched"
    )
    equivalence = result["equivalence"]
    if not equivalence["identical"]:
        print(
            f"EQUIVALENCE FAILED: served {equivalence['served_matches']} != "
            f"batch {equivalence['batch_matches']}"
        )
        return 1
    print(
        f"  equivalence: serving == batch "
        f"({equivalence['batch_matches']} matches)"
    )
    if args.output:
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
