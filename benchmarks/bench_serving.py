"""Benchmark the online serving engine: latency, throughput, equivalence.

Measures, on one benchmark profile:

* index build time and save/load round-trip time (plus file size) --
  eager decode and, when numpy is importable, the zero-copy
  ``load(mmap=True)`` path;
* single-query latency -- cold (cache cleared between queries) and warm
  (repeated query mix) -- reported as p50/p95/mean milliseconds and
  queries/second;
* batch throughput of ``match_batch`` over the whole of KB1;
* the batch/serve equivalence verdict: serving all of KB1 in one batch
  must reproduce ``MinoanER.resolve`` exactly.

``--index-mmap`` serves the latency/throughput sections from the
memory-mapped index instead of the eager decode.

``--shards N`` (optionally ``--replicas R``) serves the latency,
throughput and equivalence sections through a
:class:`repro.sharding.ShardRouter` over N spawned worker processes
instead of a single in-process engine -- decisions must stay
bit-identical, so the equivalence gate covers the scatter/gather tier
too.

``--shard-sweep`` measures shard scaling instead: one ``yago_imdb``
index (``--shard-n2`` KB2 entities, default 100k) served through
routers of (by default) 1, 2 and 4 shards, reporting per-count
single-query wall p50/p95/p99, *critical-path* p50/p99, queries/second,
batch throughput, hedge counts, and a router-vs-engine
decision-equality verdict.  The critical path of one scatter-gather --
router-local work + one wire hop + the slowest shard's self-timed
compute, every term measured in-run -- is what a query would cost on a
deployment where each worker owns a core; per-query wall clock on a
shared-core host instead serialises the N round trips and is reported
alongside.  The summary flags whether critical-path p99 stays flat or
improves from 1 shard to the largest count -- the acceptance gate for
the sharded tier (scatter overhead must not regress tail latency).

``--sweep`` runs the index-size sweep instead: scaled ``yago_imdb``
pairs at KB2 sizes of (by default) 4k, 32k and 100k entities, each
measuring eager vs mmap load time (best of 3), on-disk size, driver
RSS, the resident-set growth of two fresh reader processes
(fork + exec) that each open the same index file and serve 25 queries,
warm single-query p50, and an eager-vs-mmap decision-equality verdict.  The
point of the sweep: mmap load time stays O(1) in index size (page
mapping, no decode) while eager load grows linearly, and mmap readers
touch read-only file-backed pages the kernel shares across processes
instead of each materialising a private decoded copy.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --index-mmap
    PYTHONPATH=src python benchmarks/bench_serving.py --shards 3 --replicas 2
    PYTHONPATH=src python benchmarks/bench_serving.py --sweep --output BENCH_PR6.json
    PYTHONPATH=src python benchmarks/bench_serving.py --shard-sweep --output BENCH_PR7.json
    PYTHONPATH=src python benchmarks/bench_serving.py --quick  # CI smoke

``--quick`` scales the profile down and caps the query count so the
benchmark finishes in seconds on CI runners (with ``--sweep`` it
shrinks the size grid).  The process exits nonzero if an equivalence
check fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.pipeline import MinoanER  # noqa: E402
from repro.datasets.profiles import load_profile, profile_names, scaled_profile  # noqa: E402
from repro.kernels import numpy_available  # noqa: E402
from repro.serving import MatchEngine, ResolutionIndex  # noqa: E402

#: KB2 entity count of the unscaled ``yago_imdb`` profile; sweep sizes
#: are expressed as absolute n2 targets and converted to scales.
YAGO_IMDB_BASE_N2 = 7000


def _percentile(ordered: list[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _latency_summary(samples_ms: list[float]) -> dict:
    ordered = sorted(samples_ms)
    total_s = sum(samples_ms) / 1e3
    return {
        "queries": len(samples_ms),
        "p50_ms": _percentile(ordered, 0.50),
        "p95_ms": _percentile(ordered, 0.95),
        "mean_ms": (sum(samples_ms) / len(samples_ms)) if samples_ms else 0.0,
        "qps": (len(samples_ms) / total_s) if total_s > 0 else 0.0,
    }


def bench_build_and_persistence(
    pair, tmp_dir: Path, index_mmap: bool = False
) -> tuple[ResolutionIndex, dict]:
    started = time.perf_counter()
    index = ResolutionIndex.build(pair.kb2)
    build_s = time.perf_counter() - started

    path = tmp_dir / "bench.idx"
    started = time.perf_counter()
    index.save(path)
    save_s = time.perf_counter() - started
    started = time.perf_counter()
    loaded = ResolutionIndex.load(path)
    load_s = time.perf_counter() - started

    stats = {
        "build_ms": build_s * 1e3,
        "save_ms": save_s * 1e3,
        "load_ms": load_s * 1e3,
        "mmap_load_ms": None,
        "served_mmap": False,
        "file_bytes": path.stat().st_size,
        "entities": index.n2,
        "tokens": len(index.postings),
    }
    serving = loaded
    if numpy_available():
        started = time.perf_counter()
        mapped = ResolutionIndex.load(path, mmap=True)
        stats["mmap_load_ms"] = (time.perf_counter() - started) * 1e3
        if index_mmap:
            serving = mapped
            stats["served_mmap"] = True
    elif index_mmap:
        print("warning: --index-mmap requires numpy; serving eager", file=sys.stderr)
    return serving, stats


def bench_single_queries(
    index: ResolutionIndex, queries: list, engine: MatchEngine | None = None
) -> dict:
    # Cold: every query misses (cache cleared each time).
    engine = engine or MatchEngine(index)
    cold: list[float] = []
    for entity in queries:
        engine.cache.clear()
        started = time.perf_counter()
        engine.match(entity)
        cold.append((time.perf_counter() - started) * 1e3)

    # Warm: prime the cache with the whole mix, then measure a second
    # pass -- every query hits.
    engine.cache.clear()
    for entity in queries:
        engine.match(entity)
    warm: list[float] = []
    for entity in queries:
        started = time.perf_counter()
        engine.match(entity)
        warm.append((time.perf_counter() - started) * 1e3)

    stats = engine.stats()
    return {
        "cold": _latency_summary(cold),
        "warm": _latency_summary(warm),
        "cache": stats["cache"],
        "candidates_mean": stats["candidates_mean"],
        "candidates_max": stats["candidates_max"],
    }


def bench_batch(
    index: ResolutionIndex, pair, engine: MatchEngine | None = None
) -> dict:
    engine = engine or MatchEngine(index)
    entities = list(pair.kb1)
    started = time.perf_counter()
    decisions = engine.match_batch(entities)
    elapsed_s = time.perf_counter() - started
    matched = sum(1 for d in decisions if d.matched)
    return {
        "queries": len(entities),
        "total_ms": elapsed_s * 1e3,
        "qps": len(entities) / elapsed_s if elapsed_s > 0 else 0.0,
        "matched": matched,
    }


def verify_equivalence(
    index: ResolutionIndex, pair, engine: MatchEngine | None = None
) -> dict:
    batch = MinoanER(index.config).resolve(pair.kb1, pair.kb2)
    engine = engine or MatchEngine(index)
    decisions = engine.match_batch(list(pair.kb1))
    served = {
        (eid1, d.kb2_id) for eid1, d in enumerate(decisions) if d.matched
    }
    return {
        "batch_matches": len(batch.matches),
        "served_matches": len(served),
        "identical": served == batch.matches,
    }


def _spawn_router(path: Path, shards: int, replicas: int, index=None):
    from repro.sharding import ShardPlanner, ShardRouter

    if index is not None:
        ShardPlanner(shards).write(index, path)
    return ShardRouter.spawn(
        path, shards, replicas=replicas, mmap=numpy_available(), index=index
    )


def run(
    profile: str,
    scale: float | None,
    max_queries: int,
    tmp_dir: Path,
    index_mmap: bool = False,
    shards: int = 0,
    replicas: int = 1,
) -> dict:
    pair = scaled_profile(profile, scale) if scale else load_profile(profile)
    index, persistence = bench_build_and_persistence(pair, tmp_dir, index_mmap)
    queries = list(pair.kb1)[:max_queries]
    router = None
    if shards:
        router = _spawn_router(tmp_dir / "bench.idx", shards, replicas, index)
    try:
        result = {
            "profile": profile,
            "scale": scale,
            "n1": len(pair.kb1),
            "n2": len(pair.kb2),
            "shards": shards or None,
            "replicas": replicas if shards else None,
            "index": persistence,
            "single": bench_single_queries(index, queries, engine=router),
            "batch": bench_batch(index, pair, engine=router),
            "equivalence": verify_equivalence(index, pair, engine=router),
        }
        if router is not None:
            result["sharding"] = router.stats()["sharding"]
    finally:
        if router is not None:
            router.close()
    return result


# ---------------------------------------------------------------------------
# Index-size sweep: O(1) mmap loads and shared read-only pages.
# ---------------------------------------------------------------------------


def _vm_rss_kb() -> int:
    """Current resident set size in KiB (Linux; ru_maxrss fallback)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


#: Runs inside a fresh interpreter (fork + exec).  A bare ``os.fork``
#: child inherits the driver's resident heap copy-on-write and hides
#: the decode cost inside reused allocator arenas, and the *parent*-side
#: ``wait4`` ru_maxrss includes the pre-exec window where the child
#: still shares the driver's address space -- so the child measures its
#: own ``/proc/self/status`` after imports instead.  ``rss_delta_kb``
#: is resident growth from just-before-load to after-serving: the eager
#: reader pays the full privately-decoded index per process; the mmap
#: reader pays only the file-backed pages it touches, which the kernel
#: shares with every other process mapping the same index file.
_READER_SCRIPT = """
import json, sys, time
sys.path.insert(0, sys.argv[1])


def rss_kb(field):
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith(field + ":"):
                return int(line.split()[1])
    return 0


try:
    import numpy  # noqa: F401  -- pay the import before the baseline
except ImportError:
    pass
from repro.serving import MatchEngine, ResolutionIndex
from repro.serving.io import read_requests

path, use_mmap, queries_path = sys.argv[2], sys.argv[3] == "1", sys.argv[4]
with open(queries_path, encoding="utf-8") as handle:
    queries = list(read_requests(handle))
baseline_kb = rss_kb("VmRSS")
started = time.perf_counter()
index = ResolutionIndex.load(path, mmap=use_mmap)
load_ms = (time.perf_counter() - started) * 1e3
engine = MatchEngine(index)
matched = sum(1 for entity in queries if engine.match(entity).matched)
print(json.dumps({
    "load_ms": load_ms,
    "rss_delta_kb": max(0, rss_kb("VmRSS") - baseline_kb),
    "peak_rss_kb": rss_kb("VmHWM"),
    "matched": matched,
}))
"""


def _reader_stats(path: Path, mmap: bool, queries_path: Path) -> dict:
    """Serve the query file from a fresh reader process; report its RSS."""
    import subprocess

    command = [
        sys.executable, "-c", _READER_SCRIPT,
        str(REPO_ROOT / "src"), str(path), "1" if mmap else "0",
        str(queries_path),
    ]
    completed = subprocess.run(
        command, capture_output=True, text=True, check=False
    )
    if completed.returncode != 0 or not completed.stdout.strip():
        raise RuntimeError(
            f"index reader failed (status {completed.returncode}): "
            f"{completed.stderr.strip()[-500:]}"
        )
    return json.loads(completed.stdout)


def _load_mode_stats(
    path: Path, mmap: bool, queries: list, queries_path: Path, readers: int
) -> tuple[dict, MatchEngine]:
    load_samples = []
    loaded = None
    for _ in range(3):
        started = time.perf_counter()
        loaded = ResolutionIndex.load(path, mmap=mmap)
        load_samples.append((time.perf_counter() - started) * 1e3)

    engine = MatchEngine(loaded)
    for entity in queries:
        engine.match(entity)
    warm = []
    for entity in queries:
        started = time.perf_counter()
        engine.match(entity)
        warm.append((time.perf_counter() - started) * 1e3)

    stats = {
        "load_ms_best": min(load_samples),
        "load_ms_samples": load_samples,
        "warm_p50_ms": _percentile(sorted(warm), 0.50),
        "driver_rss_kb": _vm_rss_kb(),
        "readers": [
            _reader_stats(path, mmap, queries_path) for _ in range(readers)
        ],
    }
    return stats, engine


def bench_index_sweep(
    sizes: list[int], max_queries: int, tmp_dir: Path, readers: int = 2
) -> dict:
    points = []
    for target in sizes:
        pair = scaled_profile("yago_imdb", target / YAGO_IMDB_BASE_N2)
        built = ResolutionIndex.build(pair.kb2)
        path = tmp_dir / f"yago_imdb_{target}.idx"
        built.save(path)
        queries = list(pair.kb1)[:max_queries]

        from repro.serving.io import entity_to_json

        queries_path = tmp_dir / f"yago_imdb_{target}_queries.jsonl"
        with open(queries_path, "w", encoding="utf-8") as handle:
            for entity in queries[:25]:
                handle.write(json.dumps(entity_to_json(entity)) + "\n")

        point = {
            "target_n2": target,
            "n2": built.n2,
            "tokens": len(built.postings),
            "file_bytes": path.stat().st_size,
        }
        eager_stats, eager_engine = _load_mode_stats(
            path, False, queries, queries_path, readers
        )
        point["eager"] = eager_stats
        if numpy_available():
            mmap_stats, mapped_engine = _load_mode_stats(
                path, True, queries, queries_path, readers
            )
            point["mmap"] = mmap_stats
            point["decisions_identical"] = (
                eager_engine.match_batch(queries)
                == mapped_engine.match_batch(queries)
            )
        points.append(point)

    mmap_bests = [p["mmap"]["load_ms_best"] for p in points if "mmap" in p]
    spread = (
        max(mmap_bests) / min(mmap_bests)
        if mmap_bests and min(mmap_bests) > 0
        else None
    )
    return {
        "profile": "yago_imdb",
        "sizes": sizes,
        "queries_per_point": max_queries,
        "readers_per_mode": readers,
        "points": points,
        "mmap_load_spread": spread,
        # Acceptance gate: mmap load time must not scale with index
        # size.  (< 2x across a 25x size range vs linear eager decode.)
        "mmap_load_flat": spread is not None and spread < 2.0,
        "decisions_identical": all(
            p.get("decisions_identical", True) for p in points
        ),
    }


# ---------------------------------------------------------------------------
# Shard-scaling sweep: tail latency across router widths.
# ---------------------------------------------------------------------------


def bench_shard_sweep(
    counts: list[int],
    replicas: int,
    target_n2: int,
    max_queries: int,
    tmp_dir: Path,
) -> dict:
    from repro.sharding import ShardPlanner, ShardRouter

    pair = scaled_profile("yago_imdb", target_n2 / YAGO_IMDB_BASE_N2)
    built = ResolutionIndex.build(pair.kb2)
    path = tmp_dir / "yago_shard.idx"
    built.save(path)
    queries = list(pair.kb1)[:max_queries]

    engine = MatchEngine(built)
    baseline = []
    engine_samples: list[float] = []
    for entity in queries:
        engine.cache.clear()
        started = time.perf_counter()
        baseline.append(engine.match(entity))
        engine_samples.append((time.perf_counter() - started) * 1e3)
    engine_ordered = sorted(engine_samples)
    # Batch throughput over a bounded slice: a full 100k-scale KB1
    # would dominate the sweep's wall clock without changing the
    # verdict (batch semantics are defined on the batch itself, so
    # equality over the slice is a valid equivalence check).
    batch_entities = list(pair.kb1)[: max(1000, len(queries))]
    baseline_batch = engine.match_batch(batch_entities)

    # Per query, each configuration is timed ``trials`` times and every
    # critical-path term keeps its per-trial minimum *independently*
    # (per-shard service minima are taken before the max over shards):
    # a scatter-gather's tail on a shared-core host is the max of N
    # noisy scheduler draws, and min-of-trials per term is the standard
    # repeat-min estimator of each term's true cost.
    trials = 7
    points = []
    for count in counts:
        ShardPlanner(count).write(built, path)
        router = ShardRouter.spawn(
            path, count, replicas=replicas, mmap=numpy_available(), index=built
        )
        try:
            wire_floor = router.wire_floor_ms()
            for entity in queries[:100]:
                router.cache.clear()
                router.match(entity)
            gc.collect()
            decisions = []
            samples: list[float] = []
            criticals: list[float] = []
            for entity in queries:
                best_wall: float | None = None
                best_local: float | None = None
                best_service: list[float | None] = [None] * count
                pooled = False
                for _ in range(trials):
                    router.cache.clear()
                    started = time.perf_counter()
                    decision = router.match(entity)
                    wall = (time.perf_counter() - started) * 1e3
                    best_wall = wall if best_wall is None else min(best_wall, wall)
                    round_trips = router.last_shard_ms
                    if round_trips is None:
                        # Pool scatter (multi-core host): the round trips
                        # overlap, so wall clock *is* the critical path.
                        pooled = True
                        continue
                    local = wall - sum(round_trips)
                    best_local = (
                        local if best_local is None else min(best_local, local)
                    )
                    for slot, service in enumerate(router.last_service_ms or []):
                        if service is None:
                            continue
                        known = best_service[slot]
                        best_service[slot] = (
                            service if known is None else min(known, service)
                        )
                decisions.append(decision)
                samples.append(best_wall)
                if pooled or best_local is None:
                    criticals.append(best_wall)
                else:
                    slowest = max(
                        (s for s in best_service if s is not None), default=0.0
                    )
                    criticals.append(best_local + wire_floor + slowest)
            started = time.perf_counter()
            batch = router.match_batch(batch_entities)
            batch_s = time.perf_counter() - started
            sharding = router.stats()["sharding"]
        finally:
            router.close()
        ordered = sorted(samples)
        crit_ordered = sorted(criticals)
        points.append({
            "shards": count,
            "replicas": replicas,
            "trials_per_query": trials,
            "wire_floor_ms": wire_floor,
            "p50_ms": _percentile(ordered, 0.50),
            "p95_ms": _percentile(ordered, 0.95),
            "p99_ms": _percentile(ordered, 0.99),
            "mean_ms": sum(samples) / len(samples),
            "critical_p50_ms": _percentile(crit_ordered, 0.50),
            "critical_p99_ms": _percentile(crit_ordered, 0.99),
            "qps": len(samples) / (sum(samples) / 1e3),
            "batch_queries": len(batch_entities),
            "batch_qps": len(batch_entities) / batch_s if batch_s > 0 else 0.0,
            "hedge_fired": sharding["hedge_fired"],
            "hedge_won": sharding["hedge_won"],
            "requests": sharding["requests"],
            "decisions_identical": decisions == baseline
            and batch == baseline_batch,
        })

    # One hedged configuration at the widest count: replicated workers
    # with zero hedge delay, so every request races two replicas and
    # the win rate is measurable (replicas=1 never hedges).
    widest = max(counts)
    hedged = None
    if replicas == 1:
        ShardPlanner(widest).write(built, path)
        router = ShardRouter.spawn(
            path,
            widest,
            replicas=2,
            mmap=numpy_available(),
            config=built.config.with_options(serving_hedge_ms=0.0),
            index=built,
        )
        try:
            decisions = []
            samples = []
            for entity in queries:
                router.cache.clear()
                started = time.perf_counter()
                decisions.append(router.match(entity))
                samples.append((time.perf_counter() - started) * 1e3)
            sharding = router.stats()["sharding"]
        finally:
            router.close()
        ordered = sorted(samples)
        hedged = {
            "shards": widest,
            "replicas": 2,
            "hedge_ms": 0.0,
            "p50_ms": _percentile(ordered, 0.50),
            "p99_ms": _percentile(ordered, 0.99),
            "hedge_fired": sharding["hedge_fired"],
            "hedge_won": sharding["hedge_won"],
            "hedge_win_rate": (
                sharding["hedge_won"] / sharding["hedge_fired"]
                if sharding["hedge_fired"]
                else None
            ),
            "decisions_identical": decisions == baseline,
        }

    crit_by_count = {p["shards"]: p["critical_p99_ms"] for p in points}
    wall_by_count = {p["shards"]: p["p99_ms"] for p in points}
    first, last = min(crit_by_count), max(crit_by_count)
    ratio = (
        crit_by_count[last] / crit_by_count[first]
        if crit_by_count.get(first) and first != last
        else None
    )
    wall_ratio = (
        wall_by_count[last] / wall_by_count[first]
        if wall_by_count.get(first) and first != last
        else None
    )
    one_shard = next((p for p in points if p["shards"] == 1), None)
    try:
        host_cpus = len(os.sched_getaffinity(0))
    except AttributeError:
        host_cpus = os.cpu_count() or 1
    return {
        "profile": "yago_imdb",
        "target_n2": target_n2,
        "n2": built.n2,
        "n1": len(pair.kb1),
        "queries": len(queries),
        "counts": counts,
        "host_cpus": host_cpus,
        "engine_p50_ms": _percentile(engine_ordered, 0.50),
        "engine_p99_ms": _percentile(engine_ordered, 0.99),
        # Scatter/gather tax: a 1-shard router pays the full wire
        # round-trip with zero partitioning benefit.
        "router_overhead_p50_ms": (
            one_shard["p50_ms"] - _percentile(engine_ordered, 0.50)
            if one_shard
            else None
        ),
        "points": points,
        "hedged": hedged,
        "critical_path_note": (
            "critical_p50/p99_ms model one scatter-gather as router-local "
            "work + one wire round-trip floor + the slowest shard's "
            "self-timed compute (all terms measured in-run, repeat-min "
            "over trials); on a host with fewer cores than shards the "
            "wall-clock percentiles additionally serialise every round "
            "trip, which no deployment with one core per worker would pay"
        ),
        "p99_ratio_widest_vs_one": ratio,
        "wall_p99_ratio_widest_vs_one": wall_ratio,
        # Acceptance gate: the scatter/gather tier must not regress
        # critical-path tail latency as shards are added (10% tolerance
        # for noise).
        "p99_flat_or_improving": ratio is None or ratio <= 1.10,
        "decisions_identical": all(p["decisions_identical"] for p in points)
        and (hedged is None or hedged["decisions_identical"]),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="restaurant", choices=profile_names())
    parser.add_argument(
        "--max-queries", type=int, default=500,
        help="cap on single-query latency samples (default %(default)s)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the JSON record here (default: print to stdout only)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: scaled profile, 100 queries (smaller sweep grid)",
    )
    parser.add_argument(
        "--index-mmap", action="store_true",
        help="serve the latency/throughput sections from load(mmap=True)",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="run the yago_imdb index-size sweep instead of the profile bench",
    )
    parser.add_argument(
        "--sweep-sizes", default="4000,32000,100000",
        help="comma-separated KB2 entity targets (default %(default)s)",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="serve through a ShardRouter over N worker processes",
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard (with --shards or --shard-sweep)",
    )
    parser.add_argument(
        "--shard-sweep", action="store_true",
        help="run the yago_imdb shard-scaling sweep (p50/p99 vs shard count)",
    )
    parser.add_argument(
        "--shard-counts", default="1,2,4",
        help="comma-separated shard counts for --shard-sweep (default %(default)s)",
    )
    parser.add_argument(
        "--shard-n2", type=int, default=100_000,
        help="KB2 entity target for --shard-sweep (default %(default)s)",
    )
    args = parser.parse_args(argv)

    scale = 0.3 if args.quick else None
    max_queries = 100 if args.quick else args.max_queries

    import tempfile

    if args.shard_sweep:
        counts = [int(c) for c in args.shard_counts.split(",") if c.strip()]
        target_n2 = min(args.shard_n2, 8000) if args.quick else args.shard_n2
        with tempfile.TemporaryDirectory() as tmp:
            sweep = bench_shard_sweep(
                counts, args.replicas, target_n2,
                min(max_queries, 500), Path(tmp),
            )
        record = {
            "benchmark": "serving-shard-sweep",
            "python": platform.python_version(),
            "quick": args.quick,
            "sweep": sweep,
        }
        if args.output:
            args.output.write_text(
                json.dumps(record, indent=2) + "\n", encoding="utf-8"
            )
        print(
            f"yago_imdb n2={sweep['n2']} ({sweep['queries']} queries, "
            f"{args.replicas} replica(s)/shard):"
        )
        for point in sweep["points"]:
            print(
                f"  {point['shards']} shard(s): "
                f"wall p50 {point['p50_ms']:.2f}ms p99 {point['p99_ms']:.2f}ms, "
                f"critical p50 {point['critical_p50_ms']:.2f}ms "
                f"p99 {point['critical_p99_ms']:.2f}ms, "
                f"{point['qps']:.0f} q/s, "
                f"batch {point['batch_qps']:.0f} q/s, "
                f"hedges {point['hedge_fired']} "
                f"({point['hedge_won']} won)"
            )
        if sweep.get("hedged"):
            hedged = sweep["hedged"]
            rate = hedged["hedge_win_rate"]
            print(
                f"  hedged ({hedged['shards']} shards x 2 replicas, 0ms delay): "
                f"p50 {hedged['p50_ms']:.2f}ms, p99 {hedged['p99_ms']:.2f}ms, "
                f"{hedged['hedge_fired']} hedges"
                + (f", {rate:.0%} won" if rate is not None else "")
            )
        print(
            f"unsharded engine: p50 {sweep['engine_p50_ms']:.2f}ms, "
            f"p99 {sweep['engine_p99_ms']:.2f}ms"
            + (
                f"; router overhead +{sweep['router_overhead_p50_ms']:.2f}ms p50"
                if sweep["router_overhead_p50_ms"] is not None
                else ""
            )
        )
        if sweep["p99_ratio_widest_vs_one"] is not None:
            verdict = "flat/improving" if sweep["p99_flat_or_improving"] else "REGRESSED"
            wall_ratio = sweep["wall_p99_ratio_widest_vs_one"]
            print(
                f"critical-path p99 widest vs 1 shard: "
                f"{sweep['p99_ratio_widest_vs_one']:.2f}x ({verdict}); "
                f"wall p99 {wall_ratio:.2f}x on a "
                f"{sweep['host_cpus']}-cpu host"
            )
        if not sweep["decisions_identical"]:
            print("SHARD SWEEP EQUIVALENCE FAILED: sharded decisions diverged")
            return 1
        if args.output:
            print(f"wrote {args.output}")
        return 0

    if args.sweep:
        sizes = [int(s) for s in args.sweep_sizes.split(",") if s.strip()]
        if args.quick:
            sizes = [min(size, 8000) for size in sizes]
            sizes = sorted(set(sizes))
        with tempfile.TemporaryDirectory() as tmp:
            sweep = bench_index_sweep(sizes, min(max_queries, 200), Path(tmp))
        record = {
            "benchmark": "serving-index-sweep",
            "python": platform.python_version(),
            "quick": args.quick,
            "sweep": sweep,
        }
        if args.output:
            args.output.write_text(
                json.dumps(record, indent=2) + "\n", encoding="utf-8"
            )
        for point in sweep["points"]:
            eager = point["eager"]
            line = (
                f"n2={point['n2']}: {point['file_bytes'] / 1024:.0f}KiB, "
                f"eager load {eager['load_ms_best']:.1f}ms "
                f"(reader rss +{eager['readers'][0]['rss_delta_kb']}KiB)"
            )
            if "mmap" in point:
                mm = point["mmap"]
                line += (
                    f", mmap load {mm['load_ms_best']:.2f}ms "
                    f"(reader rss +{mm['readers'][0]['rss_delta_kb']}KiB), "
                    f"warm p50 {mm['warm_p50_ms']:.3f}ms"
                )
            print(line)
        if sweep["mmap_load_spread"] is not None:
            print(
                f"mmap load spread across sizes: "
                f"{sweep['mmap_load_spread']:.2f}x "
                f"({'flat' if sweep['mmap_load_flat'] else 'NOT FLAT'})"
            )
        if not sweep["decisions_identical"]:
            print("SWEEP EQUIVALENCE FAILED: mmap decisions != eager decisions")
            return 1
        if args.output:
            print(f"wrote {args.output}")
        return 0

    with tempfile.TemporaryDirectory() as tmp:
        result = run(
            args.profile, scale, max_queries, Path(tmp), args.index_mmap,
            shards=args.shards, replicas=args.replicas,
        )

    record = {
        "benchmark": "serving",
        "python": platform.python_version(),
        "quick": args.quick,
        "result": result,
    }
    if args.output:
        args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    single = result["single"]
    batch = result["batch"]
    index_stats = result["index"]
    loads = f"load {index_stats['load_ms']:.1f}ms eager"
    if index_stats["mmap_load_ms"] is not None:
        loads += f" / {index_stats['mmap_load_ms']:.2f}ms mmap"
    print(
        f"{result['profile']} (n1={result['n1']}, n2={result['n2']}): "
        f"index build {index_stats['build_ms']:.1f}ms, "
        f"{index_stats['file_bytes'] / 1024:.0f}KiB on disk, {loads}"
        + (" [serving mmap]" if index_stats["served_mmap"] else "")
        + (
            f" [{result['shards']} shards x {result['replicas']} replicas]"
            if result["shards"]
            else ""
        )
    )
    if result.get("sharding"):
        sharding = result["sharding"]
        print(
            f"  sharding: {sharding['requests']:.0f} shard requests, "
            f"{sharding['failures']:.0f} failures, "
            f"hedges {sharding['hedge_fired']:.0f} fired / "
            f"{sharding['hedge_won']:.0f} won"
        )
    print(
        f"  single cold: p50 {single['cold']['p50_ms']:.3f}ms, "
        f"p95 {single['cold']['p95_ms']:.3f}ms, {single['cold']['qps']:.0f} q/s"
    )
    print(
        f"  single warm: p50 {single['warm']['p50_ms']:.3f}ms, "
        f"p95 {single['warm']['p95_ms']:.3f}ms, {single['warm']['qps']:.0f} q/s"
    )
    print(
        f"  batch: {batch['queries']} queries in {batch['total_ms']:.1f}ms "
        f"({batch['qps']:.0f} q/s), {batch['matched']} matched"
    )
    equivalence = result["equivalence"]
    if not equivalence["identical"]:
        print(
            f"EQUIVALENCE FAILED: served {equivalence['served_matches']} != "
            f"batch {equivalence['batch_matches']}"
        )
        return 1
    print(
        f"  equivalence: serving == batch "
        f"({equivalence['batch_matches']} matches)"
    )
    if args.output:
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
