"""Micro-benchmarks of the pipeline's hot kernels.

Unlike the table/figure benches (one-shot experiment regenerations),
these measure the kernels that dominate the pipeline's run time with
proper repetition, so performance regressions show up in the
pytest-benchmark comparison output:

* ``accumulate_beta`` -- the O(||B_T||) value-evidence pass;
* ``neighbor_evidence`` -- gamma propagation through in-neighbors;
* ``retained_beta_edges`` -- the undirected union of pruned beta edges;
* ``top_k_candidates`` -- per-node pruning;
* ``unique_mapping_clustering`` -- the final 1-1 assignment;
* ``KnowledgeBase`` construction -- tokenisation + index building;
* the array kernel layer (:mod:`repro.kernels`) counterparts of the
  beta / fused value / gamma passes, per available backend, so the
  dict-vs-kernel gap is visible in one pytest-benchmark run.
"""

import random

import pytest

from repro.blocking.purging import purge_blocks
from repro.blocking.token_blocking import token_blocks
from repro.clustering.unique_mapping import unique_mapping_clustering
from repro.graph.construction import (
    accumulate_beta,
    neighbor_evidence,
    retained_beta_edges,
    value_evidence,
)
from repro.graph.pruning import top_k_candidates
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.kernels import (
    InternedBlocks,
    available_backends,
    get_backend,
    retained_edge_arrays,
)

KERNEL_BACKENDS = [name for name in available_backends() if name != "dict"]


def test_kb_construction(benchmark, profiles):
    pair = profiles["bbc_dbpedia"]
    entities = list(pair.kb2.entities)
    result = benchmark(lambda: KnowledgeBase(entities, name="rebuild"))
    assert len(result) == len(entities)


def test_beta_accumulation(benchmark, profiles):
    pair = profiles["bbc_dbpedia"]
    blocks = purge_blocks(
        token_blocks(pair.kb1, pair.kb2), cartesian=len(pair.kb1) * len(pair.kb2)
    )
    rows = benchmark(lambda: accumulate_beta(blocks, len(pair.kb1)))
    assert any(rows)


def test_gamma_propagation(benchmark, profiles):
    pair = profiles["bbc_dbpedia"]
    stats1 = KBStatistics(pair.kb1)
    stats2 = KBStatistics(pair.kb2)
    blocks = purge_blocks(
        token_blocks(pair.kb1, pair.kb2), cartesian=len(pair.kb1) * len(pair.kb2)
    )
    value_1, value_2 = value_evidence(blocks, len(pair.kb1), len(pair.kb2), 15)
    edges = retained_beta_edges(value_1, value_2)
    side1, side2 = benchmark(lambda: neighbor_evidence(edges, stats1, stats2, 15))
    assert len(side1) == len(pair.kb1)


def test_retained_edges(benchmark, profiles):
    pair = profiles["bbc_dbpedia"]
    blocks = purge_blocks(
        token_blocks(pair.kb1, pair.kb2), cartesian=len(pair.kb1) * len(pair.kb2)
    )
    value_1, value_2 = value_evidence(blocks, len(pair.kb1), len(pair.kb2), 15)
    edges = benchmark(lambda: retained_beta_edges(value_1, value_2))
    assert edges


def test_value_evidence_fused_dict(benchmark, profiles):
    """Dict-reference baseline of the fused transpose + top-K pass."""
    pair = profiles["bbc_dbpedia"]
    blocks = purge_blocks(
        token_blocks(pair.kb1, pair.kb2), cartesian=len(pair.kb1) * len(pair.kb2)
    )
    side1, side2 = benchmark(
        lambda: value_evidence(blocks, len(pair.kb1), len(pair.kb2), 15)
    )
    assert len(side1) == len(pair.kb1)


@pytest.fixture(scope="module")
def interned_bbc(profiles):
    pair = profiles["bbc_dbpedia"]
    blocks = purge_blocks(
        token_blocks(pair.kb1, pair.kb2), cartesian=len(pair.kb1) * len(pair.kb2)
    )
    return InternedBlocks.from_blocks(blocks, len(pair.kb1), len(pair.kb2))


@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_kernel_beta_accumulation(benchmark, interned_bbc, backend):
    impl = get_backend(backend)
    rows = benchmark(lambda: impl.accumulate_beta(interned_bbc))
    assert any(rows)


@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_kernel_value_topk(benchmark, interned_bbc, backend):
    """Fused beta + transpose + top-K over the interned arrays."""
    impl = get_backend(backend)
    side1, side2 = benchmark(lambda: impl.value_topk(interned_bbc, 15))
    assert len(side1) == interned_bbc.n1


@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_kernel_gamma_topk(benchmark, profiles, interned_bbc, backend):
    """Fused gamma propagation + transpose + top-K over CSR adjacency."""
    pair = profiles["bbc_dbpedia"]
    stats1 = KBStatistics(pair.kb1)
    stats2 = KBStatistics(pair.kb2)
    impl = get_backend(backend)
    value_1, value_2 = impl.value_topk(interned_bbc, 15)
    edges = retained_edge_arrays(value_1, value_2)
    side1, side2 = benchmark(
        lambda: impl.gamma_topk(
            edges, stats1.in_neighbor_csr(), stats2.in_neighbor_csr(), 15
        )
    )
    assert len(side1) == interned_bbc.n1


def test_block_interning(benchmark, profiles):
    pair = profiles["bbc_dbpedia"]
    blocks = purge_blocks(
        token_blocks(pair.kb1, pair.kb2), cartesian=len(pair.kb1) * len(pair.kb2)
    )
    interned = benchmark(lambda: InternedBlocks.from_blocks(blocks, len(pair.kb1), len(pair.kb2)))
    assert interned.n_blocks == len(blocks)


def test_top_k_pruning(benchmark):
    rng = random.Random(3)
    rows = [
        {rng.randrange(5000): rng.random() * 3 for _ in range(rng.randrange(1, 120))}
        for _ in range(2000)
    ]
    result = benchmark(lambda: [top_k_candidates(row, 15) for row in rows])
    assert len(result) == len(rows)


def test_unique_mapping(benchmark):
    rng = random.Random(4)
    scored = [
        (rng.randrange(3000), rng.randrange(3000), rng.random()) for _ in range(40_000)
    ]
    matches = benchmark(lambda: unique_mapping_clustering(scored))
    assert matches
