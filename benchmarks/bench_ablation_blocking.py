"""Ablation: token blocking vs. schema-based blocking baselines, and
Meta-blocking weighting schemes.

Backs the paper's section-5 arguments with measurements:

* schema-agnostic **token blocking** reaches near-total recall on
  heterogeneous KBs, while **Sorted Neighborhood** (key-based windows)
  and **MinHash LSH** (Jaccard-threshold buckets) miss nearly similar
  matches;
* among Meta-blocking weighting schemes, the ARCS family that
  MinoanER's ``beta`` extends retains at least as much recall as the
  block-counting schemes under the same top-K (CNP) pruning.
"""

from conftest import emit

from repro.blocking.lsh import lsh_blocks
from repro.blocking.metrics import evaluate_blocks
from repro.blocking.purging import purge_blocks
from repro.blocking.sorted_neighborhood import sorted_neighborhood_blocks
from repro.blocking.token_blocking import token_blocks
from repro.metablocking.graph import build_pair_graph
from repro.metablocking.pruning import cardinality_node_pruning
from repro.metablocking.weights import WEIGHT_SCHEMES

DATASETS = ("restaurant", "bbc_dbpedia")


def blocking_rows(pair):
    kb1, kb2 = pair.kb1, pair.kb2
    rows = []
    token = purge_blocks(
        token_blocks(kb1, kb2), cartesian=len(kb1) * len(kb2)
    )
    rows.append(("token (purged)", evaluate_blocks([token], pair.ground_truth)))
    for window in (10, 40):
        blocks = sorted_neighborhood_blocks(kb1, kb2, window=window)
        rows.append(
            (f"sorted-nbhd w={window}", evaluate_blocks([blocks], pair.ground_truth))
        )
    blocks = lsh_blocks(kb1, kb2, bands=20, rows=5)
    rows.append(("lsh 20x5", evaluate_blocks([blocks], pair.ground_truth)))
    return rows


def metablocking_rows(pair, k: int = 15):
    kb1, kb2 = pair.kb1, pair.kb2
    token = purge_blocks(token_blocks(kb1, kb2), cartesian=len(kb1) * len(kb2))
    graph = build_pair_graph(token, len(kb1), len(kb2))
    rows = []
    for name, scheme in WEIGHT_SCHEMES.items():
        survivors = cardinality_node_pruning(graph.weighted_edges(scheme), k)
        covered = len(survivors & pair.ground_truth)
        rows.append((name, covered / len(pair.ground_truth), len(survivors)))
    return rows


def test_blocking_method_comparison(benchmark, profiles, results_dir):
    data = benchmark.pedantic(
        lambda: {name: blocking_rows(profiles[name]) for name in DATASETS},
        rounds=1,
        iterations=1,
    )
    lines = ["Ablation: blocking methods (recall % / suggested comparisons)", ""]
    for name, rows in data.items():
        lines.append(f"-- {name} --")
        for method, report in rows:
            lines.append(
                f"  {method:18s} recall={report.recall * 100:6.2f}%  "
                f"||B||={report.total_comparisons:.2e}"
            )
        lines.append("")
    emit(results_dir, "ablation_blocking_methods", "\n".join(lines))

    for name, rows in data.items():
        by_method = dict(rows)
        token_recall = by_method["token (purged)"].recall
        assert token_recall > 0.97, name
        # The key-based and threshold-based baselines miss far more,
        # dramatically so on the heterogeneous pair.
        assert by_method["sorted-nbhd w=10"].recall < token_recall - 0.2, name
        assert by_method["lsh 20x5"].recall < token_recall - 0.2, name


def test_metablocking_scheme_comparison(benchmark, profiles, results_dir):
    data = benchmark.pedantic(
        lambda: {name: metablocking_rows(profiles[name]) for name in DATASETS},
        rounds=1,
        iterations=1,
    )
    lines = ["Ablation: Meta-blocking weighting schemes under CNP (top-15)", ""]
    for name, rows in data.items():
        lines.append(f"-- {name} --")
        for scheme, recall, pairs in rows:
            lines.append(f"  {scheme:10s} recall={recall * 100:6.2f}%  pairs={pairs:,}")
        lines.append("")
    emit(results_dir, "ablation_metablocking_schemes", "\n".join(lines))

    for name, rows in data.items():
        recalls = {scheme: recall for scheme, recall, _ in rows}
        # The ARCS family (MinoanER's beta) is at least as complete as
        # raw block counting under the same candidate budget.
        assert recalls["arcs_log"] >= recalls["cbs"] - 0.02, name
        assert recalls["arcs"] >= recalls["cbs"] - 0.02, name
