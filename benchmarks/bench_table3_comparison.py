"""Table 3: MinoanER versus SiGMa-like, PARIS-like and BSL baselines.

Regenerates the paper's headline comparison.  Asserted shapes (the
paper's conclusions, not its absolute numbers):

* on low-Variety pairs (Restaurant, Rexa-DBLP) every system is strong
  and MinoanER is at least competitive (within a few points of the
  best);
* on the high-Variety BBCmusic-DBpedia, MinoanER clearly outperforms
  every baseline and the equality-based PARIS collapses;
* on YAGO-IMDb the fine-tuned value-only BSL collapses well below
  MinoanER, while relation-aware PARIS stays competitive.
"""

from conftest import emit

from repro.evaluation.experiments import comparison
from repro.evaluation.reporting import format_comparison


def test_table3_comparison(benchmark, profiles, results_dir):
    columns = benchmark.pedantic(
        lambda: [comparison(pair) for pair in profiles.values()],
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table3_comparison", format_comparison(columns))

    by_name = {column.name: column for column in columns}

    def f1(dataset: str, system: str) -> float:
        return by_name[dataset].reports[system].f1

    # Low Variety: everything is strong, MinoanER competitive.
    for dataset in ("restaurant", "rexa_dblp"):
        assert f1(dataset, "MinoanER") > 0.9, dataset
        best = max(report.f1 for report in by_name[dataset].reports.values())
        assert f1(dataset, "MinoanER") >= best - 0.08, dataset

    # High Variety: MinoanER outperforms every baseline significantly.
    bbc = by_name["bbc_dbpedia"]
    assert f1("bbc_dbpedia", "MinoanER") > 0.8
    for system, report in bbc.reports.items():
        if system != "MinoanER":
            assert f1("bbc_dbpedia", "MinoanER") >= report.f1 + 0.1, system
    # PARIS collapses on formatting-divergent literals.
    assert f1("bbc_dbpedia", "PARIS") < 0.1

    # YAGO-IMDb: value-only BSL collapses; MinoanER close to the
    # relation-aware systems.
    assert f1("yago_imdb", "MinoanER") > 0.85
    assert f1("yago_imdb", "BSL") < f1("yago_imdb", "MinoanER") - 0.15
    assert f1("yago_imdb", "PARIS") > 0.8
