"""Table 1: dataset statistics of the four benchmark profiles.

Regenerates the paper's Table 1 for the synthetic stand-ins.  Absolute
sizes are scaled down (see DESIGN.md); the *relative* shapes the paper
highlights are asserted: Rexa-DBLP's KB-size imbalance, BBC-DBpedia's
attribute heterogeneity, YAGO-IMDb being the largest and most balanced
pair.
"""

from conftest import emit

from repro.evaluation.experiments import dataset_statistics
from repro.evaluation.reporting import format_dataset_statistics


def test_table1_dataset_statistics(benchmark, profiles, results_dir):
    columns = benchmark.pedantic(
        lambda: [dataset_statistics(pair) for pair in profiles.values()],
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "table1_dataset_statistics", format_dataset_statistics(columns))

    by_name = {column.name: column for column in columns}
    restaurant = by_name["restaurant"]
    rexa = by_name["rexa_dblp"]
    bbc = by_name["bbc_dbpedia"]
    yago = by_name["yago_imdb"]

    # Restaurant: smallest dataset on every axis.
    assert restaurant.entities1 + restaurant.entities2 == min(
        c.entities1 + c.entities2 for c in columns
    )
    # Rexa-DBLP: heavy KB-size imbalance (paper: 2 orders of magnitude).
    assert rexa.entities2 > 8 * rexa.entities1
    # BBC-DBpedia: an order of magnitude more attributes in E2, and many
    # more tokens per E2 entity.
    assert bbc.attributes2 > 10 * bbc.attributes1
    assert bbc.avg_tokens2 > 2 * bbc.avg_tokens1
    # YAGO-IMDb: largest first KB and the most balanced pair.
    assert yago.entities1 == max(c.entities1 for c in columns)
    assert 0.5 < yago.entities1 / yago.entities2 < 2.0
