"""Ablation: the paper's future-work ideas against the published design.

Section 7 sketches two improvements: an *ensemble* of matching rules
(votes instead of fixed precedence) and *dynamic* candidate pruning
(per-node cuts based on the local similarity distribution).  Both are
implemented in this repo; this bench measures them against the standard
Algorithm 2 workflow on all four benchmark profiles.

Asserted: neither extension degrades F1 by more than a couple of
points anywhere (they are *safe* variations), and dynamic pruning
shrinks the candidate graph on every dataset.
"""

from conftest import emit

from repro.core.config import MinoanERConfig
from repro.core.ensemble import EnsembleMatcher
from repro.core.pipeline import MinoanER
from repro.evaluation.metrics import evaluate_matches


def run_variants(pair):
    gt = pair.ground_truth
    standard = MinoanER().resolve(pair.kb1, pair.kb2)
    dynamic = MinoanER(MinoanERConfig(dynamic_pruning=True)).resolve(
        pair.kb1, pair.kb2
    )
    ensemble = EnsembleMatcher().match(standard.graph)
    return {
        "standard": (standard.evaluate(gt), standard.graph.edge_count()),
        "dynamic pruning": (dynamic.evaluate(gt), dynamic.graph.edge_count()),
        "rule ensemble": (
            evaluate_matches(ensemble.matches, gt),
            standard.graph.edge_count(),
        ),
    }


def test_future_work_ablation(benchmark, profiles, results_dir):
    data = benchmark.pedantic(
        lambda: {name: run_variants(pair) for name, pair in profiles.items()},
        rounds=1,
        iterations=1,
    )
    lines = ["Ablation: future-work variants (F1 % / directed graph edges)", ""]
    for name, variants in data.items():
        lines.append(f"-- {name} --")
        for label, (report, edges) in variants.items():
            lines.append(
                f"  {label:16s} F1={report.f1 * 100:6.2f}  P={report.precision * 100:6.2f}"
                f"  R={report.recall * 100:6.2f}  edges={edges:,}"
            )
        lines.append("")
    emit(results_dir, "ablation_future_work", "\n".join(lines))

    for name, variants in data.items():
        standard_f1 = variants["standard"][0].f1
        assert variants["dynamic pruning"][0].f1 > standard_f1 - 0.03, name
        assert variants["rule ensemble"][0].f1 > standard_f1 - 0.05, name
        # Dynamic pruning shrinks the graph.
        assert variants["dynamic pruning"][1] < variants["standard"][1], name
