"""Figure 5: sensitivity analysis of (k, K, N, theta).

Regenerates the paper's one-at-a-time parameter sweep around the
recommended global configuration (2, 15, 3, 0.6).  Asserted shapes:

* F1 is robust: within each sweep, most settings stay close to the best
  one (the composite rules compensate for one misconfigured knob);
* the two exceptions the paper calls out: k = 1 collapses on
  BBCmusic-DBpedia (the decoy top-importance attribute), and
  theta < 0.5 hurts the nearly similar datasets.
"""

from conftest import emit

from repro.evaluation.experiments import SENSITIVITY_GRID, sensitivity
from repro.evaluation.reporting import format_sensitivity


def sweep(profiles):
    results = []
    for parameter in SENSITIVITY_GRID:
        for pair in profiles.values():
            results.append(sensitivity(pair, parameter))
    return results


def test_figure5_sensitivity(benchmark, profiles, results_dir):
    results = benchmark.pedantic(lambda: sweep(profiles), rounds=1, iterations=1)
    emit(results_dir, "figure5_sensitivity", format_sensitivity(results))

    indexed = {(r.parameter, r.name): r for r in results}

    # Exception 1: k = 1 collapses on BBC-DBpedia, k = 2 recovers.
    k_curve = indexed[("name_attributes_k", "bbc_dbpedia")]
    assert k_curve.values[0] == 1 and k_curve.values[1] == 2
    assert k_curve.f1_scores[1] > k_curve.f1_scores[0] + 0.1

    # Exception 2: on nearly similar data, neighbor evidence must keep
    # enough weight -- pushing theta (the value-list weight of
    # Algorithm 2) towards 1 hurts YAGO-IMDb.  (The paper's prose
    # phrases the same requirement as "theta >= 0.5 promotes neighbor
    # similarity"; see EXPERIMENTS.md on the convention mismatch.)
    theta_curve = indexed[("theta", "yago_imdb")]
    by_value = dict(zip(theta_curve.values, theta_curve.f1_scores))
    assert by_value[0.5] > by_value[0.8]

    # Robustness elsewhere: within each remaining sweep, the spread
    # between the best and the median setting stays small.
    for (parameter, dataset), curve in indexed.items():
        if parameter == "name_attributes_k" and dataset == "bbc_dbpedia":
            continue
        if parameter == "theta" and dataset in ("bbc_dbpedia", "yago_imdb"):
            continue
        scores = sorted(curve.f1_scores)
        median = scores[len(scores) // 2]
        assert max(scores) - median < 0.1, (parameter, dataset)
