"""Unit tests for the SiGMa-like iterative greedy baseline."""

import pytest

from repro.baselines.sigma import SigmaBaseline, SigmaConfig
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


@pytest.fixture
def linked_pair():
    """Seeds a0<->b0 by identical names; a1/b1 reachable only via relations."""
    kb1 = KnowledgeBase(
        [
            EntityDescription("a0", [("name", "anchor entity"), ("rel", "a1")]),
            EntityDescription("a1", [("name", "leaf one"), ("val", "shared stuff here")]),
        ],
        name="kb1",
    )
    kb2 = KnowledgeBase(
        [
            EntityDescription("b0", [("label", "anchor entity"), ("link", "b1")]),
            EntityDescription("b1", [("label", "leaf uno"), ("val", "shared stuff there")]),
        ],
        name="kb2",
    )
    return kb1, kb2


class TestSeeds:
    def test_identical_unique_names_seed(self, linked_pair):
        kb1, kb2 = linked_pair
        result = SigmaBaseline({"rel": "link"}).run(kb1, kb2)
        assert (0, 0) in result.matches
        assert result.seed_count >= 1

    def test_non_unique_names_not_seeded(self):
        kb1 = KnowledgeBase(
            [
                EntityDescription("a0", [("name", "dup")]),
                EntityDescription("a1", [("name", "dup")]),
            ],
            name="kb1",
        )
        kb2 = KnowledgeBase([EntityDescription("b0", [("name", "dup")])], name="kb2")
        result = SigmaBaseline({}).run(kb1, kb2)
        assert result.seed_count == 0


class TestPropagation:
    def test_neighbors_matched_through_aligned_relations(self, linked_pair):
        kb1, kb2 = linked_pair
        result = SigmaBaseline({"rel": "link"}, SigmaConfig(threshold=0.2)).run(kb1, kb2)
        assert (1, 1) in result.matches

    def test_no_propagation_without_alignment(self, linked_pair):
        kb1, kb2 = linked_pair
        result = SigmaBaseline({}, SigmaConfig(threshold=0.2)).run(kb1, kb2)
        assert (1, 1) not in result.matches

    def test_incoming_edges_also_propagate(self):
        """Match at the *target* side propagates back to sources."""
        kb1 = KnowledgeBase(
            [
                EntityDescription("src1", [("n", "origin story text"), ("rel", "hub1")]),
                EntityDescription("hub1", [("n", "anchor entity")]),
            ],
            name="kb1",
        )
        kb2 = KnowledgeBase(
            [
                EntityDescription("src2", [("n", "origin story prose"), ("link", "hub2")]),
                EntityDescription("hub2", [("n", "anchor entity")]),
            ],
            name="kb2",
        )
        result = SigmaBaseline({"rel": "link"}, SigmaConfig(threshold=0.2)).run(kb1, kb2)
        assert (0, 0) in result.matches


class TestConfig:
    def test_threshold_blocks_weak_matches(self, linked_pair):
        kb1, kb2 = linked_pair
        result = SigmaBaseline({"rel": "link"}, SigmaConfig(threshold=0.99)).run(kb1, kb2)
        assert result.matches == set()

    def test_invalid_graph_weight(self):
        with pytest.raises(ValueError):
            SigmaConfig(graph_weight=1.5)

    def test_max_iterations_respected(self, linked_pair):
        kb1, kb2 = linked_pair
        result = SigmaBaseline({"rel": "link"}, SigmaConfig(max_iterations=1)).run(kb1, kb2)
        assert result.iterations <= 1

    def test_one_to_one_output(self, mini_pair):
        result = SigmaBaseline(mini_pair.relation_alignment).run(
            mini_pair.kb1, mini_pair.kb2
        )
        lefts = [a for a, _ in result.matches]
        rights = [b for _, b in result.matches]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))
