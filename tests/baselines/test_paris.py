"""Unit tests for the PARIS-like probabilistic baseline."""

import pytest

from repro.baselines.paris import (
    ParisBaseline,
    ParisConfig,
    _incoming_edges,
    _inverse_functionality,
    _value_index,
)
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


def kb_pair_with_structure():
    """Names overlap only for e0; e1 identifiable through relations."""
    kb1 = KnowledgeBase(
        [
            EntityDescription("a0", [("name", "unique anchor")]),
            EntityDescription("a1", [("name", "source one"), ("made", "a0")]),
        ],
        name="kb1",
    )
    kb2 = KnowledgeBase(
        [
            EntityDescription("b0", [("label", "unique anchor")]),
            EntityDescription("b1", [("label", "source one"), ("created", "b0")]),
        ],
        name="kb2",
    )
    return kb1, kb2


class TestHelpers:
    def test_value_index_is_exact_and_case_sensitive(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("p", "Queen")]),
                EntityDescription("b", [("p", "queen")]),
            ]
        )
        index = _value_index(kb)
        assert index["Queen"] == [0]
        assert index["queen"] == [1]

    def test_value_index_once_per_entity(self):
        kb = KnowledgeBase([EntityDescription("a", [("p", "v"), ("q", "v")])])
        assert _value_index(kb)["v"] == [0]

    def test_inverse_functionality(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("r", "c")]),
                EntityDescription("b", [("r", "c")]),
                EntityDescription("c"),
            ]
        )
        # 1 distinct object / 2 instances
        assert _inverse_functionality(kb)["r"] == pytest.approx(0.5)

    def test_incoming_edges(self):
        kb = KnowledgeBase(
            [EntityDescription("a", [("r", "b")]), EntityDescription("b")]
        )
        assert _incoming_edges(kb)[1] == [("r", 0)]


class TestMatching:
    def test_exact_shared_rare_value_matches(self):
        kb1 = KnowledgeBase([EntityDescription("a", [("p", "unique token")])], "k1")
        kb2 = KnowledgeBase([EntityDescription("b", [("q", "unique token")])], "k2")
        result = ParisBaseline().run(kb1, kb2)
        assert result.matches == {(0, 0)}
        assert result.probabilities[(0, 0)] == pytest.approx(1.0)

    def test_case_difference_breaks_evidence(self):
        kb1 = KnowledgeBase([EntityDescription("a", [("p", "unique token")])], "k1")
        kb2 = KnowledgeBase([EntityDescription("b", [("q", "Unique Token")])], "k2")
        result = ParisBaseline().run(kb1, kb2)
        assert result.matches == set()

    def test_frequent_values_ignored(self):
        kb1 = KnowledgeBase(
            [EntityDescription(f"a{i}", [("p", "common")]) for i in range(10)], "k1"
        )
        kb2 = KnowledgeBase(
            [EntityDescription(f"b{i}", [("p", "common")]) for i in range(10)], "k2"
        )
        result = ParisBaseline(ParisConfig(value_frequency_cap=5)).run(kb1, kb2)
        assert result.matches == set()

    def test_relational_evidence_after_alignment(self):
        kb1, kb2 = kb_pair_with_structure()
        result = ParisBaseline(ParisConfig(iterations=3, threshold=0.3)).run(kb1, kb2)
        assert (0, 0) in result.matches
        assert (1, 1) in result.matches
        assert result.relation_alignment.get(("made", "created")) == pytest.approx(1.0)

    def test_zero_iterations_uses_literals_only(self):
        kb1, kb2 = kb_pair_with_structure()
        result = ParisBaseline(ParisConfig(iterations=0)).run(kb1, kb2)
        assert (0, 0) in result.matches
        assert result.relation_alignment == {}

    def test_one_to_one_output(self, mini_pair):
        result = ParisBaseline().run(mini_pair.kb1, mini_pair.kb2)
        lefts = [a for a, _ in result.matches]
        rights = [b for _, b in result.matches]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))
