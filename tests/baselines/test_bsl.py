"""Unit tests for the BSL grid-search baseline."""

import pytest

from repro.baselines.bsl import BSLBaseline, BSLConfig, candidate_pairs
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase


@pytest.fixture
def easy_pair():
    kb1 = KnowledgeBase(
        [
            EntityDescription("a0", [("name", "fat duck bray")]),
            EntityDescription("a1", [("name", "ivy london soho")]),
        ],
        name="kb1",
    )
    kb2 = KnowledgeBase(
        [
            EntityDescription("b0", [("title", "the fat duck bray")]),
            EntityDescription("b1", [("title", "the ivy london")]),
            EntityDescription("b2", [("title", "unrelated place")]),
        ],
        name="kb2",
    )
    return kb1, kb2, {(0, 0), (1, 1)}


class TestGrid:
    def test_default_grid_has_420_configurations(self, easy_pair):
        kb1, kb2, gt = easy_pair
        result = BSLBaseline().run(kb1, kb2, gt)
        assert result.configurations_tried == 420
        assert len(result.per_config) == 420

    def test_sigma_only_with_tfidf(self):
        schemes = list(BSLBaseline()._scheme_configs())
        assert all(w == "tfidf" for _, w, m in schemes if m == "sigma")

    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError):
            BSLBaseline(measures=["levenshtein"])

    def test_reduced_grid(self, easy_pair):
        kb1, kb2, gt = easy_pair
        baseline = BSLBaseline(ngram_sizes=(1,), weightings=("tf",), measures=("cosine",), thresholds=(0.0, 0.5))
        result = baseline.run(kb1, kb2, gt)
        assert result.configurations_tried == 2

    def test_empty_grid_rejected(self, easy_pair):
        kb1, kb2, gt = easy_pair
        baseline = BSLBaseline(ngram_sizes=(), thresholds=())
        with pytest.raises(ValueError):
            baseline.run(kb1, kb2, gt)


class TestQuality:
    def test_finds_easy_matches(self, easy_pair):
        kb1, kb2, gt = easy_pair
        result = BSLBaseline(ngram_sizes=(1,)).run(kb1, kb2, gt)
        assert result.best_report.f1 == 1.0
        assert result.best_matches == gt

    def test_best_is_maximum_over_grid(self, easy_pair):
        kb1, kb2, gt = easy_pair
        result = BSLBaseline(ngram_sizes=(1, 2)).run(kb1, kb2, gt)
        assert result.best_report.f1 == pytest.approx(
            max(report.f1 for _, report in result.per_config)
        )

    def test_explicit_pairs_respected(self, easy_pair):
        kb1, kb2, gt = easy_pair
        result = BSLBaseline(ngram_sizes=(1,)).run(kb1, kb2, gt, pairs={(0, 0)})
        assert result.best_matches <= {(0, 0)}


class TestCandidatePairs:
    def test_union_of_token_and_name_blocks(self, easy_pair):
        kb1, kb2, _ = easy_pair
        pairs = candidate_pairs(kb1, kb2)
        assert (0, 0) in pairs
        assert (1, 1) in pairs

    def test_no_pairs_for_disjoint_kbs(self):
        kb1 = KnowledgeBase([EntityDescription("a", [("n", "xxx")])], "k1")
        kb2 = KnowledgeBase([EntityDescription("b", [("n", "yyy")])], "k2")
        assert candidate_pairs(kb1, kb2) == set()


class TestConfigLabel:
    def test_label_format(self):
        config = BSLConfig(2, "tfidf", "cosine", 0.25)
        assert config.label() == "2-gram/tfidf/cosine/t=0.25"
