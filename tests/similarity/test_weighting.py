"""Unit tests for n-gram extraction and TF / TF-IDF weighting."""

import math

import pytest

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.similarity.weighting import (
    entity_ngram_counts,
    ngrams,
    tf_idf_profiles,
    tf_profiles,
)


class TestNgrams:
    def test_unigrams(self):
        assert ngrams(["a", "b"], 1) == ["a", "b"]

    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == ["a b", "b c"]

    def test_trigrams(self):
        assert ngrams(["a", "b", "c", "d"], 3) == ["a b c", "b c d"]

    def test_too_short_sequence(self):
        assert ngrams(["a"], 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestEntityNgramCounts:
    def test_ngrams_do_not_span_values(self):
        kb = KnowledgeBase([EntityDescription("e", [("p", "a b"), ("q", "c d")])])
        counts = entity_ngram_counts(kb, 0, 2)
        assert set(counts) == {"a b", "c d"}  # no "b c"

    def test_counts_repetitions(self):
        kb = KnowledgeBase([EntityDescription("e", [("p", "x x x")])])
        assert entity_ngram_counts(kb, 0, 1)["x"] == 3

    def test_relations_excluded(self):
        kb = KnowledgeBase(
            [EntityDescription("e", [("p", "f")]), EntityDescription("f", [("p", "text")])]
        )
        assert "f" not in entity_ngram_counts(kb, 0, 1)


class TestProfiles:
    def test_tf_profiles_l2_normalised(self):
        kb = KnowledgeBase([EntityDescription("e", [("p", "a a b")])])
        profile = tf_profiles(kb)[0]
        norm = math.sqrt(sum(w * w for w in profile.values()))
        assert norm == pytest.approx(1.0)
        assert profile["a"] > profile["b"]

    def test_tfidf_downweights_ubiquitous_terms(self):
        kb = KnowledgeBase(
            [
                EntityDescription("a", [("p", "common rare1")]),
                EntityDescription("b", [("p", "common rare2")]),
                EntityDescription("c", [("p", "common rare3")]),
            ]
        )
        profile = tf_idf_profiles(kb)[0]
        assert profile["rare1"] > profile["common"]

    def test_empty_entity_gives_empty_profile(self):
        kb = KnowledgeBase([EntityDescription("e", [("p", "...")])])
        assert tf_profiles(kb)[0] == {}

    def test_profiles_cover_all_entities(self):
        kb = KnowledgeBase(
            [EntityDescription("a", [("p", "x")]), EntityDescription("b", [("p", "y")])]
        )
        assert len(tf_profiles(kb)) == 2
        assert len(tf_idf_profiles(kb)) == 2

    def test_bigram_profiles(self):
        kb = KnowledgeBase([EntityDescription("e", [("p", "a b c")])])
        profile = tf_profiles(kb, n=2)[0]
        assert set(profile) == {"a b", "b c"}
