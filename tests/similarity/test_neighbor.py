"""Unit tests for neighborNSim (Definition 2.5), including Example 2.6."""

import pytest

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.statistics import KBStatistics
from repro.similarity.neighbor import max_neighbor_value_similarity, neighbor_similarity
from repro.similarity.value import value_similarity


@pytest.fixture
def figure1_pair():
    """The paper's Figure 1 / Example 2.6 situation."""
    kb1 = KnowledgeBase(
        [
            EntityDescription(
                "Restaurant1",
                [("label", "Fat Duck"), ("hasChef", "JohnLakeA"), ("territorial", "Bray")],
            ),
            EntityDescription("JohnLakeA", [("label", "John Lake A")]),
            EntityDescription("Bray", [("label", "Bray village Berkshire")]),
        ],
        name="wikidata",
    )
    kb2 = KnowledgeBase(
        [
            EntityDescription(
                "Restaurant2",
                [("title", "Fat Duck"), ("headChef", "JonnyLake"), ("county", "Berkshire")],
            ),
            EntityDescription("JonnyLake", [("title", "Jonny Lake")]),
            EntityDescription("Berkshire", [("title", "Berkshire county near Bray")]),
        ],
        name="dbpedia",
    )
    return kb1, kb2


class TestNeighborSimilarity:
    def test_example_2_6_sums_all_cross_pairs(self, figure1_pair):
        """Without relation alignment, all topN x topN pairs contribute."""
        kb1, kb2 = figure1_pair
        stats1 = KBStatistics(kb1, top_n_relations=2)
        stats2 = KBStatistics(kb2, top_n_relations=2)
        r1, r2 = kb1.id_of("Restaurant1"), kb2.id_of("Restaurant2")
        expected = sum(
            value_similarity(kb1, kb2, n1, n2)
            for n1 in (kb1.id_of("JohnLakeA"), kb1.id_of("Bray"))
            for n2 in (kb2.id_of("JonnyLake"), kb2.id_of("Berkshire"))
        )
        assert neighbor_similarity(stats1, stats2, r1, r2) == pytest.approx(expected)
        assert expected > 0  # lake, bray, berkshire overlaps exist

    def test_no_neighbors_means_zero(self, figure1_pair):
        kb1, kb2 = figure1_pair
        stats1 = KBStatistics(kb1, top_n_relations=2)
        stats2 = KBStatistics(kb2, top_n_relations=2)
        leaf1 = kb1.id_of("JohnLakeA")
        leaf2 = kb2.id_of("JonnyLake")
        assert neighbor_similarity(stats1, stats2, leaf1, leaf2) == 0.0

    def test_restricting_n_restricts_neighbors(self, figure1_pair):
        kb1, kb2 = figure1_pair
        wide1 = KBStatistics(kb1, top_n_relations=2)
        wide2 = KBStatistics(kb2, top_n_relations=2)
        narrow1 = KBStatistics(kb1, top_n_relations=1)
        narrow2 = KBStatistics(kb2, top_n_relations=1)
        r1, r2 = kb1.id_of("Restaurant1"), kb2.id_of("Restaurant2")
        assert neighbor_similarity(narrow1, narrow2, r1, r2) <= neighbor_similarity(
            wide1, wide2, r1, r2
        )

    def test_symmetric_in_arguments(self, figure1_pair):
        kb1, kb2 = figure1_pair
        stats1 = KBStatistics(kb1, top_n_relations=2)
        stats2 = KBStatistics(kb2, top_n_relations=2)
        r1, r2 = kb1.id_of("Restaurant1"), kb2.id_of("Restaurant2")
        assert neighbor_similarity(stats1, stats2, r1, r2) == pytest.approx(
            neighbor_similarity(stats2, stats1, r2, r1)
        )


class TestMaxNeighborSimilarity:
    def test_max_below_sum(self, figure1_pair):
        kb1, kb2 = figure1_pair
        stats1 = KBStatistics(kb1, top_n_relations=2)
        stats2 = KBStatistics(kb2, top_n_relations=2)
        r1, r2 = kb1.id_of("Restaurant1"), kb2.id_of("Restaurant2")
        maximum = max_neighbor_value_similarity(stats1, stats2, r1, r2)
        total = neighbor_similarity(stats1, stats2, r1, r2)
        assert 0 < maximum <= total

    def test_normalized_variant_bounded(self, figure1_pair):
        kb1, kb2 = figure1_pair
        stats1 = KBStatistics(kb1, top_n_relations=2)
        stats2 = KBStatistics(kb2, top_n_relations=2)
        r1, r2 = kb1.id_of("Restaurant1"), kb2.id_of("Restaurant2")
        score = max_neighbor_value_similarity(stats1, stats2, r1, r2, normalized=True)
        assert 0.0 <= score <= 1.0
