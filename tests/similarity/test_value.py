"""Unit tests for valueSim (Definition 2.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.similarity.value import (
    max_value_similarity,
    normalized_value_similarity,
    token_pair_weight,
    value_similarity,
    value_similarity_of_token_sets,
)


def kb_of(token_lists: list[str], prefix: str) -> KnowledgeBase:
    return KnowledgeBase(
        [
            EntityDescription(f"{prefix}{index}", [("v", value)])
            for index, value in enumerate(token_lists)
        ],
        name=prefix,
    )


class TestTokenPairWeight:
    def test_unique_token_contributes_one(self):
        assert token_pair_weight(1, 1) == pytest.approx(1.0)

    def test_frequent_token_contributes_little(self):
        assert token_pair_weight(100, 100) == pytest.approx(1 / math.log2(10001))

    def test_monotone_in_frequency(self):
        assert token_pair_weight(1, 1) > token_pair_weight(1, 2) > token_pair_weight(5, 5)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            token_pair_weight(0, 1)


class TestValueSimilarity:
    def test_no_shared_tokens(self):
        kb1 = kb_of(["alpha beta"], "a")
        kb2 = kb_of(["gamma delta"], "b")
        assert value_similarity(kb1, kb2, 0, 0) == 0.0

    def test_single_unique_shared_token(self):
        kb1 = kb_of(["alpha beta"], "a")
        kb2 = kb_of(["alpha gamma"], "b")
        assert value_similarity(kb1, kb2, 0, 0) == pytest.approx(1.0)

    def test_hand_computed_example(self):
        # 'shared' appears in 2 entities of kb1 and 1 of kb2.
        kb1 = kb_of(["shared one", "shared two"], "a")
        kb2 = kb_of(["shared three"], "b")
        expected = 1 / math.log2(2 * 1 + 1)
        assert value_similarity(kb1, kb2, 0, 0) == pytest.approx(expected)

    def test_sums_over_shared_tokens(self):
        kb1 = kb_of(["x y z"], "a")
        kb2 = kb_of(["x y w"], "b")
        assert value_similarity(kb1, kb2, 0, 0) == pytest.approx(2.0)

    def test_symmetry_under_argument_swap(self):
        kb1 = kb_of(["x y unique1"], "a")
        kb2 = kb_of(["x y unique2"], "b")
        forward = value_similarity(kb1, kb2, 0, 0)
        backward = value_similarity(kb2, kb1, 0, 0)
        assert forward == pytest.approx(backward)

    def test_unnormalised_and_unbounded(self):
        tokens = " ".join(f"tok{i}" for i in range(20))
        kb1 = kb_of([tokens], "a")
        kb2 = kb_of([tokens], "b")
        assert value_similarity(kb1, kb2, 0, 0) == pytest.approx(20.0)

    def test_of_token_sets_skips_tokens_missing_in_either_kb(self):
        kb1 = kb_of(["x"], "a")
        kb2 = kb_of(["y"], "b")
        assert value_similarity_of_token_sets({"x", "y"}, {"x", "y"}, kb1, kb2) == 0.0

    def test_max_value_similarity_finds_best_partner(self):
        kb1 = kb_of(["alpha beta"], "a")
        kb2 = kb_of(["gamma", "alpha beta", "alpha"], "b")
        best, score = max_value_similarity(kb1, kb2, 0)
        assert best == 1
        assert score > 0

    def test_max_value_similarity_empty(self):
        kb1 = kb_of(["alpha"], "a")
        kb2 = kb_of(["beta"], "b")
        assert max_value_similarity(kb1, kb2, 0) == (-1, 0.0)


class TestNormalizedValueSimilarity:
    def test_identical_token_sets_score_one(self):
        kb1 = kb_of(["a b c"], "x")
        kb2 = kb_of(["a b c"], "y")
        assert normalized_value_similarity(kb1, kb2, 0, 0) == pytest.approx(1.0)

    def test_disjoint_token_sets_score_zero(self):
        kb1 = kb_of(["a b"], "x")
        kb2 = kb_of(["c d"], "y")
        assert normalized_value_similarity(kb1, kb2, 0, 0) == 0.0

    def test_unshared_tokens_lower_the_score(self):
        kb1 = kb_of(["a b"], "x")
        kb2 = kb_of(["a b c d e f g h"], "y")
        score = normalized_value_similarity(kb1, kb2, 0, 0)
        assert 0.0 < score < 0.6


@st.composite
def kb_pair(draw):
    vocabulary = [f"t{i}" for i in range(12)]
    values1 = [
        " ".join(draw(st.lists(st.sampled_from(vocabulary), min_size=1, max_size=6)))
        for _ in range(draw(st.integers(1, 5)))
    ]
    values2 = [
        " ".join(draw(st.lists(st.sampled_from(vocabulary), min_size=1, max_size=6)))
        for _ in range(draw(st.integers(1, 5)))
    ]
    return kb_of(values1, "a"), kb_of(values2, "b")


class TestValueSimilarityProperties:
    @given(pair=kb_pair())
    @settings(max_examples=50)
    def test_non_negative(self, pair):
        kb1, kb2 = pair
        for eid1 in range(len(kb1)):
            for eid2 in range(len(kb2)):
                assert value_similarity(kb1, kb2, eid1, eid2) >= 0.0

    @given(pair=kb_pair())
    @settings(max_examples=50)
    def test_self_similarity_dominates(self, pair):
        """valueSim(ei, ei) >= valueSim(ei, ej) (Proposition 1)."""
        kb1, kb2 = pair
        for eid1 in range(len(kb1)):
            self_sim = value_similarity_of_token_sets(
                kb1.tokens(eid1), kb1.tokens(eid1), kb1, kb2
            )
            for eid2 in range(len(kb2)):
                assert self_sim >= value_similarity(kb1, kb2, eid1, eid2) - 1e-12

    @given(pair=kb_pair())
    @settings(max_examples=50)
    def test_normalized_in_unit_interval(self, pair):
        kb1, kb2 = pair
        for eid1 in range(len(kb1)):
            for eid2 in range(len(kb2)):
                assert 0.0 <= normalized_value_similarity(kb1, kb2, eid1, eid2) <= 1.0
