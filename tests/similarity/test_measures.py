"""Unit tests for the normalised similarity measures used by BSL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.measures import (
    MEASURES,
    cosine,
    generalized_jaccard,
    jaccard,
    sigma_similarity,
)

vector_strategy = st.dictionaries(
    st.sampled_from([f"t{i}" for i in range(8)]),
    st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    max_size=6,
)


class TestCosine:
    def test_identical(self):
        assert cosine({"a": 2.0, "b": 1.0}, {"a": 2.0, "b": 1.0}) == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty(self):
        assert cosine({}, {"a": 1.0}) == 0.0

    def test_scale_invariant(self):
        left = {"a": 1.0, "b": 2.0}
        right = {"a": 3.0, "b": 1.0}
        scaled = {k: 10 * v for k, v in right.items()}
        assert cosine(left, right) == pytest.approx(cosine(left, scaled))

    def test_hand_computed(self):
        assert cosine({"a": 1.0, "b": 1.0}, {"a": 1.0}) == pytest.approx(1 / 2**0.5)


class TestJaccard:
    def test_ignores_weights(self):
        assert jaccard({"a": 9.0, "b": 0.1}, {"a": 0.1, "c": 9.0}) == pytest.approx(1 / 3)

    def test_identical_terms(self):
        assert jaccard({"a": 1, "b": 2}, {"a": 5, "b": 6}) == 1.0

    def test_empty(self):
        assert jaccard({}, {}) == 0.0


class TestGeneralizedJaccard:
    def test_hand_computed(self):
        left = {"a": 2.0, "b": 1.0}
        right = {"a": 1.0, "c": 1.0}
        # min: a->1; max: a->2, b->1, c->1
        assert generalized_jaccard(left, right) == pytest.approx(1.0 / 4.0)

    def test_identical(self):
        assert generalized_jaccard({"a": 2.0}, {"a": 2.0}) == 1.0

    def test_empty(self):
        assert generalized_jaccard({}, {"a": 1.0}) == 0.0


class TestSigmaSimilarity:
    def test_identical(self):
        assert sigma_similarity({"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0}) == pytest.approx(1.0)

    def test_hand_computed(self):
        left = {"a": 1.0, "b": 1.0}
        right = {"a": 1.0, "c": 2.0}
        # shared mass (a): 1 + 1 = 2; total mass = 2 + 3 = 5
        assert sigma_similarity(left, right) == pytest.approx(2 / 5)

    def test_empty(self):
        assert sigma_similarity({}, {}) == 0.0


class TestRegistry:
    def test_all_measures_registered(self):
        assert set(MEASURES) == {"cosine", "jaccard", "generalized_jaccard", "sigma"}


class TestMeasureProperties:
    @given(left=vector_strategy, right=vector_strategy)
    @settings(max_examples=60)
    def test_all_measures_bounded_and_symmetric(self, left, right):
        for name, measure in MEASURES.items():
            forward = measure(left, right)
            backward = measure(right, left)
            assert 0.0 <= forward <= 1.0, name
            assert forward == pytest.approx(backward), name

    @given(vector=vector_strategy)
    @settings(max_examples=60)
    def test_self_similarity_is_one_for_nonempty(self, vector):
        for name, measure in MEASURES.items():
            if vector:
                assert measure(vector, vector) == pytest.approx(1.0), name
            else:
                assert measure(vector, vector) == 0.0, name
