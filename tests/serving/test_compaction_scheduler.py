"""Background compaction: triggers, throttles, failure isolation."""

import pytest

from repro.core.config import MinoanERConfig
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.resilience import parse_chaos, use_faults
from repro.serving import MatchEngine, ResolutionIndex
from repro.serving.compaction import CompactionScheduler
from repro.serving.live import LiveEngine


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def entity(i: int, word: str | None = None):
    word = word or f"alpha{i}"
    return EntityDescription(
        f"http://kb2/e{i}", (("name", f"{word} tag{i}"), ("info", f"v{i}"))
    )


CONFIG = MinoanERConfig()


def build_engine(n: int = 8) -> LiveEngine:
    kb = KnowledgeBase([entity(i) for i in range(n)], "kb2")
    return LiveEngine(ResolutionIndex.build(kb, CONFIG), CONFIG)


def query(label: str, uri: str = "q"):
    return EntityDescription(uri, (("name", label),))


class TestTriggers:
    def test_delta_trigger_counts_edits(self):
        engine = build_engine()
        scheduler = CompactionScheduler(engine, max_delta=3, clock=FakeClock())
        assert scheduler.due() is None
        engine.upsert(entity(90, "zeta90"))
        engine.upsert(entity(91, "zeta91"))
        assert scheduler.due() is None
        engine.delete("http://kb2/e1")
        assert scheduler.due() == "delta"

    def test_tombstone_trigger_is_a_ratio(self):
        engine = build_engine(n=10)
        scheduler = CompactionScheduler(
            engine, max_tombstone_ratio=0.3, clock=FakeClock()
        )
        engine.delete("http://kb2/e1")
        engine.delete("http://kb2/e2")
        assert scheduler.due() is None  # 2/10
        engine.delete("http://kb2/e3")
        assert scheduler.due() == "tombstones"

    def test_requires_at_least_one_trigger(self):
        with pytest.raises(ValueError, match="max_delta"):
            CompactionScheduler(build_engine())

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_delta": 0}, {"max_tombstone_ratio": 0.0},
         {"max_tombstone_ratio": 1.5}, {"max_delta": 1, "interval_s": 0.0}],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CompactionScheduler(build_engine(), **kwargs)


class TestTick:
    def test_tick_compacts_and_throttles(self):
        clock = FakeClock()
        engine = build_engine()
        scheduler = CompactionScheduler(
            engine, max_delta=1, clock=clock, min_interval_s=10.0
        )
        engine.upsert(entity(90, "zeta90"))
        generation = engine.generation
        assert scheduler.tick() is True
        assert engine.generation == generation + 1
        assert engine.index.delta.allocated == 0
        assert scheduler.last_reason == "delta"
        # Immediately due again?  No: min_interval_s throttles.
        engine.upsert(entity(91, "zeta91"))
        assert scheduler.tick() is False
        clock.advance(10.0)
        assert scheduler.tick() is True

    def test_decisions_identical_after_scheduled_compaction(self):
        engine = build_engine()
        engine.upsert(entity(99, "zeta99"))
        probes = [query(f"alpha{i} tag{i}", uri=f"q{i}") for i in range(8)] + [
            query("zeta99 tag99", uri="qnew")
        ]
        before = engine.match_batch(probes)
        scheduler = CompactionScheduler(engine, max_delta=1, clock=FakeClock())
        assert scheduler.tick()
        after = engine.match_batch(probes)
        assert [d.kb2_uri for d in before] == [d.kb2_uri for d in after]
        assert [d.score for d in before] == [d.score for d in after]

    def test_failed_compaction_leaves_live_generation_serving(self):
        clock = FakeClock()
        engine = build_engine()
        engine.upsert(entity(99, "zeta99"))
        generation = engine.generation
        scheduler = CompactionScheduler(
            engine, max_delta=1, clock=clock, failure_backoff_s=5.0
        )
        with use_faults(parse_chaos("live:compact=error*1")):
            assert scheduler.tick() is False
        assert scheduler.failures == 1
        assert "FaultInjected" in scheduler.last_error
        # The failed fold changed nothing: same generation, overlay
        # intact, queries still see the upsert.
        assert engine.generation == generation
        assert engine.index.delta.allocated == 1
        assert engine.match(query("zeta99 tag99")).kb2_uri == "http://kb2/e99"
        # Backoff gates the retry; once it passes, the fold succeeds.
        assert scheduler.tick() is False
        clock.advance(5.0)
        assert scheduler.tick() is True
        assert engine.index.delta.allocated == 0

    def test_failure_counters_reach_the_recorder(self):
        engine = build_engine()
        engine.upsert(entity(90, "zeta90"))
        scheduler = CompactionScheduler(engine, max_delta=1, clock=FakeClock())
        with use_faults(parse_chaos("live:compact=error*1")):
            scheduler.tick()
        counters = engine.recorder.counters()
        assert counters["compaction.failures"] == 1

    def test_compaction_writes_through_to_disk_path(self, tmp_path):
        engine = build_engine()
        path = tmp_path / "kb2.idx"
        engine.index.base.save(path)
        engine.upsert(entity(90, "zeta90"))
        scheduler = CompactionScheduler(
            engine, max_delta=1, path=path, clock=FakeClock()
        )
        assert scheduler.tick()
        reloaded = MatchEngine(ResolutionIndex.load(path), CONFIG)
        assert (
            reloaded.match(query("zeta90 tag90")).kb2_uri == "http://kb2/e90"
        )


class TestThread:
    def test_mutations_poke_the_scheduler(self):
        import time

        engine = build_engine()
        with CompactionScheduler(engine, max_delta=2, interval_s=30.0) as scheduler:
            assert engine.compaction is scheduler
            engine.upsert(entity(90, "zeta90"))
            engine.upsert(entity(91, "zeta91"))
            # interval_s is 30s: only the poke can have woken it.
            deadline = time.monotonic() + 5.0
            while scheduler.compactions == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert scheduler.compactions >= 1
        assert engine.compaction is None

    def test_stats_shape(self):
        engine = build_engine()
        scheduler = CompactionScheduler(engine, max_delta=5, clock=FakeClock())
        stats = scheduler.stats()
        assert stats["max_delta"] == 5
        assert stats["compactions"] == 0
        assert stats["failures"] == 0
