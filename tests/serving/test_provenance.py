"""Query provenance on the serving path and its wire representation."""

import json

import pytest

from repro.core.config import MinoanERConfig
from repro.obs.provenance import RULE_EVIDENCE
from repro.serving import MatchEngine, ResolutionIndex
from repro.serving.io import decision_to_json


@pytest.fixture(scope="module")
def sampled_engine(mini_pair):
    index = ResolutionIndex.build(
        mini_pair.kb2, MinoanERConfig(provenance_sample_rate=1.0)
    )
    return MatchEngine(index)


class TestTraceIds:
    def test_every_decision_carries_a_trace_id(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        decisions = [engine.match(entity) for entity in list(mini_pair.kb1)[:5]]
        ids = [decision.trace_id for decision in decisions]
        assert all(ids)
        assert len(set(ids)) == len(ids)

    def test_trace_ids_embed_query_sequence(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        first = engine.match(next(iter(mini_pair.kb1)))
        second = engine.match(next(iter(mini_pair.kb1)))
        assert first.trace_id.endswith("-q1")
        assert second.trace_id.endswith("-q2")
        assert first.trace_id.startswith(engine.recorder.trace_id)

    def test_batch_decisions_get_distinct_trace_ids(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        decisions = engine.match_batch(list(mini_pair.kb1)[:4])
        ids = [decision.trace_id for decision in decisions]
        assert all(ids) and len(set(ids)) == len(ids)


class TestSampling:
    def test_rate_zero_attaches_no_provenance(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        for entity in list(mini_pair.kb1)[:5]:
            assert engine.match(entity).provenance is None

    def test_rate_one_attaches_provenance_everywhere(self, mini_pair, sampled_engine):
        for entity in list(mini_pair.kb1)[:5]:
            record = sampled_engine.match(entity).provenance
            assert record is not None
            assert record.query_uri == entity.uri

    def test_fractional_rate_samples_systematically(self, mini_pair):
        index = ResolutionIndex.build(
            mini_pair.kb2, MinoanERConfig(provenance_sample_rate=0.5)
        )
        engine = MatchEngine(index)
        entities = list(mini_pair.kb1)[:10]
        flags = [engine.match(e).provenance is not None for e in entities]
        assert sum(flags) == 5
        assert flags == [False, True] * 5

    def test_sampled_counter_tracks_attachments(self, mini_pair):
        index = ResolutionIndex.build(
            mini_pair.kb2, MinoanERConfig(provenance_sample_rate=1.0)
        )
        engine = MatchEngine(index)
        for entity in list(mini_pair.kb1)[:3]:
            engine.match(entity)
        assert engine.recorder.counter_value("serving.provenance_sampled") == 3.0

    def test_record_agrees_with_decision(self, mini_pair, sampled_engine):
        for entity in list(mini_pair.kb1)[:10]:
            decision = sampled_engine.match(entity)
            record = decision.provenance
            assert record.trace_id == decision.trace_id
            assert record.rule == decision.rule
            assert record.candidates == decision.candidates
            if decision.rule is not None:
                assert record.evidence == RULE_EVIDENCE[decision.rule]
            else:
                assert record.evidence is None
            assert record.cached == decision.cached
            assert record.degraded == decision.degraded

    def test_batch_records_marked_batched(self, mini_pair, sampled_engine):
        for decision in sampled_engine.match_batch(list(mini_pair.kb1)[:4]):
            assert decision.provenance is not None
            assert decision.provenance.batched is True

    def test_single_equals_batch_with_provenance_on(self, mini_pair, sampled_engine):
        for entity in list(mini_pair.kb1)[:10]:
            single = sampled_engine.match(entity)
            (batched,) = sampled_engine.match_batch([entity])
            # trace_id/provenance are compare=False: the match outcome
            # itself must stay identical.
            assert single == batched


class TestWireFormat:
    def test_trace_id_on_the_wire(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        payload = decision_to_json(engine.match(next(iter(mini_pair.kb1))))
        assert payload["trace_id"].endswith("-q1")

    def test_provenance_omitted_when_not_sampled(self, mini_pair):
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2))
        payload = decision_to_json(engine.match(next(iter(mini_pair.kb1))))
        assert "provenance" not in payload

    def test_provenance_serialised_when_sampled(self, mini_pair, sampled_engine):
        matched = next(
            d
            for d in (sampled_engine.match(e) for e in mini_pair.kb1)
            if d.rule is not None
        )
        payload = json.loads(json.dumps(decision_to_json(matched)))
        record = payload["provenance"]
        assert record["trace_id"] == payload["trace_id"]
        assert record["rule"] == payload["rule"]
        assert record["evidence"] == RULE_EVIDENCE[payload["rule"]]
        assert record["candidates"] == payload["candidates"]
        assert isinstance(record["top_scores"], list)
        for pair in record["top_scores"]:
            kb2_id, score = pair
            assert isinstance(kb2_id, int)
            assert score is None or isinstance(score, float)
