"""Serving-side degradation: deadlines, the circuit breaker, error stats."""

import io
import json

import pytest

from repro.core.config import MinoanERConfig
from repro.kb.entity import EntityDescription
from repro.kb.knowledge_base import KnowledgeBase
from repro.resilience import FaultInjected, parse_chaos, use_faults
from repro.serving import MatchEngine, ResolutionIndex, iter_requests
from repro.serving.io import decision_to_json


TINY_BUDGET_MS = 1e-6
"""A deadline no real query can meet: expires at the first checkpoint."""


@pytest.fixture(scope="module")
def named_index():
    kb2 = KnowledgeBase(
        [
            EntityDescription(
                "t0", [("label", "unique shared name"), ("city", "bray village")]
            ),
            EntityDescription("t1", [("label", "eltham palace"), ("city", "london")]),
        ],
        name="targets",
    )
    return ResolutionIndex.build(kb2)


class TestDeadlines:
    def test_expired_match_degrades_to_name_evidence(self, named_index):
        engine = MatchEngine(
            named_index, MinoanERConfig(serving_deadline_ms=TINY_BUDGET_MS)
        )
        decision = engine.match(
            EntityDescription("q", [("name", "unique shared name")])
        )
        assert decision.degraded
        assert decision.rule == "R1"
        assert decision.kb2_uri == "t0"
        assert decision.candidates == 0
        stats = engine.stats()
        assert stats["degraded"] == 1
        assert stats["deadline_expired"] == 1

    def test_degraded_answer_without_name_evidence_is_unmatched(self, named_index):
        engine = MatchEngine(
            named_index, MinoanERConfig(serving_deadline_ms=TINY_BUDGET_MS)
        )
        decision = engine.match(EntityDescription("q", [("a", "no such name")]))
        assert decision.degraded
        assert not decision.matched
        assert decision.rule is None

    def test_degraded_decisions_never_enter_the_cache(self, named_index):
        engine = MatchEngine(
            named_index, MinoanERConfig(serving_deadline_ms=TINY_BUDGET_MS)
        )
        entity = EntityDescription("q", [("name", "unique shared name")])
        first = engine.match(entity)
        second = engine.match(entity)
        assert first.degraded and second.degraded
        assert not second.cached
        assert engine.stats()["cache"]["hits"] == 0

    def test_expired_batch_degrades_every_entity(self, named_index):
        engine = MatchEngine(
            named_index, MinoanERConfig(serving_deadline_ms=TINY_BUDGET_MS)
        )
        batch = [
            EntityDescription("q1", [("name", "unique shared name")]),
            EntityDescription("q2", [("name", "nothing shared")]),
        ]
        decisions = engine.match_batch(batch)
        assert [d.query_uri for d in decisions] == ["q1", "q2"]
        assert all(d.degraded for d in decisions)
        assert decisions[0].kb2_uri == "t0"
        assert decisions[1].kb2_uri is None
        stats = engine.stats()
        assert stats["degraded"] == 2
        assert stats["deadline_expired"] == 1  # one budget for the batch

    def test_degraded_field_serialises(self, named_index):
        engine = MatchEngine(
            named_index, MinoanERConfig(serving_deadline_ms=TINY_BUDGET_MS)
        )
        payload = decision_to_json(
            engine.match(EntityDescription("q", [("name", "unique shared name")]))
        )
        assert payload["degraded"] is True
        json.dumps(payload)

    def test_no_deadline_means_no_degradation(self, named_index, mini_pair):
        engine = MatchEngine(named_index)
        decision = engine.match(
            EntityDescription("q", [("name", "unique shared name")])
        )
        assert not decision.degraded
        stats = engine.stats()
        assert stats["degraded"] == 0
        assert stats["deadline_expired"] == 0

    def test_generous_deadline_matches_undeadlined_answers(self, mini_pair):
        index = ResolutionIndex.build(mini_pair.kb2)
        plain = MatchEngine(index)
        deadlined = MatchEngine(
            index, MinoanERConfig(serving_deadline_ms=60_000.0)
        )
        for entity in list(mini_pair.kb1)[:15]:
            assert deadlined.match(entity) == plain.match(entity)


class TestCircuitBreaker:
    @pytest.fixture()
    def numpy_engine(self, mini_pair):
        pytest.importorskip("numpy")
        index = ResolutionIndex.build(mini_pair.kb2)
        return MatchEngine(
            index, MinoanERConfig(kernel_backend="numpy", breaker_threshold=1)
        )

    def test_kernel_faults_trip_to_the_python_fallback(self, mini_pair, numpy_engine):
        batch = list(mini_pair.kb1)[:10]
        index = ResolutionIndex.build(mini_pair.kb2)
        expected = MatchEngine(
            index, MinoanERConfig(kernel_backend="python")
        ).match_batch(batch)
        plan = parse_chaos("kernel:numpy=error*10")
        with use_faults(plan):
            decisions = numpy_engine.match_batch(batch)
        assert plan.total_fired() >= 1
        assert numpy_engine.breaker.trips >= 1
        assert numpy_engine.breaker.state == "open"
        stats = numpy_engine.stats()
        assert stats["kernel_fallback"] >= 1
        assert stats["breaker"]["trips"] == numpy_engine.breaker.trips
        # The python fallback is bit-identical: same decisions.
        assert decisions == expected

    def test_breaker_absent_on_python_backend(self, mini_pair):
        index = ResolutionIndex.build(mini_pair.kb2)
        engine = MatchEngine(index, MinoanERConfig(kernel_backend="python"))
        assert engine.breaker is None
        assert "breaker" not in engine.stats()

    def test_kernel_fault_on_python_backend_propagates(self, mini_pair):
        # No fallback below python: its kernel site fires at backend
        # dispatch (engine construction) and surfaces unchanged.
        index = ResolutionIndex.build(mini_pair.kb2)
        with use_faults(parse_chaos("kernel:python=error*1")):
            with pytest.raises(FaultInjected):
                MatchEngine(index, MinoanERConfig(kernel_backend="python"))


class TestServeFaults:
    def test_injected_match_fault_propagates_uncached(self, named_index):
        engine = MatchEngine(named_index)
        entity = EntityDescription("q", [("name", "unique shared name")])
        with use_faults(parse_chaos("serve:match=error*1")):
            with pytest.raises(FaultInjected):
                engine.match(entity)
            decision = engine.match(entity)  # budget spent: recovers
        assert decision.kb2_uri == "t0"
        assert not decision.cached  # the failed lookup cached nothing

    def test_request_errors_land_on_the_engine_recorder(self, named_index):
        engine = MatchEngine(named_index)
        stream = io.StringIO(
            '{"pairs": [["a", "1"]]}\n'
            "not json\n"
            '{"pairs": [["a", NaN]]}\n'
        )
        items = list(iter_requests(stream, recorder=engine.recorder))
        assert [type(item).__name__ for item in items] == [
            "EntityDescription", "RequestError", "RequestError",
        ]
        assert engine.stats()["request_errors"] == 2
