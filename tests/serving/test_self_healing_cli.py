"""Serve-path self-healing: admission at the engine, ledger errors at
the CLI, explicit shed records on the wire.

Runs ``repro serve`` in-process (``cli.main``) -- these paths need no
subprocess isolation and the suite stays fast.
"""

import json

import pytest

from repro.cli import main
from repro.core.config import MinoanERConfig
from repro.kb.entity import EntityDescription
from repro.resilience import LoadShedError
from repro.serving import MatchEngine, ResolutionIndex
from repro.serving.io import entity_to_json
from repro.serving.live import UpsertLedger


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def index_path(mini_pair, tmp_path):
    index = ResolutionIndex.build(mini_pair.kb2, MinoanERConfig())
    path = tmp_path / "kb2.idx"
    index.save(path)
    return path


def write_queries(tmp_path, pair, count=3, source=None):
    queries = tmp_path / "queries.jsonl"
    with queries.open("w", encoding="utf-8") as handle:
        for entity in list(pair.kb1)[:count]:
            payload = entity_to_json(entity)
            if source is not None:
                payload["source"] = source
            handle.write(json.dumps(payload) + "\n")
    return queries


def stdout_records(capsys):
    captured = capsys.readouterr()
    return [json.loads(line) for line in captured.out.splitlines()], captured.err


# ----------------------------------------------------------------------
# Engine-level admission
# ----------------------------------------------------------------------
class TestEngineAdmission:
    def test_no_knobs_no_admission_layer(self, mini_pair):
        config = MinoanERConfig()
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2, config), config)
        assert engine.admission is None
        assert "admission" not in engine.stats()

    def test_quota_sheds_per_source_queries(self, mini_pair):
        config = MinoanERConfig(serving_quota_qps=1.0, serving_quota_burst=1.0)
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2, config), config)
        engine.admission._clock = FakeClock()  # freeze the drip
        probe = list(mini_pair.kb1)[0]
        engine.match(probe, source="tenant-a")
        with pytest.raises(LoadShedError) as caught:
            engine.match(probe, source="tenant-a")
        assert caught.value.reason == "quota"
        engine.match(probe, source="tenant-b")  # separate bucket
        stats = engine.stats()["admission"]
        assert stats["shed"]["quota"] == 1
        assert stats["admitted"] == 2

    def test_max_pending_bounds_batch_cost(self, mini_pair):
        config = MinoanERConfig(serving_max_pending=2)
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2, config), config)
        batch = list(mini_pair.kb1)[:3]
        with pytest.raises(LoadShedError) as caught:
            engine.match_batch(batch)
        assert caught.value.reason == "queue"
        assert engine.match_batch(batch[:2]) is not None
        # Pending cost is released after each admitted batch: memory is
        # bounded by max_pending, not by arrival count.
        for _ in range(5):
            engine.match_batch(batch[:2])
        assert engine.admission.pending == 0

    def test_shed_happens_before_any_matching_work(self, mini_pair):
        config = MinoanERConfig(serving_max_pending=1)
        engine = MatchEngine(ResolutionIndex.build(mini_pair.kb2, config), config)
        queries_before = engine.stats()["queries"]
        with pytest.raises(LoadShedError):
            engine.match_batch(list(mini_pair.kb1)[:5])
        assert engine.stats()["queries"] == queries_before


# ----------------------------------------------------------------------
# CLI: shed records on the wire
# ----------------------------------------------------------------------
class TestServeSheds:
    def test_quota_shed_emits_explicit_records(
        self, mini_pair, index_path, tmp_path, capsys
    ):
        queries = write_queries(tmp_path, mini_pair, count=3, source="tenant-a")
        rc = main(
            [
                "serve", str(index_path), "-i", str(queries),
                "--quota-qps", "0.000001", "--quota-burst", "1",
            ]
        )
        assert rc == 0
        records, _ = stdout_records(capsys)
        answered = [r for r in records if "error" not in r]
        shed = [r for r in records if r.get("shed")]
        assert len(records) == 3
        assert len(shed) == 2  # burst admits exactly one
        for record in shed:
            assert record["reason"] == "quota"
            assert "tenant-a" in record["error"]
            assert record["query"]
            assert record["line"]
        assert len(answered) == 1

    def test_unlabelled_traffic_is_not_quota_limited_by_default(
        self, mini_pair, index_path, tmp_path, capsys
    ):
        # Quotas without source labels charge the shared default bucket:
        # still bounded, still explicit.
        queries = write_queries(tmp_path, mini_pair, count=3)
        rc = main(
            [
                "serve", str(index_path), "-i", str(queries),
                "--quota-qps", "0.000001", "--quota-burst", "2",
            ]
        )
        assert rc == 0
        records, _ = stdout_records(capsys)
        shed = [r for r in records if r.get("shed")]
        assert len(shed) == 1
        assert shed[0]["reason"] == "quota"


# ----------------------------------------------------------------------
# CLI: ledger failure handling (satellite: no tracebacks, exit nonzero)
# ----------------------------------------------------------------------
class TestServeLedgerErrors:
    def _ledger(self, tmp_path, mini_pair):
        ledger = UpsertLedger(tmp_path / "ops.jsonl")
        sample = list(mini_pair.kb2)[0]
        ledger.append_upsert(
            EntityDescription("http://kb2/new", tuple(sample.pairs))
        )
        ledger.append_delete(sample.uri)
        return ledger

    def test_corrupt_ledger_exits_nonzero_with_one_record(
        self, mini_pair, index_path, tmp_path, capsys
    ):
        ledger = self._ledger(tmp_path, mini_pair)
        lines = ledger.path.read_text(encoding="utf-8").splitlines()
        lines[0] = "@@@ corrupt @@@"
        ledger.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        queries = write_queries(tmp_path, mini_pair)
        rc = main(
            ["serve", str(index_path), "-i", str(queries), "--ledger", str(ledger.path)]
        )
        assert rc == 1
        records, err = stdout_records(capsys)
        assert len(records) == 1  # one structured record, no decisions
        assert records[0]["ledger"] == str(ledger.path)
        assert "line 1" in records[0]["error"]
        assert "Traceback" not in err

    def test_torn_tail_recovers_by_default(
        self, mini_pair, index_path, tmp_path, capsys
    ):
        ledger = self._ledger(tmp_path, mini_pair)
        blob = ledger.path.read_bytes()
        ledger.path.write_bytes(blob[:-4])
        queries = write_queries(tmp_path, mini_pair)
        rc = main(
            ["serve", str(index_path), "-i", str(queries), "--ledger", str(ledger.path)]
        )
        assert rc == 0
        records, err = stdout_records(capsys)
        assert "torn tail" in err
        assert len([r for r in records if "error" not in r]) == 3

    def test_no_recover_makes_torn_tail_fatal(
        self, mini_pair, index_path, tmp_path, capsys
    ):
        ledger = self._ledger(tmp_path, mini_pair)
        blob = ledger.path.read_bytes()
        ledger.path.write_bytes(blob[:-4])
        queries = write_queries(tmp_path, mini_pair)
        rc = main(
            [
                "serve", str(index_path), "-i", str(queries),
                "--ledger", str(ledger.path), "--no-ledger-recover",
            ]
        )
        assert rc == 1
        records, _ = stdout_records(capsys)
        assert len(records) == 1
        assert "torn tail" in records[0]["error"]

    def test_unreadable_ledger_path_exits_nonzero(
        self, mini_pair, index_path, tmp_path, capsys
    ):
        # A directory where a file should be: OSError, same contract.
        bad = tmp_path / "ledger-as-dir"
        bad.mkdir()
        queries = write_queries(tmp_path, mini_pair)
        rc = main(
            ["serve", str(index_path), "-i", str(queries), "--ledger", str(bad)]
        )
        assert rc == 1
        records, _ = stdout_records(capsys)
        assert len(records) == 1
        assert records[0]["ledger"] == str(bad)
