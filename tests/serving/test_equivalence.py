"""Batch/serve equivalence: the headline contract of repro.serving.

Serving every KB1 entity through ``MatchEngine.match_batch`` must
reproduce the batch pipeline's match set exactly -- same pairs, same
producing rules, same scores -- on multiple synthetic profiles, and the
contract must survive an index save/load round-trip.
"""

import pytest

from repro.core.config import MinoanERConfig
from repro.core.pipeline import MinoanER
from repro.datasets.profiles import scaled_profile
from repro.serving import MatchEngine, ResolutionIndex


def assert_serving_reproduces_batch(pair, config=None):
    config = config or MinoanERConfig()
    batch_result = MinoanER(config).resolve(pair.kb1, pair.kb2)
    engine = MatchEngine(ResolutionIndex.build(pair.kb2, config))
    decisions = engine.match_batch(list(pair.kb1))

    served = {
        (eid1, decision.kb2_id)
        for eid1, decision in enumerate(decisions)
        if decision.matched
    }
    assert served == batch_result.matches

    for eid1, decision in enumerate(decisions):
        if decision.matched:
            pair_key = (eid1, decision.kb2_id)
            assert decision.rule == batch_result.matching.rule_of[pair_key]
            assert decision.score == batch_result.matching.scores[pair_key]
    return engine, batch_result


class TestBatchServeEquivalence:
    def test_mini_profile(self, mini_pair):
        assert_serving_reproduces_batch(mini_pair)

    def test_hard_profile(self, hard_pair):
        assert_serving_reproduces_batch(hard_pair)

    def test_restaurant_profile_scaled(self):
        assert_serving_reproduces_batch(scaled_profile("restaurant", 0.3))

    def test_bbc_profile_scaled(self):
        assert_serving_reproduces_batch(scaled_profile("bbc_dbpedia", 0.2))

    def test_equivalence_with_dynamic_pruning(self, mini_pair):
        assert_serving_reproduces_batch(
            mini_pair, MinoanERConfig(dynamic_pruning=True)
        )

    def test_equivalence_without_purging(self, mini_pair):
        assert_serving_reproduces_batch(
            mini_pair, MinoanERConfig(purge_blocks=False)
        )

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_equivalence_per_backend(self, mini_pair, backend):
        from repro.kernels import numpy_available

        if backend == "numpy" and not numpy_available():
            pytest.skip("numpy not importable")
        assert_serving_reproduces_batch(
            mini_pair, MinoanERConfig(kernel_backend=backend)
        )


class TestLoadedIndexEquivalence:
    def test_roundtripped_index_serves_identically(self, mini_pair, tmp_path):
        config = MinoanERConfig()
        built = ResolutionIndex.build(mini_pair.kb2, config)
        path = tmp_path / "kb2.idx"
        built.save(path)
        loaded = ResolutionIndex.load(path)

        fresh = MatchEngine(built).match_batch(list(mini_pair.kb1))
        reloaded = MatchEngine(loaded).match_batch(list(mini_pair.kb1))
        assert fresh == reloaded

        batch = MinoanER(config).resolve(mini_pair.kb1, mini_pair.kb2)
        served = {
            (eid1, decision.kb2_id)
            for eid1, decision in enumerate(reloaded)
            if decision.matched
        }
        assert served == batch.matches

    def test_roundtripped_single_queries_identical(self, mini_pair, tmp_path):
        built = ResolutionIndex.build(mini_pair.kb2)
        path = tmp_path / "kb2.idx"
        built.save(path)
        loaded = ResolutionIndex.load(path)
        fresh = MatchEngine(built)
        reloaded = MatchEngine(loaded)
        for entity in list(mini_pair.kb1)[:25]:
            assert fresh.match(entity) == reloaded.match(entity)


class TestMemmappedIndexEquivalence:
    """Zero-copy loads must serve bit-identical decisions.

    The mmap path swaps every index structure for a lazily-decoded view
    and the numpy row kernels consume the mapped int32 slices directly,
    so equality here gates the whole columnar format + fused-kernel
    stack, per profile and per backend.
    """

    @staticmethod
    def _pair_of(name, request):
        if name in ("mini", "hard"):
            return request.getfixturevalue(f"{name}_pair")
        profile, scale = name
        return scaled_profile(profile, scale)

    @pytest.fixture(autouse=True)
    def _require_numpy(self):
        from repro.kernels import numpy_available

        if not numpy_available():
            pytest.skip("numpy not importable (mmap loading requires it)")

    @pytest.mark.parametrize(
        "profile",
        [
            "mini",
            "hard",
            ("restaurant", 0.3),
            ("rexa_dblp", 0.15),
            ("bbc_dbpedia", 0.2),
            ("yago_imdb", 0.15),
        ],
        ids=["mini", "hard", "restaurant", "rexa_dblp", "bbc_dbpedia", "yago_imdb"],
    )
    def test_mmap_serves_identically(self, profile, request, tmp_path):
        pair = self._pair_of(profile, request)
        built = ResolutionIndex.build(pair.kb2)
        path = tmp_path / "kb2.idx"
        built.save(path)
        eager = MatchEngine(ResolutionIndex.load(path))
        mapped = MatchEngine(ResolutionIndex.load(path, mmap=True))

        queries = list(pair.kb1)
        assert eager.match_batch(queries) == mapped.match_batch(queries)
        for entity in queries[:25]:
            assert eager.match(entity) == mapped.match(entity)

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_mmap_per_backend(self, mini_pair, tmp_path, backend):
        config = MinoanERConfig(kernel_backend=backend)
        built = ResolutionIndex.build(mini_pair.kb2, config)
        path = tmp_path / "kb2.idx"
        built.save(path)
        fresh = MatchEngine(built)
        mapped = MatchEngine(ResolutionIndex.load(path, mmap=True))
        for entity in list(mini_pair.kb1)[:25]:
            assert fresh.match(entity) == mapped.match(entity)
        assert fresh.match_batch(list(mini_pair.kb1)) == mapped.match_batch(
            list(mini_pair.kb1)
        )

    def test_mmap_batches_take_the_row_path(self, mini_pair, tmp_path):
        # A mapped index routes match_batch through the single-row
        # kernels (zero-copy posting slices) instead of materialising
        # interned block copies; an eager load keeps the kernel path.
        built = ResolutionIndex.build(mini_pair.kb2)
        path = tmp_path / "kb2.idx"
        built.save(path)
        mapped = MatchEngine(ResolutionIndex.load(path, mmap=True))
        eager = MatchEngine(ResolutionIndex.load(path))
        assert mapped._use_row_batch and not eager._use_row_batch

        queries = list(mini_pair.kb1)
        qkb, _ = mapped._batch_stats(queries)
        from repro.kernels import InternedBlocks

        # The row path's value candidates equal the interned-kernel
        # ones exactly, both sides of the bipartite graph.
        row_1, row_2 = mapped._row_value_topk(qkb, mapped.config.candidates_k)
        from repro.blocking.base import Block, BlockCollection
        from repro.blocking.purging import purge_blocks

        blocks = BlockCollection(kind="token")
        for token in sorted(t for t in qkb.token_index if t in built.postings):
            blocks.add(Block(token, qkb.token_index[token], built.postings[token]))
        blocks = purge_blocks(
            blocks,
            cartesian=len(qkb) * built.n2,
            budget_ratio=mapped.config.purging_budget_ratio,
            max_comparisons=mapped.config.max_block_comparisons,
        )
        interned = InternedBlocks.from_blocks(blocks, len(qkb), built.n2)
        kernel_1, kernel_2 = eager._run_kernel(
            "value_topk", interned, eager.config.candidates_k, eager._cut
        )
        assert [list(row) for row in row_1] == [list(row) for row in kernel_1]
        assert [list(col) for col in row_2] == [list(col) for col in kernel_2]

    def test_mmap_resave_serves_identically(self, mini_pair, tmp_path):
        built = ResolutionIndex.build(mini_pair.kb2)
        first = tmp_path / "kb2.idx"
        built.save(first)
        second = tmp_path / "resaved.idx"
        ResolutionIndex.load(first, mmap=True).save(second)
        assert second.read_bytes() == first.read_bytes()
        reloaded = MatchEngine(ResolutionIndex.load(second, mmap=True))
        fresh = MatchEngine(built)
        for entity in list(mini_pair.kb1)[:25]:
            assert fresh.match(entity) == reloaded.match(entity)
