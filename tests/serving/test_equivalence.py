"""Batch/serve equivalence: the headline contract of repro.serving.

Serving every KB1 entity through ``MatchEngine.match_batch`` must
reproduce the batch pipeline's match set exactly -- same pairs, same
producing rules, same scores -- on multiple synthetic profiles, and the
contract must survive an index save/load round-trip.
"""

import pytest

from repro.core.config import MinoanERConfig
from repro.core.pipeline import MinoanER
from repro.datasets.profiles import scaled_profile
from repro.serving import MatchEngine, ResolutionIndex


def assert_serving_reproduces_batch(pair, config=None):
    config = config or MinoanERConfig()
    batch_result = MinoanER(config).resolve(pair.kb1, pair.kb2)
    engine = MatchEngine(ResolutionIndex.build(pair.kb2, config))
    decisions = engine.match_batch(list(pair.kb1))

    served = {
        (eid1, decision.kb2_id)
        for eid1, decision in enumerate(decisions)
        if decision.matched
    }
    assert served == batch_result.matches

    for eid1, decision in enumerate(decisions):
        if decision.matched:
            pair_key = (eid1, decision.kb2_id)
            assert decision.rule == batch_result.matching.rule_of[pair_key]
            assert decision.score == batch_result.matching.scores[pair_key]
    return engine, batch_result


class TestBatchServeEquivalence:
    def test_mini_profile(self, mini_pair):
        assert_serving_reproduces_batch(mini_pair)

    def test_hard_profile(self, hard_pair):
        assert_serving_reproduces_batch(hard_pair)

    def test_restaurant_profile_scaled(self):
        assert_serving_reproduces_batch(scaled_profile("restaurant", 0.3))

    def test_bbc_profile_scaled(self):
        assert_serving_reproduces_batch(scaled_profile("bbc_dbpedia", 0.2))

    def test_equivalence_with_dynamic_pruning(self, mini_pair):
        assert_serving_reproduces_batch(
            mini_pair, MinoanERConfig(dynamic_pruning=True)
        )

    def test_equivalence_without_purging(self, mini_pair):
        assert_serving_reproduces_batch(
            mini_pair, MinoanERConfig(purge_blocks=False)
        )

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_equivalence_per_backend(self, mini_pair, backend):
        from repro.kernels import numpy_available

        if backend == "numpy" and not numpy_available():
            pytest.skip("numpy not importable")
        assert_serving_reproduces_batch(
            mini_pair, MinoanERConfig(kernel_backend=backend)
        )


class TestLoadedIndexEquivalence:
    def test_roundtripped_index_serves_identically(self, mini_pair, tmp_path):
        config = MinoanERConfig()
        built = ResolutionIndex.build(mini_pair.kb2, config)
        path = tmp_path / "kb2.idx"
        built.save(path)
        loaded = ResolutionIndex.load(path)

        fresh = MatchEngine(built).match_batch(list(mini_pair.kb1))
        reloaded = MatchEngine(loaded).match_batch(list(mini_pair.kb1))
        assert fresh == reloaded

        batch = MinoanER(config).resolve(mini_pair.kb1, mini_pair.kb2)
        served = {
            (eid1, decision.kb2_id)
            for eid1, decision in enumerate(reloaded)
            if decision.matched
        }
        assert served == batch.matches

    def test_roundtripped_single_queries_identical(self, mini_pair, tmp_path):
        built = ResolutionIndex.build(mini_pair.kb2)
        path = tmp_path / "kb2.idx"
        built.save(path)
        loaded = ResolutionIndex.load(path)
        fresh = MatchEngine(built)
        reloaded = MatchEngine(loaded)
        for entity in list(mini_pair.kb1)[:25]:
            assert fresh.match(entity) == reloaded.match(entity)
