"""LRU cache: eviction order, counters, fingerprints, thread safety."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.kb.entity import EntityDescription
from repro.serving.cache import LRUCache, entity_fingerprint


class TestEntityFingerprint:
    def test_uri_excluded(self):
        a = EntityDescription("x", [("label", "Bray")])
        b = EntityDescription("y", [("label", "Bray")])
        assert entity_fingerprint(a) == entity_fingerprint(b)

    def test_pair_order_irrelevant(self):
        a = EntityDescription("x", [("a", "1"), ("b", "2")])
        b = EntityDescription("x", [("b", "2"), ("a", "1")])
        assert entity_fingerprint(a) == entity_fingerprint(b)

    def test_different_content_differs(self):
        a = EntityDescription("x", [("label", "Bray")])
        b = EntityDescription("x", [("label", "Eltham")])
        assert entity_fingerprint(a) != entity_fingerprint(b)

    def test_separator_injection_resistant(self):
        # ("ab", "c") must not collide with ("a", "bc").
        a = EntityDescription("x", [("ab", "c")])
        b = EntityDescription("x", [("a", "bc")])
        assert entity_fingerprint(a) != entity_fingerprint(b)

    def test_separator_bytes_in_fields_do_not_collide(self):
        # Regression: the digest once joined fields with raw \x1f/\x1e
        # separators, so a field *containing* those bytes could shift
        # content across the field boundary and collide -- serving the
        # wrong cached decision for an attacker-shaped query.  Fields
        # are length-prefixed now; these all hash distinctly.
        collisions = [
            (
                EntityDescription("x", [("a\x1fb", "c")]),
                EntityDescription("x", [("a", "b\x1fc")]),
            ),
            (
                EntityDescription("x", [("a", "b\x1ec"), ("d", "e")]),
                EntityDescription("x", [("a", "b"), ("c\x1fd", "e")]),
            ),
            (
                EntityDescription("x", [("a", "b\x1e")]),
                EntityDescription("x", [("a", "b"), ("", "")]),
            ),
        ]
        for left, right in collisions:
            assert entity_fingerprint(left) != entity_fingerprint(right), (
                left.pairs,
                right.pairs,
            )

    def test_pairs_with_separators_still_order_insensitive(self):
        a = EntityDescription("x", [("a\x1e", "1"), ("b", "\x1f2")])
        b = EntityDescription("x", [("b", "\x1f2"), ("a\x1e", "1")])
        assert entity_fingerprint(a) == entity_fingerprint(b)


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.get("absent") is None
        assert cache.get("absent", "fallback") == "fallback"

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_keys_in_eviction_order(self):
        cache = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("a")
        assert cache.keys() == ["b", "c", "a"]

    def test_contains_does_not_touch_recency_or_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache
        before = cache.stats()
        cache.put("c", 3)  # evicts "a": membership check did not refresh it
        assert "a" not in cache
        assert cache.stats()["hits"] == before["hits"]
        assert cache.stats()["misses"] == before["misses"]

    def test_hit_miss_eviction_counters(self):
        cache = LRUCache(1)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts "a"
        cache.get("a")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["evictions"] == 1
        assert stats["size"] == 1
        assert stats["hit_rate"] == pytest.approx(1 / 3)

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["evictions"] == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_refresh_put_respects_shrunk_capacity(self):
        # Regression: after `capacity` was shrunk, a put that merely
        # refreshed an existing key skipped the eviction branch (it only
        # ran on inserts), leaving the cache over its bound forever.
        cache = LRUCache(4)
        for i in range(4):
            cache.put(f"k{i}", i)
        cache.capacity = 2
        cache.put("k3", 30)  # refresh, not insert
        assert len(cache) <= cache.capacity
        assert cache.get("k3") == 30
        # The drained entries were the least recently used ones.
        assert cache.get("k0") is None
        assert cache.get("k1") is None

    def test_shrink_to_zero_drains_on_refresh(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.capacity = 0
        cache.put("a", 10)
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_repr_reports_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        text = repr(cache)
        assert "size=1/2" in text
        assert "hits=1" in text
        assert "misses=1" in text
        assert "evictions=0" in text

    def test_stats_repr_do_not_mutate(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        first = cache.stats()
        repr(cache)
        assert cache.stats() == first

    def test_thread_hammer(self):
        # Many threads mixing gets and puts over a small key space; the
        # invariants to survive are: no exception, size <= capacity,
        # lookups == hits + misses, and every surviving value correct.
        cache = LRUCache(8)
        keys = [f"k{i}" for i in range(32)]
        rounds = 300

        def hammer(worker: int) -> None:
            for i in range(rounds):
                key = keys[(worker * 7 + i) % len(keys)]
                value = cache.get(key)
                if value is not None:
                    assert value == key
                cache.put(key, key)
                if i % 13 == 0:
                    len(cache)
                    cache.stats()
                    repr(cache)

        with ThreadPoolExecutor(max_workers=8) as pool:
            for future in [pool.submit(hammer, worker) for worker in range(8)]:
                future.result()

        stats = cache.stats()
        assert stats["size"] <= 8
        assert len(cache) == stats["size"]
        assert stats["hits"] + stats["misses"] == 8 * rounds
        for key in cache.keys():
            assert cache.get(key) == key
