"""ResolutionIndex: frozen contents, persistence, format guards."""

import pickle
from array import array

import pytest

from repro.blocking.name_blocking import name_blocks, normalize_name
from repro.core.config import MinoanERConfig
from repro.kb.statistics import KBStatistics
from repro.kernels import block_weight
from repro.serving.index import FORMAT_VERSION, MAGIC, ResolutionIndex


class TestBuild:
    def test_basic_shape(self, restaurant_kbs):
        _, kb2 = restaurant_kbs
        index = ResolutionIndex.build(kb2)
        assert index.kb_name == "dbpedia"
        assert index.n2 == len(kb2)
        assert index.uris2 == [kb2.uri_of(eid) for eid in range(len(kb2))]
        assert index.tokenizer is kb2.tokenizer

    def test_postings_mirror_token_index(self, restaurant_kbs):
        _, kb2 = restaurant_kbs
        index = ResolutionIndex.build(kb2)
        assert set(index.postings) == set(kb2.token_index)
        for token, ids in kb2.token_index.items():
            assert list(index.postings[token]) == ids
            assert isinstance(index.postings[token], array)
            assert index.entity_frequency(token) == len(ids)
        assert index.entity_frequency("never-a-token") == 0

    def test_singleton_weights_hoisted(self, restaurant_kbs):
        _, kb2 = restaurant_kbs
        index = ResolutionIndex.build(kb2)
        for token, ids in index.postings.items():
            # A single-entity query side makes |b1|*|b2| = EF2(t).
            assert index.singleton_weights[token] == block_weight(len(ids))

    def test_names_match_name_block_semantics(self, restaurant_kbs):
        _, kb2 = restaurant_kbs
        config = MinoanERConfig()
        index = ResolutionIndex.build(kb2, config)
        stats2 = KBStatistics(
            kb2,
            top_k_name_attributes=config.name_attributes_k,
            top_n_relations=config.relations_n,
        )
        expected: dict[str, list[int]] = {}
        for eid in range(len(kb2)):
            seen = set()
            for raw in stats2.names(eid):
                name = normalize_name(raw)
                if name and name not in seen:
                    seen.add(name)
                    expected.setdefault(name, []).append(eid)
        assert index.names == {n: tuple(ids) for n, ids in expected.items()}

    def test_name_map_consistent_with_name_blocks(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        stats1 = KBStatistics(
            mini_pair.kb1,
            top_k_name_attributes=config.name_attributes_k,
            top_n_relations=config.relations_n,
        )
        stats2 = KBStatistics(
            mini_pair.kb2,
            top_k_name_attributes=config.name_attributes_k,
            top_n_relations=config.relations_n,
        )
        for block in name_blocks(stats1, stats2):
            assert index.names[block.key] == block.side2

    def test_in_neighbors_frozen(self, mini_pair):
        config = MinoanERConfig()
        index = ResolutionIndex.build(mini_pair.kb2, config)
        stats2 = KBStatistics(
            mini_pair.kb2,
            top_k_name_attributes=config.name_attributes_k,
            top_n_relations=config.relations_n,
        )
        expected = stats2.in_neighbor_csr()
        assert index.in_neighbors.offsets == expected.offsets
        assert index.in_neighbors.ids == expected.ids

    def test_describe_and_repr(self, restaurant_kbs):
        _, kb2 = restaurant_kbs
        index = ResolutionIndex.build(kb2)
        summary = index.describe()
        assert summary["entities"] == len(kb2)
        assert summary["tokens"] == len(index.postings)
        assert summary["names"] == len(index.names)
        assert "dbpedia" in repr(index)
        assert str(len(kb2)) in repr(index)


class TestPersistence:
    def test_save_load_roundtrip(self, mini_pair, tmp_path):
        config = MinoanERConfig(candidates_k=7)
        index = ResolutionIndex.build(mini_pair.kb2, config)
        path = tmp_path / "kb2.idx"
        index.save(path)
        loaded = ResolutionIndex.load(path)
        assert loaded.kb_name == index.kb_name
        assert loaded.n2 == index.n2
        assert loaded.uris2 == index.uris2
        assert loaded.config == index.config
        assert loaded.names == index.names
        assert set(loaded.postings) == set(index.postings)
        for token in index.postings:
            assert loaded.postings[token] == index.postings[token]
        assert loaded.singleton_weights == index.singleton_weights
        assert loaded.in_neighbors.offsets == index.in_neighbors.offsets
        assert loaded.in_neighbors.ids == index.in_neighbors.ids

    def test_magic_header_written(self, restaurant_kbs, tmp_path):
        _, kb2 = restaurant_kbs
        path = tmp_path / "kb2.idx"
        ResolutionIndex.build(kb2).save(path)
        raw = path.read_bytes()
        assert raw.startswith(MAGIC)
        assert raw[len(MAGIC)] == FORMAT_VERSION

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "not-an-index"
        path.write_bytes(pickle.dumps({"surprise": True}))
        with pytest.raises(ValueError, match="not a MinoanER resolution index"):
            ResolutionIndex.load(path)

    def test_future_version_rejected(self, restaurant_kbs, tmp_path):
        _, kb2 = restaurant_kbs
        path = tmp_path / "kb2.idx"
        ResolutionIndex.build(kb2).save(path)
        raw = bytearray(path.read_bytes())
        raw[len(MAGIC)] = FORMAT_VERSION + 1
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="unsupported index format version"):
            ResolutionIndex.load(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "kb2.idx"
        path.write_bytes(MAGIC)  # magic but no version byte
        with pytest.raises(ValueError, match="unsupported index format version"):
            ResolutionIndex.load(path)
